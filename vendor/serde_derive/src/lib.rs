//! No-op derive macros backing the offline `serde` stand-in.
//!
//! The companion `serde` crate blanket-implements its marker traits, so the
//! derives have nothing to generate: they only need to exist so that
//! `#[derive(serde::Serialize)]` attributes resolve.

use proc_macro::TokenStream;

/// Accepts any item; generates nothing (the trait is blanket-implemented).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts any item; generates nothing (the trait is blanket-implemented).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
