//! Offline stand-in for `proptest`.
//!
//! Implements the subset of proptest the workspace's property tests use:
//! the [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`/`prop_assume!`,
//! [`any`], range and tuple strategies, string-pattern strategies and
//! `prop::collection::vec`. Each test body runs for a fixed number of
//! deterministically seeded cases (no shrinking — a failing case prints its
//! case number, and the seed schedule is stable across runs, so failures
//! reproduce exactly).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::marker::PhantomData;
use std::ops::Range;

/// Re-export so `prop::collection::vec` resolves after
/// `use proptest::prelude::*`.
pub mod prelude {
    /// The conventional `prop::` alias for the crate root.
    pub use crate as prop;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assume, proptest, Strategy};
}

/// Number of cases each property runs; override with `PROPTEST_CASES`.
pub fn cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Deterministic per-case generator: a stable function of test name + case.
pub fn case_rng(test_name: &str, case: u64) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// A source of random values of one type.
pub trait Strategy {
    /// The type this strategy produces.
    type Value;
    /// Draw one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;
}

impl<T: rand::UniformSample> Strategy for Range<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn sample(&self, rng: &mut StdRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// String pattern strategy. Upstream proptest interprets the string as a
/// regex; this stand-in supports the `.{lo,hi}` shape the workspace uses
/// (random strings of bounded length over a deliberately hostile alphabet)
/// and falls back to that same alphabet with length 0..32 for any other
/// pattern.
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut StdRng) -> String {
        const ALPHABET: &[char] = &[
            'a', 'b', 'z', 'A', 'Z', '0', '9', ' ', '_', '-', '.', ',', ';', ':', '!', '?', '"',
            '\\', '/', '\'', '{', '}', '[', ']', '(', ')', '<', '>', '\t', 'é', 'ß', '漢', '🙂',
        ];
        let (lo, hi) = parse_dot_repeat(self).unwrap_or((0, 32));
        let len = if hi > lo {
            rng.gen_range(lo..hi + 1)
        } else {
            lo
        };
        (0..len)
            .map(|_| ALPHABET[rng.gen_range(0..ALPHABET.len())])
            .collect()
    }
}

/// Parse `.{lo,hi}` into `(lo, hi)`.
fn parse_dot_repeat(pattern: &str) -> Option<(usize, usize)> {
    let body = pattern.strip_prefix(".{")?.strip_suffix('}')?;
    let (lo, hi) = body.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

/// Types with a canonical whole-domain strategy, via [`any`].
pub trait Arbitrary: Sized {
    /// Draw one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.gen()
    }
}

/// Whole-domain strategy marker returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy covering `T`'s whole domain.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    /// Strategy for vectors with element strategy `S` and bounded length.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.clone());
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Vectors of `element` with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// Declare property tests: each `fn name(arg in strategy, ...)` body runs
/// for [`cases`] deterministically generated inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cases = $crate::cases();
                for __case in 0..__cases {
                    let mut __rng = $crate::case_rng(stringify!($name), __case);
                    $(let $arg = $crate::Strategy::sample(&$strat, &mut __rng);)+
                    let __outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(__msg) = __outcome {
                        panic!(
                            "property '{}' failed at case {}/{}: {}",
                            stringify!($name),
                            __case,
                            __cases,
                            __msg
                        );
                    }
                }
            }
        )+
    };
}

/// Assert inside a property body; failure reports the case that produced it.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {}",
                stringify!($cond)
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err(::std::format!(
                "assertion failed: {:?} != {:?}",
                __a,
                __b
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        if !(*__a == *__b) {
            return ::std::result::Result::Err(::std::format!($($fmt)+));
        }
    }};
}

/// Skip cases whose inputs do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_in_bounds(x in 3usize..10, f in -2.0f64..2.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-2.0..2.0).contains(&f), "f out of range: {f}");
        }

        #[test]
        fn vec_lengths_bounded(v in prop::collection::vec(any::<bool>(), 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
        }

        #[test]
        fn tuples_sample_both(p in (0u8..4, 0.0f64..1.0)) {
            prop_assert!(p.0 < 4);
            prop_assert!(p.1 >= 0.0 && p.1 < 1.0);
        }

        #[test]
        fn string_pattern_bounded(s in ".{0,80}") {
            prop_assert!(s.chars().count() <= 80);
            prop_assert!(!s.contains('\n'));
        }

        #[test]
        fn assume_skips(n in 0usize..10) {
            prop_assume!(n > 3);
            prop_assert!(n > 3);
        }
    }

    #[test]
    fn deterministic_schedule() {
        let mut a = crate::case_rng("t", 3);
        let mut b = crate::case_rng("t", 3);
        assert_eq!(
            crate::Strategy::sample(&(0u64..1000), &mut a),
            crate::Strategy::sample(&(0u64..1000), &mut b)
        );
    }
}
