//! Offline stand-in for `serde`.
//!
//! The workspace derives `serde::Serialize` / `serde::Deserialize` on its
//! spec types as a forward-compatibility marker but performs all actual
//! serialization through hand-rolled writers (`matilda-provenance::json`,
//! `matilda-telemetry::export`) — nothing calls serde's data model. This
//! stand-in therefore provides the two trait names with blanket
//! implementations, plus no-op derive macros, which is exactly enough for
//! every `#[derive(serde::Serialize, serde::Deserialize)]` in the tree to
//! compile offline.

/// Marker for serializable types. Blanket-implemented: with no data model to
/// drive, every type is trivially "serializable".
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker for deserializable types. Blanket-implemented, mirroring
/// [`Serialize`].
pub trait Deserialize {}
impl<T: ?Sized> Deserialize for T {}

// The derive macros live in the macro namespace, the traits above in the
// type namespace; both can be reached as `serde::Serialize`.
pub use serde_derive::{Deserialize, Serialize};

#[cfg(test)]
mod tests {
    #[derive(Debug, Clone, PartialEq, crate::Serialize, crate::Deserialize)]
    struct Plain {
        a: u64,
        b: String,
    }

    #[derive(Debug, Clone, PartialEq, crate::Serialize, crate::Deserialize)]
    enum Sum {
        A,
        B { x: f64 },
        C(Vec<u8>),
    }

    fn assert_serializable<T: crate::Serialize>(_: &T) {}

    #[test]
    fn derives_compile_and_traits_blanket() {
        let p = Plain {
            a: 1,
            b: "x".into(),
        };
        let s = Sum::B { x: 0.5 };
        assert_serializable(&p);
        assert_serializable(&s);
        let _ = Sum::A;
        let _ = Sum::C(vec![1]);
        assert_eq!(p.clone(), p);
    }
}
