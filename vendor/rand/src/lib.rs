//! Offline stand-in for the `rand` crate.
//!
//! The container this repository builds in has no network access, so the real
//! `rand` cannot be fetched. This crate implements exactly the API subset the
//! workspace uses — `Rng::{gen, gen_bool, gen_range}`, `SeedableRng`,
//! `rngs::StdRng` and `seq::SliceRandom` — behind the same paths, backed by a
//! deterministic SplitMix64 generator. The stream differs from upstream
//! `rand`, but every workspace component only relies on *determinism given a
//! seed*, which this crate guarantees.

use std::ops::Range;

/// The minimal generator core: a source of uniform `u64`s.
pub trait RngCore {
    /// The next 64 uniform bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform draw from `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        // IEEE-754 doubles hold 53 mantissa bits; use the top bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is a pure function of `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types drawable uniformly from their whole domain via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_f64()
    }
}

/// Primitives that can be drawn uniformly between two bounds.
pub trait UniformSample: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)`.
    fn sample_excl<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
    /// Uniform draw from `[lo, hi]`.
    fn sample_incl<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

impl UniformSample for f64 {
    fn sample_excl<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        let v = lo + rng.next_f64() * (hi - lo);
        // Floating rounding can land exactly on `hi`; fold back inside.
        if v >= hi {
            lo
        } else {
            v
        }
    }
    fn sample_incl<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
        lo + rng.next_f64() * (hi - lo)
    }
}

macro_rules! impl_uniform_sample_int {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample_excl<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + offset) as $t
            }
            fn sample_incl<R: RngCore + ?Sized>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}
impl_uniform_sample_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformSample> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_excl(self.start, self.end, rng)
    }
}

impl<T: UniformSample> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty inclusive range");
        T::sample_incl(lo, hi, rng)
    }
}

/// The user-facing generator interface.
pub trait Rng: RngCore {
    /// Draw a value uniformly over the whole domain of `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// A Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Draw uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator: SplitMix64.
    ///
    /// Not the ChaCha12 stream of upstream `rand`, but statistically solid
    /// for simulation work and — what the workspace actually depends on —
    /// a pure function of its seed.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // Scramble the raw seed once so small seeds (0, 1, 2, ...)
            // do not start in neighbouring states.
            let mut rng = StdRng {
                state: state ^ 0x5DEE_CE66_D012_3456,
            };
            let warmed = rng.next_u64();
            StdRng { state: warmed }
        }
    }
}

/// Sequence-related helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random selection and shuffling over slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// A uniformly chosen element, or `None` on an empty slice.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// `amount.min(len)` distinct elements in random order.
        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn choose_multiple<R: RngCore + ?Sized>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            let amount = amount.min(self.len());
            let mut idx: Vec<usize> = (0..self.len()).collect();
            // Partial Fisher–Yates: only the prefix we return needs work.
            for i in 0..amount {
                let j = rng.gen_range(i..idx.len());
                idx.swap(i, j);
            }
            idx[..amount]
                .iter()
                .map(|&i| &self[i])
                .collect::<Vec<_>>()
                .into_iter()
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(2..8);
            assert!((2..8).contains(&v));
            let f: f64 = rng.gen_range(-0.25..0.25);
            assert!((-0.25..0.25).contains(&f));
        }
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = StdRng::seed_from_u64(4);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "astronomically unlikely");
    }

    #[test]
    fn choose_multiple_distinct() {
        let mut rng = StdRng::seed_from_u64(6);
        let v: Vec<usize> = (0..10).collect();
        let picked: Vec<&usize> = v.choose_multiple(&mut rng, 5).collect();
        assert_eq!(picked.len(), 5);
        let set: std::collections::HashSet<usize> = picked.iter().map(|&&x| x).collect();
        assert_eq!(set.len(), 5);
    }
}
