//! Offline stand-in for `criterion` with a real measurement engine.
//!
//! Supports the macro/API surface the workspace benches use
//! (`criterion_group!`, `criterion_main!`, `Criterion::bench_function`,
//! `BenchmarkGroup`, `Bencher::iter`, `black_box`) on top of a small but
//! genuine statistics engine:
//!
//! - **warmup** — untimed calls fill caches and trigger lazy init before
//!   any sample is recorded;
//! - **calibration** — a per-iteration estimate from the warmup picks an
//!   iteration count per sample so one sample batch is long enough to
//!   measure but short enough to collect many;
//! - **sampling** — a configurable number of timed batches, each yielding
//!   one per-iteration ns value;
//! - **statistics** — mean over all iterations plus p50/p95 over the
//!   per-sample values (nearest-rank).
//!
//! Every finished benchmark is printed *and* recorded into a process-wide
//! results registry ([`take_results`]) so a driver binary can export the
//! numbers machine-readably ([`BenchResult::to_json`]) — this is what
//! `bench_suite` uses to write `BENCH_<n>.json`.
//!
//! Time comes from an injectable [`BenchClock`] (same shape as the
//! workspace's resilience `Clock`: monotonic ns since an arbitrary epoch),
//! so the engine itself is testable on a deterministic [`ManualClock`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// A monotonic nanosecond clock, injectable for deterministic engine tests.
///
/// Mirrors the workspace `resilience::Clock` contract (monotonic time since
/// an arbitrary fixed epoch) in the only unit the engine needs.
pub trait BenchClock: Send + Sync {
    /// Nanoseconds since the clock's epoch.
    fn now_ns(&self) -> u64;
}

/// The real clock: `Instant`-based, shared process epoch.
#[derive(Debug, Clone, Copy, Default)]
pub struct WallClock;

fn process_epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

impl BenchClock for WallClock {
    fn now_ns(&self) -> u64 {
        process_epoch().elapsed().as_nanos() as u64
    }
}

/// A deterministic clock for engine tests: every reading advances time by a
/// fixed step, so iteration counts and statistics are exactly reproducible.
#[derive(Debug)]
pub struct ManualClock {
    step_ns: u64,
    now: AtomicU64,
}

impl ManualClock {
    /// A clock advancing `step_ns` nanoseconds per reading.
    pub fn new(step_ns: u64) -> Self {
        Self {
            step_ns: step_ns.max(1),
            now: AtomicU64::new(0),
        }
    }
}

impl BenchClock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.now.fetch_add(self.step_ns, Ordering::Relaxed) + self.step_ns
    }
}

/// The measured outcome of one benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    /// Benchmark name (`group/name` inside a group).
    pub name: String,
    /// Mean wall time per iteration, in nanoseconds (total time / total
    /// iterations across every sample).
    pub mean_ns: f64,
    /// Median of the per-sample per-iteration times.
    pub p50_ns: f64,
    /// 95th percentile of the per-sample per-iteration times
    /// (nearest-rank).
    pub p95_ns: f64,
    /// Total timed iterations across all samples (warmup excluded).
    pub iters: u64,
    /// Number of timed sample batches collected.
    pub samples: usize,
}

impl BenchResult {
    /// This result as one JSON object (hand-rolled, like every exporter in
    /// the workspace).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"name\":\"{}\",\"mean_ns\":{:.1},\"p50_ns\":{:.1},\"p95_ns\":{:.1},\"iters\":{},\"samples\":{}}}",
            self.name.replace('\\', "\\\\").replace('"', "\\\""),
            self.mean_ns,
            self.p50_ns,
            self.p95_ns,
            self.iters,
            self.samples
        )
    }
}

fn results_registry() -> &'static Mutex<Vec<BenchResult>> {
    static RESULTS: OnceLock<Mutex<Vec<BenchResult>>> = OnceLock::new();
    RESULTS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Drain every benchmark result recorded since the last call (process-wide,
/// in completion order). The registry recovers from a poisoned lock: losing
/// a panicking bench's numbers must not lose everyone else's.
pub fn take_results() -> Vec<BenchResult> {
    match results_registry().lock() {
        Ok(mut r) => std::mem::take(&mut *r),
        Err(poisoned) => std::mem::take(&mut *poisoned.into_inner()),
    }
}

fn record_result(result: BenchResult) {
    match results_registry().lock() {
        Ok(mut r) => r.push(result),
        Err(poisoned) => poisoned.into_inner().push(result),
    }
}

/// Drives one benchmark's timed batches.
///
/// The engine calls the registered closure several times — once per warmup
/// pass and once per sample — with `iters` set for that stage; `iter` runs
/// its function that many times under one pair of clock readings.
pub struct Bencher {
    clock: Arc<dyn BenchClock>,
    iters: u64,
    last_batch_ns: u64,
    ran: bool,
}

impl Bencher {
    /// Run `f` `iters` times, timing the whole batch with two clock reads.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        self.ran = true;
        let start = self.clock.now_ns();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.last_batch_ns = self.clock.now_ns().saturating_sub(start);
    }
}

/// Engine configuration shared by [`Criterion`] and [`BenchmarkGroup`].
#[derive(Clone)]
struct EngineConfig {
    budget: Duration,
    samples: usize,
    clock: Arc<dyn BenchClock>,
    quiet: bool,
}

/// Registry/driver for a group of benchmarks.
pub struct Criterion {
    config: EngineConfig,
}

impl Default for Criterion {
    fn default() -> Self {
        // `MATILDA_BENCH_BUDGET_MS` scales every benchmark's measurement
        // budget without touching code — CI uses it to keep the suite fast.
        let budget_ms = std::env::var("MATILDA_BENCH_BUDGET_MS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(300);
        Self {
            config: EngineConfig {
                budget: Duration::from_millis(budget_ms.max(1)),
                samples: 32,
                clock: Arc::new(WallClock),
                quiet: false,
            },
        }
    }
}

impl Criterion {
    /// Set the per-benchmark measurement budget.
    pub fn measurement_time(&mut self, budget: Duration) -> &mut Self {
        self.config.budget = budget;
        self
    }

    /// Set the number of timed sample batches per benchmark.
    pub fn sample_count(&mut self, samples: usize) -> &mut Self {
        self.config.samples = samples.max(2);
        self
    }

    /// Measure on `clock` instead of the wall clock (deterministic tests).
    pub fn with_clock(&mut self, clock: Arc<dyn BenchClock>) -> &mut Self {
        self.config.clock = clock;
        self
    }

    /// Suppress the per-benchmark stdout line (results still register).
    pub fn quiet(&mut self, quiet: bool) -> &mut Self {
        self.config.quiet = quiet;
        self
    }

    /// Measure `f` under `name`, printing and recording its statistics.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, &self.config, &mut f);
        self
    }

    /// Open a named group; benchmarks run as `group/name`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            config: self.config.clone(),
            _criterion: self,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    name: String,
    config: EngineConfig,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed sample batches for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.samples = n.max(2);
        self
    }

    /// Shrink or grow the per-benchmark time budget.
    pub fn measurement_time(&mut self, budget: Duration) -> &mut Self {
        self.config.budget = budget;
        self
    }

    /// Measure `f` under `group/name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_one(&full, &self.config, &mut f);
        self
    }

    /// End the group (no-op; finishes on drop too).
    pub fn finish(self) {}
}

/// Nearest-rank percentile of pre-sorted `values` (`q` in 0..=1).
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, config: &EngineConfig, f: &mut F) {
    let budget_ns = config.budget.as_nanos().max(1) as u64;
    let clock = config.clock.clone();

    // Warmup: untimed single-iteration passes until ~10% of the budget is
    // spent (at least one, at most 100). The elapsed time doubles as the
    // calibration estimate for the sample batch size.
    let warmup_budget = (budget_ns / 10).max(1);
    let warmup_start = clock.now_ns();
    let mut warmup_iters = 0u64;
    loop {
        let mut b = Bencher {
            clock: clock.clone(),
            iters: 1,
            last_batch_ns: 0,
            ran: false,
        };
        f(&mut b);
        if !b.ran {
            // The closure never called `iter`: nothing to measure.
            record_result(BenchResult {
                name: name.to_string(),
                mean_ns: 0.0,
                p50_ns: 0.0,
                p95_ns: 0.0,
                iters: 0,
                samples: 0,
            });
            return;
        }
        warmup_iters += 1;
        let spent = clock.now_ns().saturating_sub(warmup_start);
        if spent >= warmup_budget || warmup_iters >= 100 {
            break;
        }
    }
    let warmup_spent = clock.now_ns().saturating_sub(warmup_start).max(1);
    let est_per_iter = (warmup_spent / warmup_iters).max(1);

    // Calibration: pick iterations per sample so `samples` batches fit the
    // remaining budget, clamped so a single fast function still aggregates
    // enough iterations to rise above timer resolution.
    let samples = config.samples.max(2);
    let sample_budget = (budget_ns / samples as u64).max(1);
    let iters_per_sample = (sample_budget / est_per_iter).clamp(1, 10_000_000);

    // Sampling: timed batches; stop early past 2x budget so one slow
    // benchmark cannot stall the whole suite.
    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(samples);
    let mut total_ns = 0u64;
    let mut total_iters = 0u64;
    let sampling_start = clock.now_ns();
    for _ in 0..samples {
        let mut b = Bencher {
            clock: clock.clone(),
            iters: iters_per_sample,
            last_batch_ns: 0,
            ran: false,
        };
        f(&mut b);
        total_ns += b.last_batch_ns;
        total_iters += iters_per_sample;
        per_iter_ns.push(b.last_batch_ns as f64 / iters_per_sample as f64);
        if clock.now_ns().saturating_sub(sampling_start) > budget_ns.saturating_mul(2) {
            break;
        }
    }

    per_iter_ns.sort_by(|a, b| a.total_cmp(b));
    let result = BenchResult {
        name: name.to_string(),
        mean_ns: total_ns as f64 / total_iters.max(1) as f64,
        p50_ns: percentile(&per_iter_ns, 0.50),
        p95_ns: percentile(&per_iter_ns, 0.95),
        iters: total_iters,
        samples: per_iter_ns.len(),
    };
    if !config.quiet {
        println!(
            "bench {name}: mean {:.0} ns/iter, p50 {:.0}, p95 {:.0} ({} iters, {} samples)",
            result.mean_ns, result.p50_ns, result.p95_ns, result.iters, result.samples
        );
    }
    record_result(result);
}

/// Bundle benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    // The results registry is process-wide and tests run on concurrent
    // threads: serialize every test that drains it.
    fn registry_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn quiet_criterion(budget: Duration, samples: usize) -> Criterion {
        let mut c = Criterion::default();
        c.measurement_time(budget).sample_count(samples).quiet(true);
        c
    }

    #[test]
    fn bench_function_runs_and_records_stats() {
        let _guard = registry_lock();
        let _ = take_results();
        let mut c = quiet_criterion(Duration::from_millis(5), 4);
        let mut calls = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        let results = take_results();
        let smoke = results.iter().find(|r| r.name == "smoke").unwrap();
        assert!(calls >= 2, "warmup + at least one timed iteration");
        assert!(smoke.iters >= 1);
        assert!(smoke.samples >= 1);
        assert!(smoke.mean_ns >= 0.0);
        assert!(smoke.p50_ns <= smoke.p95_ns, "{smoke:?}");
    }

    #[test]
    fn manual_clock_is_deterministic() {
        let _guard = registry_lock();
        let run = || {
            let _ = take_results();
            let mut c = Criterion::default();
            c.measurement_time(Duration::from_micros(100))
                .sample_count(8)
                .quiet(true)
                .with_clock(Arc::new(ManualClock::new(1_000)));
            c.bench_function("det", |b| b.iter(|| black_box(1 + 1)));
            take_results().remove(0)
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "identical engine runs on a manual clock");
        assert!(a.iters > 0);
        // Each batch is bounded by two clock readings one step apart, so
        // the per-iteration estimate is step / iters_per_sample exactly.
        assert_eq!(a.p50_ns, a.p95_ns);
    }

    #[test]
    fn adaptive_iteration_counts_scale_with_budget() {
        let _guard = registry_lock();
        let measure = |budget_us: u64| {
            let _ = take_results();
            let mut c = Criterion::default();
            c.measurement_time(Duration::from_micros(budget_us))
                .sample_count(4)
                .quiet(true)
                .with_clock(Arc::new(ManualClock::new(100)));
            c.bench_function("scale", |b| b.iter(|| black_box(0)));
            take_results().remove(0).iters
        };
        let small = measure(10);
        let large = measure(10_000);
        assert!(
            large > small,
            "a larger budget must buy more iterations ({small} -> {large})"
        );
    }

    #[test]
    fn groups_prefix_names_and_share_the_registry() {
        let _guard = registry_lock();
        let _ = take_results();
        let mut c = quiet_criterion(Duration::from_millis(2), 3);
        let mut group = c.benchmark_group("grp");
        group.sample_size(3);
        group.measurement_time(Duration::from_millis(2));
        group.bench_function("inner", |b| b.iter(|| black_box(7u64.pow(2))));
        group.finish();
        let results = take_results();
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].name, "grp/inner");
    }

    #[test]
    fn json_export_is_well_formed() {
        let r = BenchResult {
            name: "a\"b".into(),
            mean_ns: 12.34,
            p50_ns: 10.0,
            p95_ns: 20.0,
            iters: 100,
            samples: 8,
        };
        let json = r.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"name\":\"a\\\"b\""), "{json}");
        assert!(json.contains("\"mean_ns\":12.3"), "{json}");
        assert!(json.contains("\"iters\":100"), "{json}");
    }

    #[test]
    fn closure_without_iter_records_empty_result() {
        let _guard = registry_lock();
        let _ = take_results();
        let mut c = quiet_criterion(Duration::from_millis(1), 2);
        c.bench_function("noop", |_b| {});
        let results = take_results();
        assert_eq!(results[0].iters, 0);
        assert_eq!(results[0].samples, 0);
    }

    #[test]
    fn percentile_nearest_rank() {
        let v = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.50), 2.0);
        assert_eq!(percentile(&v, 0.95), 4.0);
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }
}
