//! Offline stand-in for `criterion`.
//!
//! Supports the macro/API surface the workspace benches use
//! (`criterion_group!`, `criterion_main!`, `Criterion::bench_function`,
//! `Bencher::iter`, `black_box`) with a simple measured loop: a short
//! warm-up, then timed batches, reporting mean per-iteration wall time.
//! No statistics engine, no plots — enough to smoke-run benches offline
//! and eyeball regressions.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Drives one benchmark's measured loop.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
    budget: Duration,
}

impl Bencher {
    /// Run `f` repeatedly within the time budget, timing every call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: one untimed call (fills caches, triggers lazy init).
        black_box(f());
        let start = Instant::now();
        loop {
            black_box(f());
            self.iters_done += 1;
            self.elapsed = start.elapsed();
            if self.elapsed >= self.budget || self.iters_done >= 1_000_000 {
                break;
            }
        }
    }
}

/// Registry/driver for a group of benchmarks.
pub struct Criterion {
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            budget: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Measure `f` under `name`, printing mean per-iteration time.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(name, self.budget, &mut f);
        self
    }

    /// Open a named group; benchmarks run as `group/name`.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            budget: self.budget,
            _criterion: self,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    name: String,
    budget: Duration,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stand-in is time-budgeted,
    /// not sample-counted, so the value is ignored.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Shrink or grow the per-benchmark time budget.
    pub fn measurement_time(&mut self, budget: Duration) -> &mut Self {
        self.budget = budget;
        self
    }

    /// Measure `f` under `group/name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        run_one(&full, self.budget, &mut f);
        self
    }

    /// End the group (no-op; finishes on drop too).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(name: &str, budget: Duration, f: &mut F) {
    let mut b = Bencher {
        iters_done: 0,
        elapsed: Duration::ZERO,
        budget,
    };
    f(&mut b);
    let mean_ns = if b.iters_done == 0 {
        0.0
    } else {
        b.elapsed.as_nanos() as f64 / b.iters_done as f64
    };
    println!(
        "bench {name}: {mean_ns:.0} ns/iter ({} iters)",
        b.iters_done
    );
}

/// Bundle benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emit `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut c = Criterion {
            budget: Duration::from_millis(5),
        };
        let mut calls = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        assert!(calls >= 2, "warm-up + at least one timed iteration");
    }
}
