//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` primitives behind `parking_lot`'s poison-free API
//! (`lock()` / `read()` / `write()` return guards directly). A poisoned
//! std lock is recovered rather than propagated, matching `parking_lot`'s
//! behaviour of not poisoning at all.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock whose `lock` cannot fail.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// A new lock owning `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A readers–writer lock whose acquisitions cannot fail.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// A new lock owning `value`.
    pub const fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_basic() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_basic() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn mutex_across_threads() {
        let m = Mutex::new(0usize);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }
}
