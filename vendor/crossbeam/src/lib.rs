//! Offline stand-in for `crossbeam`.
//!
//! Provides `crossbeam::thread::scope` on top of `std::thread::scope`
//! (available since Rust 1.63), preserving crossbeam's two API quirks the
//! workspace relies on: the closure passed to `spawn` receives the scope as
//! an argument, and `scope` returns a `Result` that is `Err` when any
//! spawned thread panicked.

/// Scoped threads.
pub mod thread {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// A handle for spawning threads bound to the enclosing scope.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a scoped thread; the closure receives this scope so it can
        /// spawn further threads (crossbeam's signature).
        pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            inner.spawn(move || f(&Scope { inner }))
        }
    }

    /// Run `f` with a scope in which borrowed-data threads can be spawned.
    ///
    /// All spawned threads are joined before this returns. Returns `Err`
    /// with the panic payload if the closure or any unjoined spawned thread
    /// panicked.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_all() {
        let mut data = [0u64; 8];
        super::thread::scope(|scope| {
            for chunk in data.chunks_mut(2) {
                scope.spawn(move |_| {
                    for v in chunk {
                        *v += 1;
                    }
                });
            }
        })
        .unwrap();
        assert!(data.iter().all(|&v| v == 1));
    }

    #[test]
    fn panic_in_worker_is_err() {
        let result = super::thread::scope(|scope| {
            scope.spawn(|_| panic!("boom"));
        });
        assert!(result.is_err());
    }

    #[test]
    fn nested_spawn_compiles() {
        let out = super::thread::scope(|scope| {
            scope
                .spawn(|inner| inner.spawn(|_| 21).join().unwrap() * 2)
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(out, 42);
    }
}
