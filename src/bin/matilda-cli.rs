//! The MATILDA command-line client: a live conversational design session
//! over a CSV file.
//!
//! ```sh
//! cargo run --release --bin matilda-cli -- data.csv [--name you] \
//!     [--domain urbanism] [--expertise novice|analyst|expert] [--seed 42]
//! # or, with no CSV, a built-in demo dataset:
//! cargo run --release --bin matilda-cli
//! ```
//!
//! Type what you want in plain language ("predict 'price'", "yes", "no",
//! "surprise me", "run it", "why?", "done"). Every decision is recorded;
//! on exit the session's provenance report is printed.

use matilda::datagen::{blobs_with_noise, BlobsConfig};
use matilda::prelude::*;
use matilda::provenance::report::session_report;
use std::io::{BufRead, Write};

struct Args {
    csv: Option<String>,
    name: String,
    domain: String,
    expertise: Expertise,
    seed: u64,
}

fn parse_args() -> Args {
    let mut args = Args {
        csv: None,
        name: "friend".into(),
        domain: "your field".into(),
        expertise: Expertise::Novice,
        seed: 42,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--name" => args.name = it.next().unwrap_or_default(),
            "--domain" => args.domain = it.next().unwrap_or_default(),
            "--expertise" => {
                args.expertise = match it.next().as_deref() {
                    Some("analyst") => Expertise::Analyst,
                    Some("expert") | Some("data_scientist") => Expertise::DataScientist,
                    _ => Expertise::Novice,
                }
            }
            "--seed" => args.seed = it.next().and_then(|s| s.parse().ok()).unwrap_or(42),
            "--help" | "-h" => {
                eprintln!(
                    "usage: matilda-cli [data.csv] [--name N] [--domain D] \
                     [--expertise novice|analyst|expert] [--seed S]"
                );
                std::process::exit(0);
            }
            other => args.csv = Some(other.to_string()),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let frame = match &args.csv {
        Some(path) => match read_csv_path(path, &CsvOptions::default()) {
            Ok(df) => {
                eprintln!("loaded {path}: {} rows x {} cols", df.n_rows(), df.n_cols());
                df
            }
            Err(e) => {
                eprintln!("could not read {path}: {e}");
                std::process::exit(1);
            }
        },
        None => {
            eprintln!("(no CSV given; using a built-in demo dataset with a 'label' column)");
            blobs_with_noise(
                &BlobsConfig {
                    n_rows: 200,
                    n_classes: 2,
                    separation: 4.0,
                    ..Default::default()
                },
                2,
            )
        }
    };

    let user = UserProfile::new(args.name, args.expertise, args.domain, 0.5);
    let config = PlatformConfig {
        seed: args.seed,
        ..PlatformConfig::default()
    };

    // With MATILDA_SESSION_DIR set, sessions are event-sourced: every turn
    // lands in a durable per-session log, and a session killed mid-design
    // is resurrected here on the next start by snapshot + tail replay.
    let store = match SessionStore::from_env() {
        Ok(store) => store,
        Err(e) => {
            eprintln!("(session store unavailable: {e}; continuing without persistence)");
            None
        }
    };
    let mut resumed = None;
    if let Some(store) = &store {
        let report = recover(store, &config, |_meta| Some(frame.clone()));
        for id in &report.quarantined {
            eprintln!("(corrupt session log '{id}' moved to quarantine)");
        }
        resumed = report.resumed.into_iter().next();
    }
    let mut session = match resumed {
        Some(r) => {
            println!("matilda> {}", r.narration);
            r.session
        }
        None => {
            // A fresh id per invocation: replay folds one conversation per
            // log, so a clean-closed log is never appended to again.
            let name = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| format!("cli-{}", d.as_secs()))
                .unwrap_or_else(|_| "cli-session".to_string());
            let mut s = DesignSession::new(name, "interactive CLI session", frame, user, config);
            if let Some(store) = &store {
                if let Err(e) = s.attach_store(store) {
                    eprintln!("(session persistence disabled: {e})");
                }
            }
            println!("matilda> {}", s.opening());
            s
        }
    };

    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    loop {
        print!("you> ");
        out.flush().ok();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            // EOF: close the session cleanly so the log audits.
            if !session.is_closed() {
                let _ = session.step("done");
            }
            break;
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match session.step(line) {
            Ok(outcome) => {
                println!("matilda> {}", outcome.reply.replace('\n', "\nmatilda> "));
                if outcome.closed {
                    break;
                }
            }
            Err(e) => {
                println!("matilda> (something went wrong: {e})");
                break;
            }
        }
    }

    // Leave an auditable trace behind.
    println!("\n{}", session_report(&session.recorder().snapshot()));
}
