//! # MATILDA
//!
//! *Inclusive data-science pipeline design through computational
//! creativity* — a full Rust implementation of the MATILDA platform
//! (Vargas-Solar et al., EDBT 2024) and every substrate it depends on.
//!
//! This façade crate re-exports the whole workspace:
//!
//! | Crate | Role |
//! |---|---|
//! | [`data`] | columnar dataframes, CSV, statistics, transforms, splits |
//! | [`ml`] | from-scratch estimators, metrics, cross-validation |
//! | [`pipeline`] | declarative pipeline specs, validation, execution |
//! | [`creativity`] | the CC engine: grammar, patterns, novelty, search |
//! | [`conversation`] | intents, suggestions, the dialogue state machine |
//! | [`provenance`] | append-only session logs, PROV graphs, replay |
//! | [`datagen`] | synthetic scenarios incl. the urban-policy case study |
//! | [`core`] | the platform: sessions, personas, design modes |
//! | [`telemetry`] | RAII spans, metrics registry, trace export & run reports |
//! | [`resilience`] | fault injection, retry/backoff, panic isolation, breakers |
//!
//! ## Quickstart
//!
//! ```
//! use matilda::prelude::*;
//!
//! // A small dataset and a simulated non-technical user.
//! let df = matilda::datagen::blobs(&matilda::datagen::BlobsConfig {
//!     n_rows: 90, ..Default::default()
//! });
//! let platform = Matilda::new(PlatformConfig::quick());
//! let mut persona = Persona::trusting_novice("label", 7);
//! let outcome = platform
//!     .design_conversational(&df, &mut persona, "which blob is which?")
//!     .unwrap();
//! assert!(outcome.report.test_score > 0.5);
//! ```

pub use matilda_conversation as conversation;
pub use matilda_core as core;
pub use matilda_creativity as creativity;
pub use matilda_data as data;
pub use matilda_datagen as datagen;
pub use matilda_ml as ml;
pub use matilda_pipeline as pipeline;
pub use matilda_provenance as provenance;
pub use matilda_resilience as resilience;
pub use matilda_telemetry as telemetry;

/// One-stop imports for platform users.
pub mod prelude {
    pub use matilda_conversation::prelude::*;
    pub use matilda_core::prelude::*;
    pub use matilda_creativity::prelude::*;
    pub use matilda_data::prelude::*;
    pub use matilda_ml::prelude::*;
    pub use matilda_pipeline::prelude::{
        cv_score, cv_score_with_ctx, run, run_with_ctx, standard_graph, ExecContext,
        PipelineOutcome, PipelineReport, PipelineSpec, Task,
    };
    pub use matilda_provenance::prelude::*;
    // Every substrate defines its own `Result` alias; the platform's is the
    // one a facade user means.
    pub use matilda_core::prelude::Result;
}
