//! k-fold cross-validation over [`ModelSpec`]s.
//!
//! Cross-validated scores are the *value* signal MATILDA's creativity engine
//! optimizes, so this module keeps everything deterministic given a seed.

use crate::dataset::Dataset;
use crate::error::{MlError, Result};
use crate::metrics;
use crate::model::ModelSpec;
use matilda_data::split::k_fold_indices;

/// Scoring rule for cross-validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Scoring {
    /// Classification accuracy (higher is better).
    Accuracy,
    /// Macro-averaged F1 (higher is better).
    MacroF1,
    /// R² (higher is better) for regression.
    R2,
    /// Negative RMSE, so that higher is always better.
    NegRmse,
}

impl Scoring {
    /// `true` when the scoring applies to classification datasets.
    pub fn is_classification(self) -> bool {
        matches!(self, Scoring::Accuracy | Scoring::MacroF1)
    }

    /// Stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Scoring::Accuracy => "accuracy",
            Scoring::MacroF1 => "macro_f1",
            Scoring::R2 => "r2",
            Scoring::NegRmse => "neg_rmse",
        }
    }
}

/// Per-fold and aggregate results of a cross-validation run.
#[derive(Debug, Clone, PartialEq)]
pub struct CvResult {
    /// Score per fold, in fold order.
    pub fold_scores: Vec<f64>,
    /// Mean of the fold scores.
    pub mean: f64,
    /// Sample standard deviation of the fold scores.
    pub std: f64,
}

fn score_classification(
    spec: &ModelSpec,
    train: &Dataset,
    test: &Dataset,
    scoring: Scoring,
) -> Result<f64> {
    let mut model = spec
        .build_classifier()
        .ok_or_else(|| MlError::InvalidParameter(format!("{} cannot classify", spec.name())))?;
    let y_train = train.y_classes()?;
    let y_test = test.y_classes()?;
    model.fit(&train.x, &y_train)?;
    let preds = model.predict(&test.x)?;
    match scoring {
        Scoring::Accuracy => metrics::accuracy(&y_test, &preds),
        Scoring::MacroF1 => {
            let k = train.n_classes().max(model.n_classes());
            metrics::macro_f1(&y_test, &preds, k)
        }
        _ => unreachable!("checked by caller"),
    }
}

fn score_regression(
    spec: &ModelSpec,
    train: &Dataset,
    test: &Dataset,
    scoring: Scoring,
) -> Result<f64> {
    let mut model = spec
        .build_regressor()
        .ok_or_else(|| MlError::InvalidParameter(format!("{} cannot regress", spec.name())))?;
    model.fit(&train.x, &train.y)?;
    let preds = model.predict(&test.x)?;
    match scoring {
        Scoring::R2 => metrics::r2_score(&test.y, &preds),
        Scoring::NegRmse => Ok(-metrics::rmse(&test.y, &preds)?),
        _ => unreachable!("checked by caller"),
    }
}

/// Train/score `spec` on an explicit train/test pair.
pub fn holdout_score(
    spec: &ModelSpec,
    train: &Dataset,
    test: &Dataset,
    scoring: Scoring,
) -> Result<f64> {
    if scoring.is_classification() != train.is_classification() {
        return Err(MlError::InvalidParameter(format!(
            "scoring {} does not match dataset task",
            scoring.name()
        )));
    }
    if scoring.is_classification() {
        score_classification(spec, train, test, scoring)
    } else {
        score_regression(spec, train, test, scoring)
    }
}

/// k-fold cross-validation of `spec` on `data`.
pub fn cross_validate(
    spec: &ModelSpec,
    data: &Dataset,
    k: usize,
    scoring: Scoring,
    seed: u64,
) -> Result<CvResult> {
    let folds = k_fold_indices(data.n_rows(), k, seed)?;
    let mut fold_scores = Vec::with_capacity(k);
    for fold in &folds {
        crate::hooks::iteration("ml.cv.fold")?;
        let train = data.subset(&fold.train)?;
        let test = data.subset(&fold.validation)?;
        fold_scores.push(holdout_score(spec, &train, &test, scoring)?);
    }
    let mean = fold_scores.iter().sum::<f64>() / fold_scores.len() as f64;
    let var = if fold_scores.len() > 1 {
        fold_scores.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / (fold_scores.len() - 1) as f64
    } else {
        0.0
    };
    Ok(CvResult {
        fold_scores,
        mean,
        std: var.sqrt(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use matilda_data::{Column, DataFrame};

    fn classification_data(n: usize) -> Dataset {
        let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let labels: Vec<&str> = (0..n)
            .map(|i| if i < n / 2 { "low" } else { "high" })
            .collect();
        let df = DataFrame::from_columns(vec![
            ("x", Column::from_f64(x)),
            ("y", Column::from_categorical(&labels)),
        ])
        .unwrap();
        Dataset::classification(&df, &["x"], "y").unwrap()
    }

    fn regression_data(n: usize) -> Dataset {
        let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v + 1.0).collect();
        let df =
            DataFrame::from_columns(vec![("x", Column::from_f64(x)), ("y", Column::from_f64(y))])
                .unwrap();
        Dataset::regression(&df, &["x"], "y").unwrap()
    }

    #[test]
    fn cv_easy_classification_high_accuracy() {
        let data = classification_data(60);
        let spec = ModelSpec::Tree {
            max_depth: 3,
            min_samples_split: 2,
        };
        let result = cross_validate(&spec, &data, 5, Scoring::Accuracy, 42).unwrap();
        assert_eq!(result.fold_scores.len(), 5);
        assert!(result.mean > 0.9, "mean accuracy {}", result.mean);
        assert!(result.std < 0.2);
    }

    #[test]
    fn cv_linear_regression_near_perfect() {
        let data = regression_data(40);
        let spec = ModelSpec::Linear { ridge: 0.0 };
        let result = cross_validate(&spec, &data, 4, Scoring::R2, 1).unwrap();
        assert!(result.mean > 0.99, "mean r2 {}", result.mean);
    }

    #[test]
    fn cv_neg_rmse_is_negative_but_small() {
        let data = regression_data(40);
        let spec = ModelSpec::Linear { ridge: 0.0 };
        let result = cross_validate(&spec, &data, 4, Scoring::NegRmse, 1).unwrap();
        assert!(result.mean <= 0.0);
        assert!(result.mean > -0.5, "exact fit should have tiny rmse");
    }

    #[test]
    fn scoring_task_mismatch_rejected() {
        let data = regression_data(20);
        let spec = ModelSpec::Linear { ridge: 0.0 };
        let train = data.subset(&(0..10).collect::<Vec<_>>()).unwrap();
        let test = data.subset(&(10..20).collect::<Vec<_>>()).unwrap();
        assert!(holdout_score(&spec, &train, &test, Scoring::Accuracy).is_err());
    }

    #[test]
    fn capability_mismatch_rejected() {
        let data = classification_data(20);
        let spec = ModelSpec::Linear { ridge: 0.0 };
        assert!(cross_validate(&spec, &data, 2, Scoring::Accuracy, 0).is_err());
    }

    #[test]
    fn cv_deterministic() {
        let data = classification_data(40);
        let spec = ModelSpec::Knn { k: 3 };
        let a = cross_validate(&spec, &data, 4, Scoring::Accuracy, 5).unwrap();
        let b = cross_validate(&spec, &data, 4, Scoring::Accuracy, 5).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn zero_budget_preempts_before_the_first_fold() {
        use matilda_resilience::{cancel, DeadlineBudget, TestClock};
        let clock = std::sync::Arc::new(TestClock::new());
        let budget = DeadlineBudget::start(clock.as_ref(), std::time::Duration::ZERO);
        let _scope = cancel::activate_budget(budget, clock);
        let data = classification_data(40);
        let spec = ModelSpec::Knn { k: 3 };
        let err = cross_validate(&spec, &data, 4, Scoring::Accuracy, 5).unwrap_err();
        assert_eq!(err, MlError::Preempted("ml.cv.fold".into()));
    }

    #[test]
    fn macro_f1_scoring_works() {
        let data = classification_data(40);
        let spec = ModelSpec::GaussianNb;
        let result = cross_validate(&spec, &data, 4, Scoring::MacroF1, 2).unwrap();
        assert!(result.mean > 0.8, "macro f1 {}", result.mean);
    }
}
