//! Clustering quality metrics.

use crate::error::{MlError, Result};
use crate::linalg::euclidean;

/// Sum of squared distances from each point to its assigned centroid.
pub fn inertia(points: &[Vec<f64>], assignments: &[usize], centroids: &[Vec<f64>]) -> Result<f64> {
    if points.is_empty() {
        return Err(MlError::EmptyInput("points"));
    }
    if points.len() != assignments.len() {
        return Err(MlError::LengthMismatch {
            expected: points.len(),
            got: assignments.len(),
        });
    }
    let mut total = 0.0;
    for (p, &a) in points.iter().zip(assignments) {
        let c = centroids
            .get(a)
            .ok_or_else(|| MlError::InvalidParameter(format!("assignment {a} has no centroid")))?;
        total += euclidean(p, c).powi(2);
    }
    Ok(total)
}

/// Mean silhouette coefficient over all points, in `[-1, 1]`.
///
/// For each point: `a` is the mean distance to points in its own cluster,
/// `b` the smallest mean distance to another cluster; the silhouette is
/// `(b - a) / max(a, b)`. Singleton clusters contribute 0, matching the
/// standard convention.
pub fn silhouette(points: &[Vec<f64>], assignments: &[usize]) -> Result<f64> {
    if points.is_empty() {
        return Err(MlError::EmptyInput("points"));
    }
    if points.len() != assignments.len() {
        return Err(MlError::LengthMismatch {
            expected: points.len(),
            got: assignments.len(),
        });
    }
    let k = assignments.iter().copied().max().map_or(0, |m| m + 1);
    if k < 2 {
        return Err(MlError::InvalidParameter(
            "silhouette needs at least 2 clusters".into(),
        ));
    }
    let mut members: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (i, &a) in assignments.iter().enumerate() {
        members[a].push(i);
    }
    let mut total = 0.0;
    for (i, p) in points.iter().enumerate() {
        let own = assignments[i];
        if members[own].len() <= 1 {
            continue; // silhouette of a singleton is 0
        }
        let a: f64 = members[own]
            .iter()
            .filter(|&&j| j != i)
            .map(|&j| euclidean(p, &points[j]))
            .sum::<f64>()
            / (members[own].len() - 1) as f64;
        let mut b = f64::INFINITY;
        for (c, cluster) in members.iter().enumerate() {
            if c == own || cluster.is_empty() {
                continue;
            }
            let mean_d: f64 = cluster
                .iter()
                .map(|&j| euclidean(p, &points[j]))
                .sum::<f64>()
                / cluster.len() as f64;
            b = b.min(mean_d);
        }
        if b.is_finite() {
            total += (b - a) / a.max(b);
        }
    }
    Ok(total / points.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_blobs() -> (Vec<Vec<f64>>, Vec<usize>) {
        let points = vec![
            vec![0.0, 0.0],
            vec![0.1, 0.0],
            vec![0.0, 0.1],
            vec![10.0, 10.0],
            vec![10.1, 10.0],
            vec![10.0, 10.1],
        ];
        let assignments = vec![0, 0, 0, 1, 1, 1];
        (points, assignments)
    }

    #[test]
    fn inertia_at_centroids_zero() {
        let points = vec![vec![1.0, 1.0], vec![3.0, 3.0]];
        let centroids = points.clone();
        assert_eq!(inertia(&points, &[0, 1], &centroids).unwrap(), 0.0);
    }

    #[test]
    fn inertia_known() {
        let points = vec![vec![0.0], vec![2.0]];
        let centroids = vec![vec![1.0]];
        assert_eq!(inertia(&points, &[0, 0], &centroids).unwrap(), 2.0);
    }

    #[test]
    fn inertia_bad_assignment_errors() {
        assert!(inertia(&[vec![0.0]], &[1], &[vec![0.0]]).is_err());
    }

    #[test]
    fn silhouette_well_separated_near_one() {
        let (points, assignments) = two_blobs();
        let s = silhouette(&points, &assignments).unwrap();
        assert!(
            s > 0.95,
            "well separated blobs should score near 1, got {s}"
        );
    }

    #[test]
    fn silhouette_bad_assignment_low() {
        let (points, _) = two_blobs();
        // Deliberately mix the clusters.
        let bad = vec![0, 1, 0, 1, 0, 1];
        let s = silhouette(&points, &bad).unwrap();
        assert!(s < 0.0, "mixed clusters should score negative, got {s}");
    }

    #[test]
    fn silhouette_needs_two_clusters() {
        assert!(silhouette(&[vec![0.0], vec![1.0]], &[0, 0]).is_err());
    }

    #[test]
    fn silhouette_singletons_contribute_zero() {
        let points = vec![vec![0.0], vec![5.0], vec![5.1]];
        let s = silhouette(&points, &[0, 1, 1]).unwrap();
        assert!(s > 0.0);
    }
}
