//! Classification metrics.

use crate::error::{MlError, Result};

fn check_lengths(a: usize, b: usize) -> Result<()> {
    if a == 0 {
        return Err(MlError::EmptyInput("metric input"));
    }
    if a != b {
        return Err(MlError::LengthMismatch {
            expected: a,
            got: b,
        });
    }
    Ok(())
}

/// Fraction of predictions equal to the truth.
pub fn accuracy(y_true: &[usize], y_pred: &[usize]) -> Result<f64> {
    check_lengths(y_true.len(), y_pred.len())?;
    let hits = y_true.iter().zip(y_pred).filter(|(t, p)| t == p).count();
    Ok(hits as f64 / y_true.len() as f64)
}

/// A k×k confusion matrix; `counts[t][p]` counts true class `t` predicted `p`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    /// Row = true class, column = predicted class.
    pub counts: Vec<Vec<usize>>,
}

impl ConfusionMatrix {
    /// Number of classes.
    pub fn n_classes(&self) -> usize {
        self.counts.len()
    }

    /// True positives of class `c`.
    pub fn tp(&self, c: usize) -> usize {
        self.counts[c][c]
    }

    /// False positives of class `c` (predicted `c`, truth differs).
    pub fn fp(&self, c: usize) -> usize {
        (0..self.n_classes())
            .filter(|&t| t != c)
            .map(|t| self.counts[t][c])
            .sum()
    }

    /// False negatives of class `c` (truth `c`, predicted otherwise).
    pub fn fn_(&self, c: usize) -> usize {
        (0..self.n_classes())
            .filter(|&p| p != c)
            .map(|p| self.counts[c][p])
            .sum()
    }

    /// Total observations.
    pub fn total(&self) -> usize {
        self.counts
            .iter()
            .map(|row| row.iter().sum::<usize>())
            .sum()
    }
}

/// Build the confusion matrix over `n_classes` classes.
pub fn confusion_matrix(
    y_true: &[usize],
    y_pred: &[usize],
    n_classes: usize,
) -> Result<ConfusionMatrix> {
    check_lengths(y_true.len(), y_pred.len())?;
    let mut counts = vec![vec![0usize; n_classes]; n_classes];
    for (&t, &p) in y_true.iter().zip(y_pred) {
        if t >= n_classes || p >= n_classes {
            return Err(MlError::InvalidParameter(format!(
                "class code out of range: true={t} pred={p} n_classes={n_classes}"
            )));
        }
        counts[t][p] += 1;
    }
    Ok(ConfusionMatrix { counts })
}

/// Precision of `positive`: TP / (TP + FP); 0 when the denominator is 0.
pub fn precision(y_true: &[usize], y_pred: &[usize], positive: usize) -> Result<f64> {
    let n = 1 + y_true
        .iter()
        .chain(y_pred)
        .copied()
        .max()
        .unwrap_or(0)
        .max(positive);
    let cm = confusion_matrix(y_true, y_pred, n)?;
    let denom = cm.tp(positive) + cm.fp(positive);
    Ok(if denom == 0 {
        0.0
    } else {
        cm.tp(positive) as f64 / denom as f64
    })
}

/// Recall of `positive`: TP / (TP + FN); 0 when the denominator is 0.
pub fn recall(y_true: &[usize], y_pred: &[usize], positive: usize) -> Result<f64> {
    let n = 1 + y_true
        .iter()
        .chain(y_pred)
        .copied()
        .max()
        .unwrap_or(0)
        .max(positive);
    let cm = confusion_matrix(y_true, y_pred, n)?;
    let denom = cm.tp(positive) + cm.fn_(positive);
    Ok(if denom == 0 {
        0.0
    } else {
        cm.tp(positive) as f64 / denom as f64
    })
}

/// F1 of `positive`: harmonic mean of precision and recall.
pub fn f1_score(y_true: &[usize], y_pred: &[usize], positive: usize) -> Result<f64> {
    let p = precision(y_true, y_pred, positive)?;
    let r = recall(y_true, y_pred, positive)?;
    Ok(if p + r == 0.0 {
        0.0
    } else {
        2.0 * p * r / (p + r)
    })
}

/// Macro-averaged F1 over `n_classes` classes.
pub fn macro_f1(y_true: &[usize], y_pred: &[usize], n_classes: usize) -> Result<f64> {
    if n_classes == 0 {
        return Err(MlError::InvalidParameter(
            "macro_f1 needs n_classes > 0".into(),
        ));
    }
    let mut sum = 0.0;
    for c in 0..n_classes {
        sum += f1_score(y_true, y_pred, c)?;
    }
    Ok(sum / n_classes as f64)
}

/// Area under the ROC curve for binary labels and positive-class scores,
/// computed via the Mann-Whitney U statistic with tie correction.
pub fn roc_auc(y_true: &[usize], scores: &[f64]) -> Result<f64> {
    check_lengths(y_true.len(), scores.len())?;
    let n_pos = y_true.iter().filter(|&&t| t == 1).count();
    let n_neg = y_true.len() - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return Err(MlError::InvalidParameter(
            "roc_auc needs both classes present".into(),
        ));
    }
    if y_true.iter().any(|&t| t > 1) {
        return Err(MlError::InvalidParameter(
            "roc_auc is binary; labels must be 0/1".into(),
        ));
    }
    // Rank scores ascending, averaging ranks over ties.
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));
    let mut ranks = vec![0.0; scores.len()];
    let mut i = 0;
    while i < order.len() {
        let mut j = i;
        while j + 1 < order.len() && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &order[i..=j] {
            ranks[k] = avg_rank;
        }
        i = j + 1;
    }
    let rank_sum_pos: f64 = y_true
        .iter()
        .zip(&ranks)
        .filter(|(&t, _)| t == 1)
        .map(|(_, &r)| r)
        .sum();
    let u = rank_sum_pos - (n_pos * (n_pos + 1)) as f64 / 2.0;
    Ok(u / (n_pos * n_neg) as f64)
}

/// Multiclass cross-entropy for predicted probability rows.
pub fn log_loss(y_true: &[usize], probas: &[Vec<f64>]) -> Result<f64> {
    check_lengths(y_true.len(), probas.len())?;
    const EPS: f64 = 1e-15;
    let mut total = 0.0;
    for (&t, p) in y_true.iter().zip(probas) {
        let pt = p.get(t).copied().ok_or_else(|| {
            MlError::InvalidParameter(format!("class {t} missing from probability row"))
        })?;
        total -= pt.clamp(EPS, 1.0).ln();
    }
    Ok(total / y_true.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accuracy_basic() {
        assert_eq!(accuracy(&[0, 1, 1, 0], &[0, 1, 0, 0]).unwrap(), 0.75);
        assert!(accuracy(&[], &[]).is_err());
        assert!(accuracy(&[0], &[0, 1]).is_err());
    }

    #[test]
    fn confusion_counts() {
        let cm = confusion_matrix(&[0, 0, 1, 1, 1], &[0, 1, 1, 1, 0], 2).unwrap();
        assert_eq!(cm.counts, vec![vec![1, 1], vec![1, 2]]);
        assert_eq!(cm.tp(1), 2);
        assert_eq!(cm.fp(1), 1);
        assert_eq!(cm.fn_(1), 1);
        assert_eq!(cm.total(), 5);
    }

    #[test]
    fn confusion_range_checked() {
        assert!(confusion_matrix(&[2], &[0], 2).is_err());
    }

    #[test]
    fn precision_recall_f1() {
        let t = [1, 1, 1, 0, 0];
        let p = [1, 1, 0, 1, 0];
        assert!((precision(&t, &p, 1).unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert!((recall(&t, &p, 1).unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert!((f1_score(&t, &p, 1).unwrap() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_precision_is_zero() {
        // Nothing predicted positive.
        assert_eq!(precision(&[1, 0], &[0, 0], 1).unwrap(), 0.0);
        assert_eq!(f1_score(&[0, 0], &[0, 0], 1).unwrap(), 0.0);
    }

    #[test]
    fn macro_f1_averages() {
        let t = [0, 0, 1, 1];
        let p = [0, 0, 1, 1];
        assert!((macro_f1(&t, &p, 2).unwrap() - 1.0).abs() < 1e-12);
        assert!(macro_f1(&t, &p, 0).is_err());
    }

    #[test]
    fn auc_perfect_and_inverted() {
        let t = [0, 0, 1, 1];
        assert_eq!(roc_auc(&t, &[0.1, 0.2, 0.8, 0.9]).unwrap(), 1.0);
        assert_eq!(roc_auc(&t, &[0.9, 0.8, 0.2, 0.1]).unwrap(), 0.0);
    }

    #[test]
    fn auc_random_is_half() {
        let t = [0, 1, 0, 1];
        let s = [0.5, 0.5, 0.5, 0.5];
        assert!(
            (roc_auc(&t, &s).unwrap() - 0.5).abs() < 1e-12,
            "ties average to 0.5"
        );
    }

    #[test]
    fn auc_needs_both_classes() {
        assert!(roc_auc(&[1, 1], &[0.1, 0.2]).is_err());
        assert!(roc_auc(&[0, 2], &[0.1, 0.2]).is_err());
    }

    #[test]
    fn auc_known_value() {
        // scores: pos {0.8, 0.4}, neg {0.6, 0.2}: pairs won = 3 of 4 -> 0.75
        let t = [1, 0, 1, 0];
        let s = [0.8, 0.6, 0.4, 0.2];
        assert!((roc_auc(&t, &s).unwrap() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn log_loss_confident_correct_is_small() {
        let t = [0, 1];
        let good = vec![vec![0.99, 0.01], vec![0.01, 0.99]];
        let bad = vec![vec![0.01, 0.99], vec![0.99, 0.01]];
        assert!(log_loss(&t, &good).unwrap() < log_loss(&t, &bad).unwrap());
    }

    #[test]
    fn log_loss_clamps_zero_probability() {
        let t = [0];
        let p = vec![vec![0.0, 1.0]];
        assert!(log_loss(&t, &p).unwrap().is_finite());
    }
}
