//! Evaluation metrics for the *assessment* phase of MATILDA pipelines.

pub mod classification;
pub mod clustering;
pub mod regression;

pub use classification::{
    accuracy, confusion_matrix, f1_score, log_loss, macro_f1, precision, recall, roc_auc,
    ConfusionMatrix,
};
pub use clustering::{inertia, silhouette};
pub use regression::{mae, mse, r2_score, rmse};
