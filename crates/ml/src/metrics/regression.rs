//! Regression metrics.

use crate::error::{MlError, Result};

fn check(y_true: &[f64], y_pred: &[f64]) -> Result<()> {
    if y_true.is_empty() {
        return Err(MlError::EmptyInput("metric input"));
    }
    if y_true.len() != y_pred.len() {
        return Err(MlError::LengthMismatch {
            expected: y_true.len(),
            got: y_pred.len(),
        });
    }
    Ok(())
}

/// Mean squared error.
pub fn mse(y_true: &[f64], y_pred: &[f64]) -> Result<f64> {
    check(y_true, y_pred)?;
    Ok(y_true
        .iter()
        .zip(y_pred)
        .map(|(t, p)| (t - p).powi(2))
        .sum::<f64>()
        / y_true.len() as f64)
}

/// Root mean squared error.
pub fn rmse(y_true: &[f64], y_pred: &[f64]) -> Result<f64> {
    Ok(mse(y_true, y_pred)?.sqrt())
}

/// Mean absolute error.
pub fn mae(y_true: &[f64], y_pred: &[f64]) -> Result<f64> {
    check(y_true, y_pred)?;
    Ok(y_true
        .iter()
        .zip(y_pred)
        .map(|(t, p)| (t - p).abs())
        .sum::<f64>()
        / y_true.len() as f64)
}

/// Coefficient of determination R². 1 is perfect, 0 matches the mean
/// predictor, negative is worse than the mean predictor. Errors when the
/// target has zero variance.
pub fn r2_score(y_true: &[f64], y_pred: &[f64]) -> Result<f64> {
    check(y_true, y_pred)?;
    let mean = y_true.iter().sum::<f64>() / y_true.len() as f64;
    let ss_tot: f64 = y_true.iter().map(|t| (t - mean).powi(2)).sum();
    if ss_tot == 0.0 {
        return Err(MlError::InvalidParameter(
            "r2 undefined for constant target".into(),
        ));
    }
    let ss_res: f64 = y_true
        .iter()
        .zip(y_pred)
        .map(|(t, p)| (t - p).powi(2))
        .sum();
    Ok(1.0 - ss_res / ss_tot)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let y = [1.0, 2.0, 3.0];
        assert_eq!(mse(&y, &y).unwrap(), 0.0);
        assert_eq!(rmse(&y, &y).unwrap(), 0.0);
        assert_eq!(mae(&y, &y).unwrap(), 0.0);
        assert_eq!(r2_score(&y, &y).unwrap(), 1.0);
    }

    #[test]
    fn known_values() {
        let t = [1.0, 2.0, 3.0];
        let p = [2.0, 2.0, 2.0];
        assert!((mse(&t, &p).unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert!((mae(&t, &p).unwrap() - 2.0 / 3.0).abs() < 1e-12);
        assert!(
            (r2_score(&t, &p).unwrap() - 0.0).abs() < 1e-12,
            "mean predictor scores 0"
        );
    }

    #[test]
    fn r2_negative_when_worse_than_mean() {
        let t = [1.0, 2.0, 3.0];
        let p = [3.0, 2.0, 1.0];
        assert!(r2_score(&t, &p).unwrap() < 0.0);
    }

    #[test]
    fn r2_constant_target_errors() {
        assert!(r2_score(&[2.0, 2.0], &[1.0, 3.0]).is_err());
    }

    #[test]
    fn length_validation() {
        assert!(mse(&[], &[]).is_err());
        assert!(mae(&[1.0], &[1.0, 2.0]).is_err());
    }
}
