//! Bridging [`matilda_data::DataFrame`] tables into dense supervised datasets.

use crate::error::{MlError, Result};
use matilda_data::prelude::*;

/// A dense supervised-learning view of a table: row-major features plus a
/// target, with feature names retained for interpretability.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Row-major feature matrix.
    pub x: Vec<Vec<f64>>,
    /// Numeric target (regression) or class codes as floats (classification).
    pub y: Vec<f64>,
    /// One name per feature column.
    pub feature_names: Vec<String>,
    /// For classification: the class labels, index = class code.
    pub class_labels: Vec<String>,
}

impl Dataset {
    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.x.len()
    }

    /// Number of feature columns.
    pub fn n_features(&self) -> usize {
        self.x.first().map_or(0, Vec::len)
    }

    /// `true` when the dataset carries class labels (classification task).
    pub fn is_classification(&self) -> bool {
        !self.class_labels.is_empty()
    }

    /// Targets as class codes; errors when this is a regression dataset or a
    /// target is not an integral code.
    pub fn y_classes(&self) -> Result<Vec<usize>> {
        if !self.is_classification() {
            return Err(MlError::InvalidParameter(
                "regression dataset has no classes".into(),
            ));
        }
        self.y
            .iter()
            .map(|&v| {
                if v >= 0.0 && v.fract() == 0.0 {
                    Ok(v as usize)
                } else {
                    Err(MlError::InvalidParameter(format!(
                        "non-integral class code {v}"
                    )))
                }
            })
            .collect()
    }

    /// Number of classes (0 for regression).
    pub fn n_classes(&self) -> usize {
        self.class_labels.len()
    }

    /// Select the subset of rows at `indices` (duplicates allowed).
    pub fn subset(&self, indices: &[usize]) -> Result<Dataset> {
        for &i in indices {
            if i >= self.n_rows() {
                return Err(MlError::LengthMismatch {
                    expected: self.n_rows(),
                    got: i,
                });
            }
        }
        Ok(Dataset {
            x: indices.iter().map(|&i| self.x[i].clone()).collect(),
            y: indices.iter().map(|&i| self.y[i]).collect(),
            feature_names: self.feature_names.clone(),
            class_labels: self.class_labels.clone(),
        })
    }

    /// Build a **classification** dataset: numeric feature columns plus a
    /// categorical/string (or integer) target column mapped to class codes.
    pub fn classification(df: &DataFrame, features: &[&str], target: &str) -> Result<Dataset> {
        let x = df.to_matrix(features)?;
        let target_col = df.column(target)?;
        let mut class_labels: Vec<String> = Vec::new();
        let mut y = Vec::with_capacity(df.n_rows());
        for v in target_col.iter() {
            if v.is_null() {
                return Err(MlError::InvalidParameter(format!(
                    "null target in '{target}'"
                )));
            }
            let label = v.to_string();
            let code = match class_labels.iter().position(|l| *l == label) {
                Some(i) => i,
                None => {
                    class_labels.push(label);
                    class_labels.len() - 1
                }
            };
            y.push(code as f64);
        }
        if x.is_empty() {
            return Err(MlError::EmptyInput("classification dataset"));
        }
        Ok(Dataset {
            x,
            y,
            feature_names: features.iter().map(|s| s.to_string()).collect(),
            class_labels,
        })
    }

    /// Build a **regression** dataset: numeric features and a numeric target.
    pub fn regression(df: &DataFrame, features: &[&str], target: &str) -> Result<Dataset> {
        let x = df.to_matrix(features)?;
        let y_opt = df.column(target)?.to_f64()?;
        let mut y = Vec::with_capacity(y_opt.len());
        for v in y_opt {
            y.push(
                v.ok_or_else(|| MlError::InvalidParameter(format!("null target in '{target}'")))?,
            );
        }
        if x.is_empty() {
            return Err(MlError::EmptyInput("regression dataset"));
        }
        Ok(Dataset {
            x,
            y,
            feature_names: features.iter().map(|s| s.to_string()).collect(),
            class_labels: Vec::new(),
        })
    }
}

/// Validate that `x` is a non-empty rectangular matrix matching `y`.
pub fn check_xy(x: &[Vec<f64>], y_len: usize) -> Result<usize> {
    if x.is_empty() {
        return Err(MlError::EmptyInput("feature matrix"));
    }
    let d = x[0].len();
    if d == 0 {
        return Err(MlError::EmptyInput("feature row"));
    }
    for row in x {
        if row.len() != d {
            return Err(MlError::DimensionMismatch {
                expected: d,
                got: row.len(),
            });
        }
    }
    if x.len() != y_len {
        return Err(MlError::LengthMismatch {
            expected: x.len(),
            got: y_len,
        });
    }
    Ok(d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use matilda_data::Column;

    fn df() -> DataFrame {
        DataFrame::from_columns(vec![
            ("a", Column::from_f64(vec![1.0, 2.0, 3.0])),
            ("b", Column::from_f64(vec![0.5, 1.5, 2.5])),
            ("label", Column::from_categorical(&["yes", "no", "yes"])),
            ("price", Column::from_f64(vec![10.0, 20.0, 30.0])),
        ])
        .unwrap()
    }

    #[test]
    fn classification_codes() {
        let ds = Dataset::classification(&df(), &["a", "b"], "label").unwrap();
        assert_eq!(ds.n_rows(), 3);
        assert_eq!(ds.n_features(), 2);
        assert_eq!(ds.class_labels, vec!["yes", "no"]);
        assert_eq!(ds.y_classes().unwrap(), vec![0, 1, 0]);
        assert!(ds.is_classification());
    }

    #[test]
    fn regression_dataset() {
        let ds = Dataset::regression(&df(), &["a"], "price").unwrap();
        assert_eq!(ds.y, vec![10.0, 20.0, 30.0]);
        assert!(!ds.is_classification());
        assert!(ds.y_classes().is_err());
    }

    #[test]
    fn integer_targets_are_classes() {
        let d = DataFrame::from_columns(vec![
            ("x", Column::from_f64(vec![0.0, 1.0])),
            ("y", Column::from_i64(vec![7, 9])),
        ])
        .unwrap();
        let ds = Dataset::classification(&d, &["x"], "y").unwrap();
        assert_eq!(ds.class_labels, vec!["7", "9"]);
        assert_eq!(ds.y_classes().unwrap(), vec![0, 1]);
    }

    #[test]
    fn null_target_rejected() {
        let d = DataFrame::from_columns(vec![
            ("x", Column::from_f64(vec![0.0, 1.0])),
            ("y", Column::from_opt_f64(vec![Some(1.0), None])),
        ])
        .unwrap();
        assert!(Dataset::regression(&d, &["x"], "y").is_err());
    }

    #[test]
    fn subset_selects_rows() {
        let ds = Dataset::classification(&df(), &["a"], "label").unwrap();
        let sub = ds.subset(&[2, 0]).unwrap();
        assert_eq!(sub.x, vec![vec![3.0], vec![1.0]]);
        assert_eq!(sub.y, vec![0.0, 0.0]);
        assert!(ds.subset(&[5]).is_err());
    }

    #[test]
    fn check_xy_validates() {
        assert_eq!(check_xy(&[vec![1.0, 2.0]], 1).unwrap(), 2);
        assert!(check_xy(&[], 0).is_err());
        assert!(check_xy(&[vec![]], 1).is_err());
        assert!(check_xy(&[vec![1.0], vec![1.0, 2.0]], 2).is_err());
        assert!(check_xy(&[vec![1.0]], 2).is_err());
    }
}
