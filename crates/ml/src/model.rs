//! Model traits shared by all estimators, and a dynamic model factory the
//! pipeline layer uses to instantiate models from declarative specs.

use crate::error::Result;

/// A classifier over dense feature rows with integer class codes.
pub trait Classifier: Send + Sync {
    /// Fit on row-major features and class codes `0..n_classes`.
    fn fit(&mut self, x: &[Vec<f64>], y: &[usize]) -> Result<()>;
    /// Predict the class code of one row.
    fn predict_one(&self, row: &[f64]) -> Result<usize>;
    /// Predict class codes for many rows.
    fn predict(&self, x: &[Vec<f64>]) -> Result<Vec<usize>> {
        x.iter().map(|r| self.predict_one(r)).collect()
    }
    /// Class probability distribution for one row (sums to 1).
    fn predict_proba_one(&self, row: &[f64]) -> Result<Vec<f64>>;
    /// Number of classes seen at fit time.
    fn n_classes(&self) -> usize;
    /// Stable model name for provenance and reports.
    fn name(&self) -> &'static str;
}

/// A regressor over dense feature rows.
pub trait Regressor: Send + Sync {
    /// Fit on row-major features and numeric targets.
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) -> Result<()>;
    /// Predict one row.
    fn predict_one(&self, row: &[f64]) -> Result<f64>;
    /// Predict many rows.
    fn predict(&self, x: &[Vec<f64>]) -> Result<Vec<f64>> {
        x.iter().map(|r| self.predict_one(r)).collect()
    }
    /// Stable model name for provenance and reports.
    fn name(&self) -> &'static str;
}

/// Declarative model specification: everything the creativity engine mutates.
///
/// The spec is data, not code, so pipeline genomes can be fingerprinted,
/// compared for novelty, stored in provenance and replayed.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum ModelSpec {
    /// Ordinary least squares / ridge regression. `ridge` is the L2 penalty.
    Linear { ridge: f64 },
    /// Binary/multiclass logistic regression trained by gradient descent.
    Logistic {
        learning_rate: f64,
        epochs: usize,
        l2: f64,
    },
    /// Gaussian naive Bayes.
    GaussianNb,
    /// k-nearest-neighbour vote / average.
    Knn { k: usize },
    /// CART decision tree.
    Tree {
        max_depth: usize,
        min_samples_split: usize,
    },
    /// Random forest of CART trees on bootstrap samples.
    Forest {
        n_trees: usize,
        max_depth: usize,
        feature_fraction: f64,
        seed: u64,
    },
    /// Gradient-boosted regression trees (squared loss) /
    /// boosted classification via the regression ensemble on ±1 targets.
    Boost {
        n_rounds: usize,
        learning_rate: f64,
        max_depth: usize,
    },
    /// One-hidden-layer perceptron (ReLU + softmax) — the paper's cited
    /// behaviour-extraction model family.
    Mlp {
        hidden: usize,
        learning_rate: f64,
        epochs: usize,
        seed: u64,
    },
}

impl ModelSpec {
    /// Stable short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            ModelSpec::Linear { .. } => "linear",
            ModelSpec::Logistic { .. } => "logistic",
            ModelSpec::GaussianNb => "gaussian_nb",
            ModelSpec::Knn { .. } => "knn",
            ModelSpec::Tree { .. } => "tree",
            ModelSpec::Forest { .. } => "forest",
            ModelSpec::Boost { .. } => "boost",
            ModelSpec::Mlp { .. } => "mlp",
        }
    }

    /// `true` if the spec can act as a classifier.
    pub fn supports_classification(&self) -> bool {
        !matches!(self, ModelSpec::Linear { .. })
    }

    /// `true` if the spec can act as a regressor.
    pub fn supports_regression(&self) -> bool {
        matches!(
            self,
            ModelSpec::Linear { .. }
                | ModelSpec::Knn { .. }
                | ModelSpec::Tree { .. }
                | ModelSpec::Forest { .. }
                | ModelSpec::Boost { .. }
        )
    }

    /// Instantiate a classifier from the spec, if supported.
    pub fn build_classifier(&self) -> Option<Box<dyn Classifier>> {
        Some(match self {
            ModelSpec::Logistic {
                learning_rate,
                epochs,
                l2,
            } => Box::new(crate::logistic::LogisticRegression::new(
                *learning_rate,
                *epochs,
                *l2,
            )),
            ModelSpec::GaussianNb => Box::new(crate::naive_bayes::GaussianNb::new()),
            ModelSpec::Knn { k } => Box::new(crate::knn::KnnClassifier::new(*k)),
            ModelSpec::Tree {
                max_depth,
                min_samples_split,
            } => Box::new(crate::tree::DecisionTreeClassifier::new(
                *max_depth,
                *min_samples_split,
            )),
            ModelSpec::Forest {
                n_trees,
                max_depth,
                feature_fraction,
                seed,
            } => Box::new(crate::forest::RandomForestClassifier::new(
                *n_trees,
                *max_depth,
                *feature_fraction,
                *seed,
            )),
            ModelSpec::Boost {
                n_rounds,
                learning_rate,
                max_depth,
            } => Box::new(crate::boost::GradientBoostingClassifier::new(
                *n_rounds,
                *learning_rate,
                *max_depth,
            )),
            ModelSpec::Mlp {
                hidden,
                learning_rate,
                epochs,
                seed,
            } => Box::new(crate::mlp::MlpClassifier::new(
                *hidden,
                *learning_rate,
                *epochs,
                *seed,
            )),
            ModelSpec::Linear { .. } => return None,
        })
    }

    /// Instantiate a regressor from the spec, if supported.
    pub fn build_regressor(&self) -> Option<Box<dyn Regressor>> {
        Some(match self {
            ModelSpec::Linear { ridge } => Box::new(crate::linear::LinearRegression::new(*ridge)),
            ModelSpec::Knn { k } => Box::new(crate::knn::KnnRegressor::new(*k)),
            ModelSpec::Tree {
                max_depth,
                min_samples_split,
            } => Box::new(crate::tree::DecisionTreeRegressor::new(
                *max_depth,
                *min_samples_split,
            )),
            ModelSpec::Forest {
                n_trees,
                max_depth,
                feature_fraction,
                seed,
            } => Box::new(crate::forest::RandomForestRegressor::new(
                *n_trees,
                *max_depth,
                *feature_fraction,
                *seed,
            )),
            ModelSpec::Boost {
                n_rounds,
                learning_rate,
                max_depth,
            } => Box::new(crate::boost::GradientBoostingRegressor::new(
                *n_rounds,
                *learning_rate,
                *max_depth,
            )),
            ModelSpec::Logistic { .. } | ModelSpec::GaussianNb | ModelSpec::Mlp { .. } => {
                return None
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_stable() {
        assert_eq!(ModelSpec::GaussianNb.name(), "gaussian_nb");
        assert_eq!(ModelSpec::Knn { k: 3 }.name(), "knn");
    }

    #[test]
    fn capability_matrix() {
        assert!(!ModelSpec::Linear { ridge: 0.0 }.supports_classification());
        assert!(ModelSpec::Linear { ridge: 0.0 }.supports_regression());
        assert!(ModelSpec::GaussianNb.supports_classification());
        assert!(!ModelSpec::GaussianNb.supports_regression());
        assert!(ModelSpec::Knn { k: 1 }.supports_classification());
        assert!(ModelSpec::Knn { k: 1 }.supports_regression());
        let mlp = ModelSpec::Mlp {
            hidden: 8,
            learning_rate: 0.5,
            epochs: 100,
            seed: 0,
        };
        assert!(mlp.supports_classification());
        assert!(!mlp.supports_regression());
        assert!(mlp.build_classifier().is_some());
        assert!(mlp.build_regressor().is_none());
        assert_eq!(mlp.name(), "mlp");
    }

    #[test]
    fn factory_respects_capabilities() {
        assert!(ModelSpec::Linear { ridge: 0.0 }
            .build_classifier()
            .is_none());
        assert!(ModelSpec::Linear { ridge: 0.0 }.build_regressor().is_some());
        assert!(ModelSpec::GaussianNb.build_classifier().is_some());
        assert!(ModelSpec::GaussianNb.build_regressor().is_none());
    }
}
