//! Random forests: bagged CART trees with per-tree feature subsampling.

use crate::dataset::check_xy;
use crate::error::{MlError, Result};
use crate::model::{Classifier, Regressor};
use crate::tree::{grow_tree, Node};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// One fitted ensemble member: the tree plus the feature subset it sees.
#[derive(Debug, Clone)]
struct Member {
    root: Node,
}

fn bootstrap(n: usize, rng: &mut impl Rng) -> Vec<usize> {
    (0..n).map(|_| rng.gen_range(0..n)).collect()
}

fn feature_subset(d: usize, fraction: f64, rng: &mut impl Rng) -> Vec<usize> {
    let m = ((d as f64 * fraction).ceil() as usize).clamp(1, d);
    let mut all: Vec<usize> = (0..d).collect();
    all.shuffle(rng);
    all.truncate(m);
    all.sort_unstable();
    all
}

fn validate(n_trees: usize, max_depth: usize, feature_fraction: f64) -> Result<()> {
    if n_trees == 0 {
        return Err(MlError::InvalidParameter("n_trees must be >= 1".into()));
    }
    if max_depth == 0 {
        return Err(MlError::InvalidParameter("max_depth must be >= 1".into()));
    }
    if !(0.0..=1.0).contains(&feature_fraction) || feature_fraction == 0.0 {
        return Err(MlError::InvalidParameter(format!(
            "feature_fraction {feature_fraction} outside (0,1]"
        )));
    }
    Ok(())
}

fn leaf_distribution<'a>(node: &'a Node, row: &[f64]) -> &'a [f64] {
    match descend(node, row) {
        Node::Leaf { distribution, .. } => distribution,
        Node::Split { .. } => unreachable!(),
    }
}

fn leaf_value(node: &Node, row: &[f64]) -> f64 {
    match descend(node, row) {
        Node::Leaf { value, .. } => *value,
        Node::Split { .. } => unreachable!(),
    }
}

fn descend<'a>(node: &'a Node, row: &[f64]) -> &'a Node {
    match node {
        Node::Leaf { .. } => node,
        Node::Split {
            feature,
            threshold,
            left,
            right,
        } => {
            if row[*feature] < *threshold {
                descend(left, row)
            } else {
                descend(right, row)
            }
        }
    }
}

/// Random forest classifier: soft-vote over bagged Gini trees.
#[derive(Debug, Clone)]
pub struct RandomForestClassifier {
    n_trees: usize,
    max_depth: usize,
    feature_fraction: f64,
    seed: u64,
    members: Vec<Member>,
    n_classes: usize,
    n_features: usize,
}

impl RandomForestClassifier {
    /// A forest of `n_trees` trees, each on a bootstrap sample and a random
    /// `feature_fraction` of the features, grown to `max_depth`.
    pub fn new(n_trees: usize, max_depth: usize, feature_fraction: f64, seed: u64) -> Self {
        Self {
            n_trees,
            max_depth,
            feature_fraction,
            seed,
            members: Vec::new(),
            n_classes: 0,
            n_features: 0,
        }
    }

    /// Number of fitted trees.
    pub fn n_fitted_trees(&self) -> usize {
        self.members.len()
    }
}

impl Classifier for RandomForestClassifier {
    fn fit(&mut self, x: &[Vec<f64>], y: &[usize]) -> Result<()> {
        let mut span = matilda_telemetry::profile::phase("ml.fit.forest");
        span.field("rows", x.len()).field("trees", self.n_trees);
        let d = check_xy(x, y.len())?;
        validate(self.n_trees, self.max_depth, self.feature_fraction)?;
        let k = y.iter().copied().max().map_or(0, |m| m + 1);
        if k < 2 {
            return Err(MlError::InvalidParameter("need at least 2 classes".into()));
        }
        let y_f: Vec<f64> = y.iter().map(|&c| c as f64).collect();
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);
        self.members.clear();
        for _ in 0..self.n_trees {
            crate::hooks::iteration("ml.fit.forest")?;
            let rows = bootstrap(x.len(), &mut rng);
            let features = feature_subset(d, self.feature_fraction, &mut rng);
            let root = grow_tree(x, &y_f, &rows, &features, Some(k), self.max_depth, 2);
            self.members.push(Member { root });
        }
        self.n_classes = k;
        self.n_features = d;
        matilda_telemetry::metrics::global().observe_duration("ml.fit_seconds", span.close());
        Ok(())
    }

    fn predict_one(&self, row: &[f64]) -> Result<usize> {
        let p = self.predict_proba_one(row)?;
        Ok(p.iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .expect("fitted forest has classes"))
    }

    fn predict_proba_one(&self, row: &[f64]) -> Result<Vec<f64>> {
        if self.members.is_empty() {
            return Err(MlError::NotFitted("random forest"));
        }
        if row.len() != self.n_features {
            return Err(MlError::DimensionMismatch {
                expected: self.n_features,
                got: row.len(),
            });
        }
        let mut acc = vec![0.0; self.n_classes];
        for m in &self.members {
            for (a, &p) in acc.iter_mut().zip(leaf_distribution(&m.root, row)) {
                *a += p;
            }
        }
        let total: f64 = acc.iter().sum();
        Ok(acc.into_iter().map(|v| v / total).collect())
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn name(&self) -> &'static str {
        "forest"
    }
}

/// Random forest regressor: mean over bagged variance-splitting trees.
#[derive(Debug, Clone)]
pub struct RandomForestRegressor {
    n_trees: usize,
    max_depth: usize,
    feature_fraction: f64,
    seed: u64,
    members: Vec<Member>,
    n_features: usize,
}

impl RandomForestRegressor {
    /// See [`RandomForestClassifier::new`].
    pub fn new(n_trees: usize, max_depth: usize, feature_fraction: f64, seed: u64) -> Self {
        Self {
            n_trees,
            max_depth,
            feature_fraction,
            seed,
            members: Vec::new(),
            n_features: 0,
        }
    }
}

impl Regressor for RandomForestRegressor {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) -> Result<()> {
        let mut span = matilda_telemetry::profile::phase("ml.fit.forest");
        span.field("rows", x.len()).field("trees", self.n_trees);
        let d = check_xy(x, y.len())?;
        validate(self.n_trees, self.max_depth, self.feature_fraction)?;
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);
        self.members.clear();
        for _ in 0..self.n_trees {
            crate::hooks::iteration("ml.fit.forest")?;
            let rows = bootstrap(x.len(), &mut rng);
            let features = feature_subset(d, self.feature_fraction, &mut rng);
            let root = grow_tree(x, y, &rows, &features, None, self.max_depth, 2);
            self.members.push(Member { root });
        }
        self.n_features = d;
        matilda_telemetry::metrics::global().observe_duration("ml.fit_seconds", span.close());
        Ok(())
    }

    fn predict_one(&self, row: &[f64]) -> Result<f64> {
        if self.members.is_empty() {
            return Err(MlError::NotFitted("random forest"));
        }
        if row.len() != self.n_features {
            return Err(MlError::DimensionMismatch {
                expected: self.n_features,
                got: row.len(),
            });
        }
        let sum: f64 = self.members.iter().map(|m| leaf_value(&m.root, row)).sum();
        Ok(sum / self.members.len() as f64)
    }

    fn name(&self) -> &'static str {
        "forest"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_threshold(n: usize) -> (Vec<Vec<f64>>, Vec<usize>) {
        // Two informative features + one noise feature.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let a = (i % 17) as f64;
            let b = (i % 13) as f64;
            let noise = ((i * 7) % 11) as f64;
            x.push(vec![a, b, noise]);
            y.push(usize::from(a + b > 14.0));
        }
        (x, y)
    }

    #[test]
    fn classifies_noisy_threshold() {
        let (x, y) = noisy_threshold(120);
        let mut m = RandomForestClassifier::new(25, 6, 0.8, 42);
        m.fit(&x, &y).unwrap();
        let preds = m.predict(&x).unwrap();
        let acc = preds.iter().zip(&y).filter(|(p, t)| p == t).count() as f64 / y.len() as f64;
        assert!(acc > 0.9, "train accuracy {acc}");
        assert_eq!(m.n_fitted_trees(), 25);
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = noisy_threshold(60);
        let mut a = RandomForestClassifier::new(10, 4, 0.7, 9);
        let mut b = RandomForestClassifier::new(10, 4, 0.7, 9);
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        assert_eq!(a.predict(&x).unwrap(), b.predict(&x).unwrap());
    }

    #[test]
    fn different_seeds_differ_somewhere() {
        let (x, y) = noisy_threshold(60);
        let mut a = RandomForestClassifier::new(3, 3, 0.4, 1);
        let mut b = RandomForestClassifier::new(3, 3, 0.4, 2);
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        let pa: Vec<Vec<f64>> = x.iter().map(|r| a.predict_proba_one(r).unwrap()).collect();
        let pb: Vec<Vec<f64>> = x.iter().map(|r| b.predict_proba_one(r).unwrap()).collect();
        assert_ne!(pa, pb, "probability surfaces should differ across seeds");
    }

    #[test]
    fn probabilities_normalized() {
        let (x, y) = noisy_threshold(60);
        let mut m = RandomForestClassifier::new(7, 4, 0.6, 5);
        m.fit(&x, &y).unwrap();
        let p = m.predict_proba_one(&x[0]).unwrap();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn regressor_fits_smooth_function() {
        let x: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 / 10.0]).collect();
        let y: Vec<f64> = x.iter().map(|r| r[0].sin() * 3.0).collect();
        let mut m = RandomForestRegressor::new(30, 8, 1.0, 3);
        m.fit(&x, &y).unwrap();
        let preds = m.predict(&x).unwrap();
        let mse = crate::metrics::mse(&y, &preds).unwrap();
        assert!(mse < 0.1, "train mse {mse}");
    }

    #[test]
    fn parameter_validation() {
        let x = vec![vec![0.0], vec![1.0]];
        assert!(RandomForestClassifier::new(0, 3, 0.5, 0)
            .fit(&x, &[0, 1])
            .is_err());
        assert!(RandomForestClassifier::new(3, 0, 0.5, 0)
            .fit(&x, &[0, 1])
            .is_err());
        assert!(RandomForestClassifier::new(3, 3, 0.0, 0)
            .fit(&x, &[0, 1])
            .is_err());
        assert!(RandomForestClassifier::new(3, 3, 1.5, 0)
            .fit(&x, &[0, 1])
            .is_err());
    }

    #[test]
    fn not_fitted_errors() {
        let m = RandomForestRegressor::new(3, 3, 0.5, 0);
        assert!(m.predict_one(&[0.0]).is_err());
    }

    #[test]
    fn feature_subset_bounds() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(0);
        let s = feature_subset(10, 0.3, &mut rng);
        assert_eq!(s.len(), 3);
        assert!(s.windows(2).all(|w| w[0] < w[1]), "sorted and unique");
        let one = feature_subset(4, 0.01, &mut rng);
        assert_eq!(one.len(), 1, "at least one feature");
    }
}
