//! k-nearest-neighbour classification and regression.

use crate::dataset::check_xy;
use crate::error::{MlError, Result};
use crate::linalg::euclidean;
use crate::model::{Classifier, Regressor};

/// Indices and distances of the `k` nearest stored rows to `row`.
fn nearest(train: &[Vec<f64>], row: &[f64], k: usize) -> Vec<(usize, f64)> {
    let mut dists: Vec<(usize, f64)> = train
        .iter()
        .enumerate()
        .map(|(i, t)| (i, euclidean(t, row)))
        .collect();
    dists.sort_by(|a, b| a.1.total_cmp(&b.1).then_with(|| a.0.cmp(&b.0)));
    dists.truncate(k);
    dists
}

/// k-NN classifier with majority vote (ties break to the lowest class code).
#[derive(Debug, Clone)]
pub struct KnnClassifier {
    k: usize,
    x: Vec<Vec<f64>>,
    y: Vec<usize>,
    n_classes: usize,
}

impl KnnClassifier {
    /// A new classifier voting over `k` neighbours.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            x: Vec::new(),
            y: Vec::new(),
            n_classes: 0,
        }
    }
}

impl Classifier for KnnClassifier {
    fn fit(&mut self, x: &[Vec<f64>], y: &[usize]) -> Result<()> {
        check_xy(x, y.len())?;
        if self.k == 0 {
            return Err(MlError::InvalidParameter("k must be >= 1".into()));
        }
        if self.k > x.len() {
            return Err(MlError::InvalidParameter(format!(
                "k={} exceeds {} training rows",
                self.k,
                x.len()
            )));
        }
        self.x = x.to_vec();
        self.y = y.to_vec();
        self.n_classes = y.iter().copied().max().map_or(0, |m| m + 1);
        Ok(())
    }

    fn predict_one(&self, row: &[f64]) -> Result<usize> {
        let p = self.predict_proba_one(row)?;
        Ok(p.iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .expect("fitted model has classes"))
    }

    fn predict_proba_one(&self, row: &[f64]) -> Result<Vec<f64>> {
        if self.x.is_empty() {
            return Err(MlError::NotFitted("knn classifier"));
        }
        if row.len() != self.x[0].len() {
            return Err(MlError::DimensionMismatch {
                expected: self.x[0].len(),
                got: row.len(),
            });
        }
        let mut votes = vec![0.0; self.n_classes];
        for (i, _) in nearest(&self.x, row, self.k) {
            votes[self.y[i]] += 1.0;
        }
        let total: f64 = votes.iter().sum();
        Ok(votes.into_iter().map(|v| v / total).collect())
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn name(&self) -> &'static str {
        "knn"
    }
}

/// k-NN regressor averaging the targets of the `k` nearest neighbours.
#[derive(Debug, Clone)]
pub struct KnnRegressor {
    k: usize,
    x: Vec<Vec<f64>>,
    y: Vec<f64>,
}

impl KnnRegressor {
    /// A new regressor averaging over `k` neighbours.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            x: Vec::new(),
            y: Vec::new(),
        }
    }
}

impl Regressor for KnnRegressor {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) -> Result<()> {
        check_xy(x, y.len())?;
        if self.k == 0 || self.k > x.len() {
            return Err(MlError::InvalidParameter(format!(
                "k={} invalid for {} rows",
                self.k,
                x.len()
            )));
        }
        self.x = x.to_vec();
        self.y = y.to_vec();
        Ok(())
    }

    fn predict_one(&self, row: &[f64]) -> Result<f64> {
        if self.x.is_empty() {
            return Err(MlError::NotFitted("knn regressor"));
        }
        if row.len() != self.x[0].len() {
            return Err(MlError::DimensionMismatch {
                expected: self.x[0].len(),
                got: row.len(),
            });
        }
        let neighbours = nearest(&self.x, row, self.k);
        Ok(neighbours.iter().map(|&(i, _)| self.y[i]).sum::<f64>() / self.k as f64)
    }

    fn name(&self) -> &'static str {
        "knn"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_nn_memorizes() {
        let x = vec![vec![0.0], vec![1.0], vec![2.0]];
        let y = vec![0, 1, 0];
        let mut m = KnnClassifier::new(1);
        m.fit(&x, &y).unwrap();
        assert_eq!(m.predict(&x).unwrap(), y);
    }

    #[test]
    fn majority_vote() {
        let x = vec![vec![0.0], vec![0.1], vec![0.2], vec![10.0]];
        let y = vec![0, 0, 1, 1];
        let mut m = KnnClassifier::new(3);
        m.fit(&x, &y).unwrap();
        assert_eq!(
            m.predict_one(&[0.05]).unwrap(),
            0,
            "two of three nearest are class 0"
        );
    }

    #[test]
    fn proba_reflects_vote_shares() {
        let x = vec![vec![0.0], vec![0.1], vec![0.2]];
        let y = vec![0, 0, 1];
        let mut m = KnnClassifier::new(3);
        m.fit(&x, &y).unwrap();
        let p = m.predict_proba_one(&[0.0]).unwrap();
        assert!((p[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((p[1] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn k_validation() {
        let x = vec![vec![0.0], vec![1.0]];
        assert!(KnnClassifier::new(0).fit(&x, &[0, 1]).is_err());
        assert!(KnnClassifier::new(3).fit(&x, &[0, 1]).is_err());
        assert!(KnnRegressor::new(5).fit(&x, &[0.0, 1.0]).is_err());
    }

    #[test]
    fn regressor_averages() {
        let x = vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]];
        let y = vec![0.0, 10.0, 20.0, 30.0];
        let mut m = KnnRegressor::new(2);
        m.fit(&x, &y).unwrap();
        assert_eq!(
            m.predict_one(&[0.4]).unwrap(),
            5.0,
            "mean of two nearest targets"
        );
    }

    #[test]
    fn not_fitted_errors() {
        assert!(KnnClassifier::new(1).predict_one(&[0.0]).is_err());
        assert!(KnnRegressor::new(1).predict_one(&[0.0]).is_err());
    }

    #[test]
    fn dimension_checked() {
        let mut m = KnnRegressor::new(1);
        m.fit(&[vec![0.0, 1.0]], &[1.0]).unwrap();
        assert!(m.predict_one(&[0.0]).is_err());
    }

    #[test]
    fn deterministic_tie_break() {
        // Equidistant neighbours with different labels: stable result by index.
        let x = vec![vec![-1.0], vec![1.0]];
        let y = vec![1, 0];
        let mut m = KnnClassifier::new(1);
        m.fit(&x, &y).unwrap();
        assert_eq!(
            m.predict_one(&[0.0]).unwrap(),
            1,
            "lower index wins the distance tie"
        );
    }
}
