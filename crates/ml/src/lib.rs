//! # matilda-ml
//!
//! From-scratch machine learning library powering MATILDA pipelines: the
//! *training*, *testing* and *assessment* phases of the platform.
//!
//! Estimators implement the [`model::Classifier`] / [`model::Regressor`]
//! traits and are instantiated dynamically from declarative
//! [`model::ModelSpec`]s so that the creativity engine can mutate model
//! choice and hyper-parameters as data:
//!
//! - [`linear`]: OLS / ridge regression (normal equations);
//! - [`logistic`]: multinomial logistic regression (gradient descent);
//! - [`naive_bayes`]: Gaussian naive Bayes;
//! - [`knn`]: k-nearest-neighbour classifier and regressor;
//! - [`tree`]: CART decision trees (Gini / variance);
//! - [`forest`]: bagged random forests;
//! - [`mlp`]: one-hidden-layer perceptron (the paper's cited family);
//! - [`boost`]: gradient-boosted shallow trees;
//! - [`kmeans`]: k-means with k-means++ seeding;
//! - [`pca`]: principal component analysis;
//! - [`metrics`]: classification, regression and clustering metrics;
//! - [`cv`]: deterministic k-fold cross-validation;
//! - [`importance`]: model-agnostic permutation feature importance.
//!
//! ```
//! use matilda_ml::prelude::*;
//! use matilda_data::{Column, DataFrame};
//!
//! let df = DataFrame::from_columns(vec![
//!     ("x", Column::from_f64((0..40).map(f64::from).collect())),
//!     ("y", Column::from_categorical(
//!         &(0..40).map(|i| if i < 20 { "a" } else { "b" }).collect::<Vec<_>>())),
//! ]).unwrap();
//! let data = Dataset::classification(&df, &["x"], "y").unwrap();
//! let spec = ModelSpec::Tree { max_depth: 3, min_samples_split: 2 };
//! let cv = cross_validate(&spec, &data, 4, Scoring::Accuracy, 42).unwrap();
//! assert!(cv.mean > 0.9);
//! ```

pub mod boost;
pub mod cv;
pub mod dataset;
pub mod error;
pub mod forest;
pub(crate) mod hooks;
pub mod importance;
pub mod kmeans;
pub mod knn;
pub mod linalg;
pub mod linear;
pub mod logistic;
pub mod metrics;
pub mod mlp;
pub mod model;
pub mod naive_bayes;
pub mod pca;
pub mod tree;

/// Convenient re-exports of the most used items.
pub mod prelude {
    pub use crate::cv::{cross_validate, holdout_score, CvResult, Scoring};
    pub use crate::dataset::Dataset;
    pub use crate::error::{MlError, Result};
    pub use crate::importance::{permutation_importance, FeatureImportance};
    pub use crate::kmeans::KMeans;
    pub use crate::metrics;
    pub use crate::model::{Classifier, ModelSpec, Regressor};
    pub use crate::pca::Pca;
}

pub use cv::{cross_validate, holdout_score, CvResult, Scoring};
pub use dataset::Dataset;
pub use error::{MlError, Result};
pub use model::{Classifier, ModelSpec, Regressor};
