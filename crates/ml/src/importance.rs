//! Model-agnostic permutation feature importance.
//!
//! The platform's narration answers questions like *"what drives
//! satisfaction?"*; permutation importance supplies the evidence: shuffle
//! one feature at a time and measure how much the score drops.

use crate::dataset::Dataset;
use crate::error::{MlError, Result};
use crate::metrics;
use crate::model::ModelSpec;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Importance of one feature.
#[derive(Debug, Clone, PartialEq)]
pub struct FeatureImportance {
    /// Feature name.
    pub feature: String,
    /// Mean score drop when the feature is permuted (higher = more
    /// important; near zero or negative = uninformative).
    pub importance: f64,
}

fn score_classifier(
    model: &dyn crate::model::Classifier,
    x: &[Vec<f64>],
    y: &[usize],
) -> Result<f64> {
    metrics::accuracy(y, &model.predict(x)?)
}

fn score_regressor(model: &dyn crate::model::Regressor, x: &[Vec<f64>], y: &[f64]) -> Result<f64> {
    metrics::r2_score(y, &model.predict(x)?)
}

/// Permutation importance of every feature of `data` under `spec`.
///
/// The model is fitted once on all rows; each feature column is then
/// shuffled `n_repeats` times and the mean score drop recorded. Results are
/// sorted by importance, descending. Deterministic given `seed`.
pub fn permutation_importance(
    spec: &ModelSpec,
    data: &Dataset,
    n_repeats: usize,
    seed: u64,
) -> Result<Vec<FeatureImportance>> {
    if n_repeats == 0 {
        return Err(MlError::InvalidParameter("n_repeats must be >= 1".into()));
    }
    if data.n_rows() < 4 {
        return Err(MlError::EmptyInput("importance needs >= 4 rows"));
    }
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let d = data.n_features();

    // Fit once, capture the baseline score.
    enum Fitted {
        Clf(Box<dyn crate::model::Classifier>, Vec<usize>),
        Reg(Box<dyn crate::model::Regressor>),
    }
    let (fitted, baseline) = if data.is_classification() {
        let mut model = spec
            .build_classifier()
            .ok_or_else(|| MlError::InvalidParameter(format!("{} cannot classify", spec.name())))?;
        let y = data.y_classes()?;
        model.fit(&data.x, &y)?;
        let baseline = score_classifier(model.as_ref(), &data.x, &y)?;
        (Fitted::Clf(model, y), baseline)
    } else {
        let mut model = spec
            .build_regressor()
            .ok_or_else(|| MlError::InvalidParameter(format!("{} cannot regress", spec.name())))?;
        model.fit(&data.x, &data.y)?;
        let baseline = score_regressor(model.as_ref(), &data.x, &data.y)?;
        (Fitted::Reg(model), baseline)
    };

    let mut out = Vec::with_capacity(d);
    for f in 0..d {
        let mut drop_sum = 0.0;
        for _ in 0..n_repeats {
            // Shuffle column f across rows.
            let mut permuted = data.x.clone();
            let mut column: Vec<f64> = permuted.iter().map(|r| r[f]).collect();
            column.shuffle(&mut rng);
            for (row, v) in permuted.iter_mut().zip(&column) {
                row[f] = *v;
            }
            let score = match &fitted {
                Fitted::Clf(model, y) => score_classifier(model.as_ref(), &permuted, y)?,
                Fitted::Reg(model) => score_regressor(model.as_ref(), &permuted, &data.y)?,
            };
            drop_sum += baseline - score;
        }
        out.push(FeatureImportance {
            feature: data
                .feature_names
                .get(f)
                .cloned()
                .unwrap_or_else(|| format!("feature{f}")),
            importance: drop_sum / n_repeats as f64,
        });
    }
    out.sort_by(|a, b| b.importance.total_cmp(&a.importance));
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use matilda_data::{Column, DataFrame};

    fn dataset() -> Dataset {
        // `signal` decides the class; `noise` does not.
        let signal: Vec<f64> = (0..80).map(|i| i as f64).collect();
        let noise: Vec<f64> = (0..80).map(|i| ((i * 31) % 13) as f64).collect();
        let labels: Vec<&str> = (0..80).map(|i| if i < 40 { "lo" } else { "hi" }).collect();
        let df = DataFrame::from_columns(vec![
            ("signal", Column::from_f64(signal)),
            ("noise", Column::from_f64(noise)),
            ("y", Column::from_categorical(&labels)),
        ])
        .unwrap();
        Dataset::classification(&df, &["signal", "noise"], "y").unwrap()
    }

    #[test]
    fn signal_beats_noise() {
        let spec = ModelSpec::Tree {
            max_depth: 4,
            min_samples_split: 2,
        };
        let ranked = permutation_importance(&spec, &dataset(), 5, 7).unwrap();
        assert_eq!(ranked[0].feature, "signal");
        assert!(
            ranked[0].importance > 0.3,
            "shuffling the signal should hurt a lot"
        );
        assert!(
            ranked[1].importance < 0.1,
            "noise importance should be ~0, got {}",
            ranked[1].importance
        );
    }

    #[test]
    fn regression_importance() {
        let x: Vec<f64> = (0..60).map(|i| i as f64 / 10.0).collect();
        let junk: Vec<f64> = (0..60).map(|i| ((i * 7) % 5) as f64).collect();
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v).collect();
        let df = DataFrame::from_columns(vec![
            ("x", Column::from_f64(x)),
            ("junk", Column::from_f64(junk)),
            ("y", Column::from_f64(y)),
        ])
        .unwrap();
        let data = Dataset::regression(&df, &["x", "junk"], "y").unwrap();
        let ranked =
            permutation_importance(&ModelSpec::Linear { ridge: 0.0 }, &data, 3, 1).unwrap();
        assert_eq!(ranked[0].feature, "x");
        assert!(ranked[0].importance > 0.5);
    }

    #[test]
    fn deterministic_given_seed() {
        let spec = ModelSpec::Knn { k: 5 };
        let a = permutation_importance(&spec, &dataset(), 3, 9).unwrap();
        let b = permutation_importance(&spec, &dataset(), 3, 9).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn parameter_validation() {
        let spec = ModelSpec::GaussianNb;
        assert!(permutation_importance(&spec, &dataset(), 0, 0).is_err());
        let tiny = dataset().subset(&[0, 1]).unwrap();
        assert!(permutation_importance(&spec, &tiny, 1, 0).is_err());
    }

    #[test]
    fn capability_mismatch_errors() {
        let spec = ModelSpec::Linear { ridge: 0.0 };
        assert!(permutation_importance(&spec, &dataset(), 1, 0).is_err());
    }
}
