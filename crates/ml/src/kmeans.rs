//! k-means clustering with k-means++ initialization.

use crate::dataset::check_xy;
use crate::error::{MlError, Result};
use crate::linalg::euclidean;
use rand::{Rng, SeedableRng};

/// A fitted k-means model.
#[derive(Debug, Clone)]
pub struct KMeans {
    k: usize,
    max_iters: usize,
    seed: u64,
    /// Fitted cluster centres; empty before fit.
    centroids: Vec<Vec<f64>>,
    /// Iterations run until convergence at the last fit.
    iterations: usize,
}

impl KMeans {
    /// A new model with `k` clusters, capped at `max_iters` Lloyd iterations.
    pub fn new(k: usize, max_iters: usize, seed: u64) -> Self {
        Self {
            k,
            max_iters,
            seed,
            centroids: Vec::new(),
            iterations: 0,
        }
    }

    /// Fitted centroids.
    pub fn centroids(&self) -> &[Vec<f64>] {
        &self.centroids
    }

    /// Lloyd iterations used by the last fit.
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// k-means++ seeding: spread initial centroids proportionally to squared
    /// distance from the nearest already-chosen centroid.
    fn init_centroids(&self, x: &[Vec<f64>], rng: &mut impl Rng) -> Vec<Vec<f64>> {
        let mut centroids = Vec::with_capacity(self.k);
        centroids.push(x[rng.gen_range(0..x.len())].clone());
        while centroids.len() < self.k {
            let d2: Vec<f64> = x
                .iter()
                .map(|p| {
                    centroids
                        .iter()
                        .map(|c| euclidean(p, c).powi(2))
                        .fold(f64::INFINITY, f64::min)
                })
                .collect();
            let total: f64 = d2.iter().sum();
            if total == 0.0 {
                // All points coincide with existing centroids; duplicate one.
                centroids.push(centroids[0].clone());
                continue;
            }
            let mut target = rng.gen::<f64>() * total;
            let mut chosen = x.len() - 1;
            for (i, &d) in d2.iter().enumerate() {
                target -= d;
                if target <= 0.0 {
                    chosen = i;
                    break;
                }
            }
            centroids.push(x[chosen].clone());
        }
        centroids
    }

    /// Fit on row-major points; returns the final assignments.
    pub fn fit(&mut self, x: &[Vec<f64>]) -> Result<Vec<usize>> {
        let mut span = matilda_telemetry::span("ml.fit.kmeans");
        span.field("rows", x.len()).field("k", self.k);
        check_xy(x, x.len())?;
        if self.k == 0 || self.k > x.len() {
            return Err(MlError::InvalidParameter(format!(
                "k={} invalid for {} points",
                self.k,
                x.len()
            )));
        }
        if self.max_iters == 0 {
            return Err(MlError::InvalidParameter("max_iters must be >= 1".into()));
        }
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);
        let mut centroids = self.init_centroids(x, &mut rng);
        let mut assignments = vec![0usize; x.len()];
        self.iterations = 0;
        for iter in 0..self.max_iters {
            self.iterations = iter + 1;
            // Assignment step.
            let mut changed = false;
            for (i, p) in x.iter().enumerate() {
                let best = centroids
                    .iter()
                    .enumerate()
                    .min_by(|a, b| euclidean(p, a.1).total_cmp(&euclidean(p, b.1)))
                    .map(|(c, _)| c)
                    .expect("k >= 1");
                if assignments[i] != best {
                    assignments[i] = best;
                    changed = true;
                }
            }
            if !changed && iter > 0 {
                break;
            }
            // Update step; empty clusters keep their previous centroid.
            let d = x[0].len();
            let mut sums = vec![vec![0.0; d]; self.k];
            let mut counts = vec![0usize; self.k];
            for (p, &a) in x.iter().zip(&assignments) {
                counts[a] += 1;
                for (s, &v) in sums[a].iter_mut().zip(p) {
                    *s += v;
                }
            }
            for c in 0..self.k {
                if counts[c] > 0 {
                    for (s, cur) in sums[c].iter_mut().zip(&mut centroids[c]) {
                        *cur = *s / counts[c] as f64;
                    }
                }
            }
        }
        self.centroids = centroids;
        span.field("iterations", self.iterations);
        matilda_telemetry::metrics::global().observe_duration("ml.fit_seconds", span.close());
        Ok(assignments)
    }

    /// Assign each point to its nearest fitted centroid.
    pub fn predict(&self, x: &[Vec<f64>]) -> Result<Vec<usize>> {
        if self.centroids.is_empty() {
            return Err(MlError::NotFitted("kmeans"));
        }
        x.iter()
            .map(|p| {
                if p.len() != self.centroids[0].len() {
                    return Err(MlError::DimensionMismatch {
                        expected: self.centroids[0].len(),
                        got: p.len(),
                    });
                }
                Ok(self
                    .centroids
                    .iter()
                    .enumerate()
                    .min_by(|a, b| euclidean(p, a.1).total_cmp(&euclidean(p, b.1)))
                    .map(|(c, _)| c)
                    .expect("k >= 1"))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{inertia, silhouette};

    fn three_blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for i in 0..10 {
            let j = (i % 5) as f64 * 0.05;
            pts.push(vec![0.0 + j, 0.0]);
            pts.push(vec![10.0 + j, 0.0]);
            pts.push(vec![5.0 + j, 8.0]);
        }
        pts
    }

    #[test]
    fn recovers_three_blobs() {
        let pts = three_blobs();
        let mut km = KMeans::new(3, 100, 7);
        let assignments = km.fit(&pts).unwrap();
        // Points generated in rotation: blob membership is i % 3.
        for i in 0..pts.len() {
            for j in 0..pts.len() {
                let same_blob = i % 3 == j % 3;
                let same_cluster = assignments[i] == assignments[j];
                assert_eq!(same_blob, same_cluster, "points {i} and {j}");
            }
        }
        let s = silhouette(&pts, &assignments).unwrap();
        assert!(s > 0.8, "silhouette {s}");
    }

    #[test]
    fn inertia_decreases_with_k() {
        let pts = three_blobs();
        let mut k1 = KMeans::new(1, 50, 0);
        let a1 = k1.fit(&pts).unwrap();
        let mut k3 = KMeans::new(3, 50, 0);
        let a3 = k3.fit(&pts).unwrap();
        let i1 = inertia(&pts, &a1, k1.centroids()).unwrap();
        let i3 = inertia(&pts, &a3, k3.centroids()).unwrap();
        assert!(
            i3 < i1 / 10.0,
            "k=3 should fit blobs far better ({i3} vs {i1})"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let pts = three_blobs();
        let mut a = KMeans::new(3, 50, 11);
        let mut b = KMeans::new(3, 50, 11);
        assert_eq!(a.fit(&pts).unwrap(), b.fit(&pts).unwrap());
    }

    #[test]
    fn predict_matches_fit_assignments() {
        let pts = three_blobs();
        let mut km = KMeans::new(3, 50, 2);
        let fitted = km.fit(&pts).unwrap();
        assert_eq!(km.predict(&pts).unwrap(), fitted);
    }

    #[test]
    fn parameter_validation() {
        let pts = vec![vec![0.0], vec![1.0]];
        assert!(KMeans::new(0, 10, 0).fit(&pts).is_err());
        assert!(KMeans::new(3, 10, 0).fit(&pts).is_err());
        assert!(KMeans::new(1, 0, 0).fit(&pts).is_err());
    }

    #[test]
    fn not_fitted_predict_errors() {
        assert!(KMeans::new(2, 10, 0).predict(&[vec![0.0]]).is_err());
    }

    #[test]
    fn duplicate_points_handled() {
        let pts = vec![vec![1.0, 1.0]; 5];
        let mut km = KMeans::new(2, 10, 0);
        let assignments = km.fit(&pts).unwrap();
        assert_eq!(assignments.len(), 5);
    }

    #[test]
    fn k_equals_n_memorizes() {
        let pts = vec![vec![0.0], vec![5.0], vec![10.0]];
        let mut km = KMeans::new(3, 10, 4);
        let assignments = km.fit(&pts).unwrap();
        let unique: std::collections::HashSet<usize> = assignments.iter().copied().collect();
        assert_eq!(unique.len(), 3, "each point gets its own cluster");
    }
}
