//! Minimal dense linear algebra used by the analytical estimators.
#![allow(clippy::needless_range_loop)] // index-form reads clearest for matrix math
//!
//! Matrices are row-major `Vec<Vec<f64>>`. These routines are O(n³) and meant
//! for the modest dimensionalities of tabular pipelines, not BLAS workloads.

use crate::error::{MlError, Result};

/// Dot product of two equal-length slices.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean distance between two equal-length slices.
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).powi(2))
        .sum::<f64>()
        .sqrt()
}

/// `Aᵀ A` for a row-major matrix (n×d → d×d).
pub fn gram(a: &[Vec<f64>]) -> Vec<Vec<f64>> {
    let d = a.first().map_or(0, Vec::len);
    let mut g = vec![vec![0.0; d]; d];
    for row in a {
        for i in 0..d {
            for j in i..d {
                g[i][j] += row[i] * row[j];
            }
        }
    }
    for i in 0..d {
        for j in 0..i {
            g[i][j] = g[j][i];
        }
    }
    g
}

/// `Aᵀ y` for a row-major matrix and a vector.
pub fn xt_y(a: &[Vec<f64>], y: &[f64]) -> Vec<f64> {
    let d = a.first().map_or(0, Vec::len);
    let mut out = vec![0.0; d];
    for (row, &target) in a.iter().zip(y) {
        for (o, &v) in out.iter_mut().zip(row) {
            *o += v * target;
        }
    }
    out
}

/// Solve `A x = b` by Gaussian elimination with partial pivoting.
///
/// `a` is consumed as the working copy. Errors on singular systems.
pub fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Result<Vec<f64>> {
    let n = a.len();
    if n == 0 {
        return Err(MlError::EmptyInput("linear system"));
    }
    if a.iter().any(|row| row.len() != n) || b.len() != n {
        return Err(MlError::DimensionMismatch {
            expected: n,
            got: b.len(),
        });
    }
    for col in 0..n {
        // Partial pivot: largest |a[row][col]| among remaining rows.
        let pivot = (col..n)
            .max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))
            .expect("non-empty range");
        if a[pivot][col].abs() < 1e-12 {
            return Err(MlError::Numerical(format!(
                "singular matrix at column {col}"
            )));
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in (col + 1)..n {
            let factor = a[row][col] / a[col][col];
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                a[row][k] -= factor * a[col][k];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in (row + 1)..n {
            acc -= a[row][k] * x[k];
        }
        x[row] = acc / a[row][row];
    }
    Ok(x)
}

/// Covariance matrix of row-major data (features centred internally).
pub fn covariance(rows: &[Vec<f64>]) -> Result<Vec<Vec<f64>>> {
    let n = rows.len();
    if n < 2 {
        return Err(MlError::EmptyInput("covariance needs >= 2 rows"));
    }
    let d = rows[0].len();
    let mut means = vec![0.0; d];
    for row in rows {
        for (m, &v) in means.iter_mut().zip(row) {
            *m += v;
        }
    }
    for m in &mut means {
        *m /= n as f64;
    }
    let mut cov = vec![vec![0.0; d]; d];
    for row in rows {
        for i in 0..d {
            for j in i..d {
                cov[i][j] += (row[i] - means[i]) * (row[j] - means[j]);
            }
        }
    }
    for i in 0..d {
        for j in i..d {
            cov[i][j] /= (n - 1) as f64;
            cov[j][i] = cov[i][j];
        }
    }
    Ok(cov)
}

/// Eigen-decomposition of a symmetric matrix by the cyclic Jacobi method.
///
/// Returns `(eigenvalues, eigenvectors)` sorted by descending eigenvalue;
/// eigenvectors are rows of the returned matrix.
pub fn jacobi_eigen(mut a: Vec<Vec<f64>>, max_sweeps: usize) -> Result<(Vec<f64>, Vec<Vec<f64>>)> {
    let n = a.len();
    if n == 0 {
        return Err(MlError::EmptyInput("matrix"));
    }
    let mut v = identity(n);
    for _ in 0..max_sweeps {
        let mut off = 0.0;
        for i in 0..n {
            for j in (i + 1)..n {
                off += a[i][j] * a[i][j];
            }
        }
        if off.sqrt() < 1e-12 {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                if a[p][q].abs() < 1e-15 {
                    continue;
                }
                let theta = (a[q][q] - a[p][p]) / (2.0 * a[p][q]);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                for k in 0..n {
                    let akp = a[k][p];
                    let akq = a[k][q];
                    a[k][p] = c * akp - s * akq;
                    a[k][q] = s * akp + c * akq;
                }
                for k in 0..n {
                    let apk = a[p][k];
                    let aqk = a[q][k];
                    a[p][k] = c * apk - s * aqk;
                    a[q][k] = s * apk + c * aqk;
                }
                for k in 0..n {
                    let vkp = v[k][p];
                    let vkq = v[k][q];
                    v[k][p] = c * vkp - s * vkq;
                    v[k][q] = s * vkp + c * vkq;
                }
            }
        }
    }
    let mut pairs: Vec<(f64, Vec<f64>)> = (0..n)
        .map(|i| (a[i][i], (0..n).map(|k| v[k][i]).collect()))
        .collect();
    pairs.sort_by(|x, y| y.0.total_cmp(&x.0));
    let values = pairs.iter().map(|(e, _)| *e).collect();
    let vectors = pairs.into_iter().map(|(_, vec)| vec).collect();
    Ok((values, vectors))
}

/// The n×n identity matrix.
pub fn identity(n: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| (0..n).map(|j| f64::from(u8::from(i == j))).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_distance() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(euclidean(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
    }

    #[test]
    fn gram_matrix() {
        let a = vec![vec![1.0, 2.0], vec![3.0, 4.0]];
        let g = gram(&a);
        assert_eq!(g, vec![vec![10.0, 14.0], vec![14.0, 20.0]]);
    }

    #[test]
    fn xt_y_matches_manual() {
        let a = vec![vec![1.0, 0.0], vec![0.0, 2.0]];
        assert_eq!(xt_y(&a, &[3.0, 4.0]), vec![3.0, 8.0]);
    }

    #[test]
    fn solve_2x2() {
        // x + y = 3 ; 2x - y = 0  =>  x = 1, y = 2
        let x = solve(vec![vec![1.0, 1.0], vec![2.0, -1.0]], vec![3.0, 0.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn solve_needs_pivoting() {
        // Leading zero forces a row swap.
        let x = solve(vec![vec![0.0, 1.0], vec![1.0, 0.0]], vec![5.0, 7.0]).unwrap();
        assert_eq!(x, vec![7.0, 5.0]);
    }

    #[test]
    fn solve_singular_errors() {
        let err = solve(vec![vec![1.0, 2.0], vec![2.0, 4.0]], vec![1.0, 2.0]).unwrap_err();
        assert!(matches!(err, MlError::Numerical(_)));
    }

    #[test]
    fn solve_dimension_checked() {
        assert!(solve(vec![vec![1.0, 2.0]], vec![1.0]).is_err());
        assert!(solve(vec![], vec![]).is_err());
    }

    #[test]
    fn covariance_diagonal() {
        let rows = vec![vec![1.0, 10.0], vec![2.0, 20.0], vec![3.0, 30.0]];
        let c = covariance(&rows).unwrap();
        assert!((c[0][0] - 1.0).abs() < 1e-12);
        assert!((c[1][1] - 100.0).abs() < 1e-12);
        assert!((c[0][1] - 10.0).abs() < 1e-12, "perfectly correlated");
    }

    #[test]
    fn jacobi_on_diagonal_matrix() {
        let (vals, _) = jacobi_eigen(vec![vec![3.0, 0.0], vec![0.0, 1.0]], 30).unwrap();
        assert!((vals[0] - 3.0).abs() < 1e-10);
        assert!((vals[1] - 1.0).abs() < 1e-10);
    }

    #[test]
    fn jacobi_known_eigenvalues() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let (vals, vecs) = jacobi_eigen(vec![vec![2.0, 1.0], vec![1.0, 2.0]], 30).unwrap();
        assert!((vals[0] - 3.0).abs() < 1e-9);
        assert!((vals[1] - 1.0).abs() < 1e-9);
        // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
        let v = &vecs[0];
        assert!((v[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-6);
        assert!((v[0] - v[1]).abs() < 1e-6 || (v[0] + v[1]).abs() < 1e-6);
    }

    #[test]
    fn identity_shape() {
        let i = identity(3);
        assert_eq!(i[1][1], 1.0);
        assert_eq!(i[0][2], 0.0);
    }
}
