//! The per-iteration hook long training loops call at each boundary
//! (epoch, boosting round, tree, CV fold): a cooperative-cancellation
//! checkpoint so an expired deadline budget stops the loop with a typed
//! [`MlError::Preempted`](crate::error::MlError::Preempted), then a chaos
//! faultpoint so injected delay faults stretch iterations on the active
//! resilience clock.

use crate::error::{MlError, Result};
use matilda_resilience as resilience;

/// Checkpoint one iteration of the loop at `site`. Outside any
/// cancellation scope or fault plan this costs two thread-local reads.
pub(crate) fn iteration(site: &'static str) -> Result<()> {
    resilience::cancel::checkpoint(site)?;
    resilience::fault::faultpoint(site).map_err(|f| MlError::Numerical(f.to_string()))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use matilda_resilience::{cancel, DeadlineBudget, TestClock};
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn unbounded_iteration_is_free() {
        assert!(iteration("ml.fit.test").is_ok());
    }

    #[test]
    fn expired_budget_preempts_the_iteration() {
        let clock = Arc::new(TestClock::new());
        let budget = DeadlineBudget::start(clock.as_ref(), Duration::ZERO);
        let _scope = cancel::activate_budget(budget, clock);
        assert_eq!(
            iteration("ml.fit.test"),
            Err(MlError::Preempted("ml.fit.test".into()))
        );
    }
}
