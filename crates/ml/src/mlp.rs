//! A multi-layer perceptron with one hidden layer, trained by full-batch
//! backpropagation.
//!
//! The paper's running scenario extracts behavioural patterns "for example,
//! using perceptrons" (Cruz-Esquivel & Guzman-Zavaleta 2022); this estimator
//! is that model family, usable both as the behaviour-extraction substitute
//! and as a pipeline model the creativity engine can select.

use crate::dataset::check_xy;
use crate::error::{MlError, Result};
use crate::model::Classifier;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn relu(x: f64) -> f64 {
    x.max(0.0)
}

fn relu_grad(x: f64) -> f64 {
    if x > 0.0 {
        1.0
    } else {
        0.0
    }
}

fn softmax_in_place(scores: &mut [f64]) {
    let max = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut sum = 0.0;
    for s in scores.iter_mut() {
        *s = (*s - max).exp();
        sum += *s;
    }
    for s in scores.iter_mut() {
        *s /= sum;
    }
}

/// A one-hidden-layer perceptron classifier (ReLU + softmax).
#[derive(Debug, Clone)]
pub struct MlpClassifier {
    hidden: usize,
    learning_rate: f64,
    epochs: usize,
    seed: u64,
    // weights[h][i]: input i -> hidden h; out_weights[c][h]: hidden h -> class c.
    w1: Vec<Vec<f64>>,
    b1: Vec<f64>,
    w2: Vec<Vec<f64>>,
    b2: Vec<f64>,
    n_features: usize,
    n_classes: usize,
}

impl MlpClassifier {
    /// A new MLP with `hidden` ReLU units.
    pub fn new(hidden: usize, learning_rate: f64, epochs: usize, seed: u64) -> Self {
        Self {
            hidden,
            learning_rate,
            epochs,
            seed,
            w1: Vec::new(),
            b1: Vec::new(),
            w2: Vec::new(),
            b2: Vec::new(),
            n_features: 0,
            n_classes: 0,
        }
    }

    /// Hidden activations and raw class scores for one row.
    fn forward(&self, row: &[f64]) -> (Vec<f64>, Vec<f64>) {
        let pre: Vec<f64> = self
            .w1
            .iter()
            .zip(&self.b1)
            .map(|(w, b)| w.iter().zip(row).map(|(wi, xi)| wi * xi).sum::<f64>() + b)
            .collect();
        let hidden: Vec<f64> = pre.iter().map(|&p| relu(p)).collect();
        let scores: Vec<f64> = self
            .w2
            .iter()
            .zip(&self.b2)
            .map(|(w, b)| w.iter().zip(&hidden).map(|(wi, hi)| wi * hi).sum::<f64>() + b)
            .collect();
        (pre, scores)
    }
}

impl Classifier for MlpClassifier {
    #[allow(clippy::needless_range_loop)] // index form mirrors the backprop math
    fn fit(&mut self, x: &[Vec<f64>], y: &[usize]) -> Result<()> {
        let mut span = matilda_telemetry::span("ml.fit.mlp");
        span.field("rows", x.len()).field("epochs", self.epochs);
        let d = check_xy(x, y.len())?;
        if self.hidden == 0 {
            return Err(MlError::InvalidParameter(
                "hidden units must be >= 1".into(),
            ));
        }
        if self.learning_rate <= 0.0 {
            return Err(MlError::InvalidParameter(
                "learning_rate must be positive".into(),
            ));
        }
        if self.epochs == 0 {
            return Err(MlError::InvalidParameter("epochs must be positive".into()));
        }
        let k = y.iter().copied().max().map_or(0, |m| m + 1);
        if k < 2 {
            return Err(MlError::InvalidParameter("need at least 2 classes".into()));
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        // He-style initialization keeps ReLU activations alive.
        let scale1 = (2.0 / d as f64).sqrt();
        let scale2 = (2.0 / self.hidden as f64).sqrt();
        self.w1 = (0..self.hidden)
            .map(|_| (0..d).map(|_| rng.gen_range(-scale1..scale1)).collect())
            .collect();
        self.b1 = vec![0.0; self.hidden];
        self.w2 = (0..k)
            .map(|_| {
                (0..self.hidden)
                    .map(|_| rng.gen_range(-scale2..scale2))
                    .collect()
            })
            .collect();
        self.b2 = vec![0.0; k];
        self.n_features = d;
        self.n_classes = k;

        let n = x.len() as f64;
        let lr = self.learning_rate;
        for _ in 0..self.epochs {
            crate::hooks::iteration("ml.fit.mlp")?;
            let mut gw1 = vec![vec![0.0; d]; self.hidden];
            let mut gb1 = vec![0.0; self.hidden];
            let mut gw2 = vec![vec![0.0; self.hidden]; k];
            let mut gb2 = vec![0.0; k];
            for (row, &label) in x.iter().zip(y) {
                let (pre, mut scores) = self.forward(row);
                let hidden: Vec<f64> = pre.iter().map(|&p| relu(p)).collect();
                softmax_in_place(&mut scores);
                // dL/dscore_c = p_c - 1{c == label}
                for c in 0..k {
                    let err = scores[c] - f64::from(u8::from(c == label));
                    for (g, &h) in gw2[c].iter_mut().zip(&hidden) {
                        *g += err * h;
                    }
                    gb2[c] += err;
                }
                // Backprop into the hidden layer.
                for h in 0..self.hidden {
                    let mut upstream = 0.0;
                    for c in 0..k {
                        let err = scores[c] - f64::from(u8::from(c == label));
                        upstream += err * self.w2[c][h];
                    }
                    let grad = upstream * relu_grad(pre[h]);
                    for (g, &xi) in gw1[h].iter_mut().zip(row) {
                        *g += grad * xi;
                    }
                    gb1[h] += grad;
                }
            }
            for h in 0..self.hidden {
                for (w, g) in self.w1[h].iter_mut().zip(&gw1[h]) {
                    *w -= lr * g / n;
                }
                self.b1[h] -= lr * gb1[h] / n;
            }
            for c in 0..k {
                for (w, g) in self.w2[c].iter_mut().zip(&gw2[c]) {
                    *w -= lr * g / n;
                }
                self.b2[c] -= lr * gb2[c] / n;
            }
        }
        matilda_telemetry::metrics::global().observe_duration("ml.fit_seconds", span.close());
        Ok(())
    }

    fn predict_one(&self, row: &[f64]) -> Result<usize> {
        let p = self.predict_proba_one(row)?;
        Ok(p.iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .expect("fitted model has classes"))
    }

    fn predict_proba_one(&self, row: &[f64]) -> Result<Vec<f64>> {
        if self.w1.is_empty() {
            return Err(MlError::NotFitted("mlp"));
        }
        if row.len() != self.n_features {
            return Err(MlError::DimensionMismatch {
                expected: self.n_features,
                got: row.len(),
            });
        }
        let (_, mut scores) = self.forward(row);
        softmax_in_place(&mut scores);
        Ok(scores)
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn name(&self) -> &'static str {
        "mlp"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data(n: usize) -> (Vec<Vec<f64>>, Vec<usize>) {
        // XOR with jitter: the canonical not-linearly-separable task.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let a = f64::from(u8::from(i % 2 == 0));
            let b = f64::from(u8::from((i / 2) % 2 == 0));
            let jitter = (i % 7) as f64 * 0.01;
            x.push(vec![a + jitter, b - jitter]);
            y.push(usize::from((a != b) as u8 == 1));
        }
        (x, y)
    }

    #[test]
    fn learns_xor() {
        let (x, y) = xor_data(80);
        let mut m = MlpClassifier::new(16, 0.8, 1500, 7);
        m.fit(&x, &y).unwrap();
        let preds = m.predict(&x).unwrap();
        let acc = preds.iter().zip(&y).filter(|(p, t)| p == t).count() as f64 / y.len() as f64;
        assert!(acc > 0.95, "XOR accuracy {acc}");
    }

    #[test]
    fn learns_linear_separation_too() {
        let x: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64 / 10.0]).collect();
        let y: Vec<usize> = (0..40).map(|i| usize::from(i >= 20)).collect();
        let mut m = MlpClassifier::new(8, 0.5, 600, 3);
        m.fit(&x, &y).unwrap();
        assert_eq!(m.predict_one(&[0.1]).unwrap(), 0);
        assert_eq!(m.predict_one(&[3.9]).unwrap(), 1);
    }

    #[test]
    fn three_classes() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..20 {
            let t = i as f64 * 0.02;
            x.push(vec![0.0 + t, 0.0]);
            y.push(0);
            x.push(vec![3.0 + t, 0.0]);
            y.push(1);
            x.push(vec![1.5 + t, 3.0]);
            y.push(2);
        }
        let mut m = MlpClassifier::new(12, 0.5, 800, 5);
        m.fit(&x, &y).unwrap();
        assert_eq!(m.n_classes(), 3);
        assert_eq!(m.predict_one(&[0.0, 0.0]).unwrap(), 0);
        assert_eq!(m.predict_one(&[3.0, 0.0]).unwrap(), 1);
        assert_eq!(m.predict_one(&[1.5, 3.0]).unwrap(), 2);
    }

    #[test]
    fn probabilities_valid() {
        let (x, y) = xor_data(40);
        let mut m = MlpClassifier::new(8, 0.5, 200, 1);
        m.fit(&x, &y).unwrap();
        let p = m.predict_proba_one(&x[0]).unwrap();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn deterministic_given_seed() {
        let (x, y) = xor_data(40);
        let mut a = MlpClassifier::new(8, 0.5, 100, 9);
        let mut b = MlpClassifier::new(8, 0.5, 100, 9);
        a.fit(&x, &y).unwrap();
        b.fit(&x, &y).unwrap();
        assert_eq!(a.predict(&x).unwrap(), b.predict(&x).unwrap());
    }

    #[test]
    fn parameter_validation() {
        let (x, y) = xor_data(8);
        assert!(MlpClassifier::new(0, 0.5, 10, 0).fit(&x, &y).is_err());
        assert!(MlpClassifier::new(4, 0.0, 10, 0).fit(&x, &y).is_err());
        assert!(MlpClassifier::new(4, 0.5, 0, 0).fit(&x, &y).is_err());
    }

    #[test]
    fn not_fitted_and_dimensions() {
        let m = MlpClassifier::new(4, 0.5, 10, 0);
        assert!(m.predict_proba_one(&[0.0]).is_err());
        let (x, y) = xor_data(16);
        let mut m = MlpClassifier::new(4, 0.5, 10, 0);
        m.fit(&x, &y).unwrap();
        assert!(m.predict_one(&[0.0]).is_err(), "wrong dimensionality");
    }
}
