//! Ordinary least squares / ridge regression solved by the normal equations.

use crate::dataset::check_xy;
use crate::error::{MlError, Result};
use crate::linalg;
use crate::model::Regressor;

/// Linear regression `y = w·x + b`, optionally ridge-regularized.
///
/// Fitting solves `(XᵀX + λI) w = Xᵀy` with an intercept column appended
/// (the intercept is not penalized when `ridge > 0`).
#[derive(Debug, Clone, Default)]
pub struct LinearRegression {
    ridge: f64,
    /// Learned weights, one per feature; empty before fit.
    weights: Vec<f64>,
    /// Learned intercept.
    intercept: f64,
}

impl LinearRegression {
    /// A new model with L2 penalty `ridge` (0 for OLS).
    pub fn new(ridge: f64) -> Self {
        Self {
            ridge,
            weights: Vec::new(),
            intercept: 0.0,
        }
    }

    /// Learned coefficients (empty before fit).
    pub fn coefficients(&self) -> &[f64] {
        &self.weights
    }

    /// Learned intercept.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }
}

impl Regressor for LinearRegression {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) -> Result<()> {
        let d = check_xy(x, y.len())?;
        if self.ridge < 0.0 {
            return Err(MlError::InvalidParameter(format!(
                "ridge {} < 0",
                self.ridge
            )));
        }
        // Design matrix with trailing intercept column of ones.
        let design: Vec<Vec<f64>> = x
            .iter()
            .map(|row| {
                let mut r = row.clone();
                r.push(1.0);
                r
            })
            .collect();
        let mut gram = linalg::gram(&design);
        for (i, row) in gram.iter_mut().enumerate().take(d) {
            row[i] += self.ridge; // do not penalise the intercept (index d)
        }
        let rhs = linalg::xt_y(&design, y);
        let solution = linalg::solve(gram, rhs)?;
        self.intercept = solution[d];
        self.weights = solution[..d].to_vec();
        Ok(())
    }

    fn predict_one(&self, row: &[f64]) -> Result<f64> {
        if self.weights.is_empty() {
            return Err(MlError::NotFitted("linear regression"));
        }
        if row.len() != self.weights.len() {
            return Err(MlError::DimensionMismatch {
                expected: self.weights.len(),
                got: row.len(),
            });
        }
        Ok(linalg::dot(&self.weights, row) + self.intercept)
    }

    fn name(&self) -> &'static str {
        "linear"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_exact_line() {
        // y = 2x + 1
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..10).map(|i| 2.0 * i as f64 + 1.0).collect();
        let mut m = LinearRegression::new(0.0);
        m.fit(&x, &y).unwrap();
        assert!((m.coefficients()[0] - 2.0).abs() < 1e-9);
        assert!((m.intercept() - 1.0).abs() < 1e-9);
        assert!((m.predict_one(&[100.0]).unwrap() - 201.0).abs() < 1e-6);
    }

    #[test]
    fn recovers_multivariate() {
        // y = 3a - 2b + 5
        let mut x = Vec::new();
        let mut y = Vec::new();
        for a in 0..5 {
            for b in 0..5 {
                x.push(vec![a as f64, b as f64]);
                y.push(3.0 * a as f64 - 2.0 * b as f64 + 5.0);
            }
        }
        let mut m = LinearRegression::new(0.0);
        m.fit(&x, &y).unwrap();
        assert!((m.coefficients()[0] - 3.0).abs() < 1e-9);
        assert!((m.coefficients()[1] + 2.0).abs() < 1e-9);
        assert!((m.intercept() - 5.0).abs() < 1e-9);
    }

    #[test]
    fn ridge_shrinks_weights() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..20).map(|i| 4.0 * i as f64).collect();
        let mut ols = LinearRegression::new(0.0);
        ols.fit(&x, &y).unwrap();
        let mut ridge = LinearRegression::new(100.0);
        ridge.fit(&x, &y).unwrap();
        assert!(ridge.coefficients()[0].abs() < ols.coefficients()[0].abs());
        assert!(ridge.coefficients()[0] > 0.0);
    }

    #[test]
    fn negative_ridge_rejected() {
        let mut m = LinearRegression::new(-1.0);
        assert!(m.fit(&[vec![1.0]], &[1.0]).is_err());
    }

    #[test]
    fn predict_before_fit_errors() {
        let m = LinearRegression::new(0.0);
        assert!(matches!(m.predict_one(&[1.0]), Err(MlError::NotFitted(_))));
    }

    #[test]
    fn predict_dimension_checked() {
        let mut m = LinearRegression::new(0.0);
        m.fit(&[vec![1.0], vec![2.0]], &[1.0, 2.0]).unwrap();
        assert!(m.predict_one(&[1.0, 2.0]).is_err());
    }

    #[test]
    fn collinear_features_error_without_ridge_but_fit_with() {
        // Second feature duplicates the first: singular gram matrix.
        let x: Vec<Vec<f64>> = (0..6).map(|i| vec![i as f64, i as f64]).collect();
        let y: Vec<f64> = (0..6).map(|i| i as f64).collect();
        let mut ols = LinearRegression::new(0.0);
        assert!(ols.fit(&x, &y).is_err());
        let mut ridge = LinearRegression::new(1e-3);
        ridge.fit(&x, &y).unwrap();
        assert!((ridge.predict_one(&[3.0, 3.0]).unwrap() - 3.0).abs() < 0.1);
    }

    #[test]
    fn batch_predict() {
        let mut m = LinearRegression::new(0.0);
        m.fit(&[vec![0.0], vec![1.0]], &[0.0, 1.0]).unwrap();
        let preds = m.predict(&[vec![2.0], vec![3.0]]).unwrap();
        assert!((preds[0] - 2.0).abs() < 1e-9);
        assert!((preds[1] - 3.0).abs() < 1e-9);
    }
}
