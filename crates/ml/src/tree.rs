//! CART decision trees for classification (Gini) and regression (variance).

use crate::dataset::check_xy;
use crate::error::{MlError, Result};
use crate::model::{Classifier, Regressor};

/// A fitted tree node.
#[derive(Debug, Clone)]
pub enum Node {
    /// Terminal node: mean target (regression) or class distribution
    /// (classification; `value` is the argmax class as f64).
    Leaf {
        /// Prediction value: class code or mean target.
        value: f64,
        /// Class probability distribution; empty for regression.
        distribution: Vec<f64>,
    },
    /// Binary split: rows with `feature < threshold` go left.
    Split {
        /// Feature index tested.
        feature: usize,
        /// Split threshold (midpoint between adjacent training values).
        threshold: f64,
        /// Subtree for `x[feature] < threshold`.
        left: Box<Node>,
        /// Subtree for `x[feature] >= threshold`.
        right: Box<Node>,
    },
}

impl Node {
    fn descend(&self, row: &[f64]) -> &Node {
        match self {
            Node::Leaf { .. } => self,
            Node::Split {
                feature,
                threshold,
                left,
                right,
            } => {
                if row[*feature] < *threshold {
                    left.descend(row)
                } else {
                    right.descend(row)
                }
            }
        }
    }

    /// Depth of the tree rooted here (leaf = 0).
    pub fn depth(&self) -> usize {
        match self {
            Node::Leaf { .. } => 0,
            Node::Split { left, right, .. } => 1 + left.depth().max(right.depth()),
        }
    }

    /// Number of leaves under this node.
    pub fn n_leaves(&self) -> usize {
        match self {
            Node::Leaf { .. } => 1,
            Node::Split { left, right, .. } => left.n_leaves() + right.n_leaves(),
        }
    }
}

/// Impurity criterion for split search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Criterion {
    /// Gini impurity over `n_classes`.
    Gini(usize),
    /// Variance (mean squared error around the node mean).
    Mse,
}

/// Best split found for a node, if any improves impurity.
struct BestSplit {
    feature: usize,
    threshold: f64,
    score: f64,
}

fn gini_from_counts(counts: &[f64], total: f64) -> f64 {
    if total == 0.0 {
        return 0.0;
    }
    1.0 - counts.iter().map(|&c| (c / total).powi(2)).sum::<f64>()
}

/// Weighted impurity of splitting sorted `(value, target)` pairs after index
/// `i` for each candidate split; returns the best split for one feature.
fn best_split_for_feature(
    pairs: &[(f64, f64)],
    criterion: Criterion,
    feature: usize,
) -> Option<BestSplit> {
    let n = pairs.len();
    let n_f = n as f64;
    let mut best: Option<BestSplit> = None;
    match criterion {
        Criterion::Gini(k) => {
            let mut left = vec![0.0f64; k];
            let mut right = vec![0.0f64; k];
            for &(_, t) in pairs {
                right[t as usize] += 1.0;
            }
            for i in 1..n {
                let t = pairs[i - 1].1 as usize;
                left[t] += 1.0;
                right[t] -= 1.0;
                if pairs[i].0 == pairs[i - 1].0 {
                    continue; // cannot split between equal values
                }
                let nl = i as f64;
                let nr = n_f - nl;
                let score = nl / n_f * gini_from_counts(&left, nl)
                    + nr / n_f * gini_from_counts(&right, nr);
                if best.as_ref().is_none_or(|b| score < b.score) {
                    best = Some(BestSplit {
                        feature,
                        threshold: (pairs[i - 1].0 + pairs[i].0) / 2.0,
                        score,
                    });
                }
            }
        }
        Criterion::Mse => {
            let total_sum: f64 = pairs.iter().map(|p| p.1).sum();
            let total_sq: f64 = pairs.iter().map(|p| p.1 * p.1).sum();
            let mut left_sum = 0.0;
            let mut left_sq = 0.0;
            for i in 1..n {
                let t = pairs[i - 1].1;
                left_sum += t;
                left_sq += t * t;
                if pairs[i].0 == pairs[i - 1].0 {
                    continue;
                }
                let nl = i as f64;
                let nr = n_f - nl;
                let right_sum = total_sum - left_sum;
                let right_sq = total_sq - left_sq;
                // Sum of squared deviations = E[x²]·n - n·mean²
                let sse_l = left_sq - left_sum * left_sum / nl;
                let sse_r = right_sq - right_sum * right_sum / nr;
                let score = (sse_l + sse_r) / n_f;
                if best.as_ref().is_none_or(|b| score < b.score) {
                    best = Some(BestSplit {
                        feature,
                        threshold: (pairs[i - 1].0 + pairs[i].0) / 2.0,
                        score,
                    });
                }
            }
        }
    }
    best
}

fn node_impurity(targets: &[f64], criterion: Criterion) -> f64 {
    let n = targets.len() as f64;
    match criterion {
        Criterion::Gini(k) => {
            let mut counts = vec![0.0; k];
            for &t in targets {
                counts[t as usize] += 1.0;
            }
            gini_from_counts(&counts, n)
        }
        Criterion::Mse => {
            let mean = targets.iter().sum::<f64>() / n;
            targets.iter().map(|t| (t - mean).powi(2)).sum::<f64>() / n
        }
    }
}

fn make_leaf(targets: &[f64], criterion: Criterion) -> Node {
    match criterion {
        Criterion::Gini(k) => {
            let mut counts = vec![0.0; k];
            for &t in targets {
                counts[t as usize] += 1.0;
            }
            let total: f64 = counts.iter().sum();
            let value = counts
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .map(|(i, _)| i as f64)
                .unwrap_or(0.0);
            Node::Leaf {
                value,
                distribution: counts.iter().map(|&c| c / total).collect(),
            }
        }
        Criterion::Mse => {
            let mean = targets.iter().sum::<f64>() / targets.len() as f64;
            Node::Leaf {
                value: mean,
                distribution: Vec::new(),
            }
        }
    }
}

/// Recursively grow a tree on the rows at `indices`.
///
/// `features` restricts which feature columns may be split on (random
/// forests pass a subsample; plain trees pass all).
#[allow(clippy::too_many_arguments)] // recursion carries the full split context
fn grow(
    x: &[Vec<f64>],
    y: &[f64],
    indices: &[usize],
    features: &[usize],
    criterion: Criterion,
    depth: usize,
    max_depth: usize,
    min_samples_split: usize,
) -> Node {
    let targets: Vec<f64> = indices.iter().map(|&i| y[i]).collect();
    if depth >= max_depth
        || indices.len() < min_samples_split
        || node_impurity(&targets, criterion) == 0.0
    {
        return make_leaf(&targets, criterion);
    }
    let mut best: Option<BestSplit> = None;
    for &f in features {
        let mut pairs: Vec<(f64, f64)> = indices.iter().map(|&i| (x[i][f], y[i])).collect();
        pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
        if let Some(candidate) = best_split_for_feature(&pairs, criterion, f) {
            if best.as_ref().is_none_or(|b| candidate.score < b.score) {
                best = Some(candidate);
            }
        }
    }
    let Some(split) = best else {
        return make_leaf(&targets, criterion);
    };
    let (left_idx, right_idx): (Vec<usize>, Vec<usize>) = indices
        .iter()
        .partition(|&&i| x[i][split.feature] < split.threshold);
    if left_idx.is_empty() || right_idx.is_empty() {
        return make_leaf(&targets, criterion);
    }
    Node::Split {
        feature: split.feature,
        threshold: split.threshold,
        left: Box::new(grow(
            x,
            y,
            &left_idx,
            features,
            criterion,
            depth + 1,
            max_depth,
            min_samples_split,
        )),
        right: Box::new(grow(
            x,
            y,
            &right_idx,
            features,
            criterion,
            depth + 1,
            max_depth,
            min_samples_split,
        )),
    }
}

/// Grow a tree over explicit row and feature index subsets. Used directly by
/// the random forest; plain estimators call it with all rows/features.
#[allow(clippy::too_many_arguments)]
pub(crate) fn grow_tree(
    x: &[Vec<f64>],
    y: &[f64],
    indices: &[usize],
    features: &[usize],
    classification: Option<usize>,
    max_depth: usize,
    min_samples_split: usize,
) -> Node {
    let criterion = match classification {
        Some(k) => Criterion::Gini(k),
        None => Criterion::Mse,
    };
    grow(
        x,
        y,
        indices,
        features,
        criterion,
        0,
        max_depth,
        min_samples_split,
    )
}

/// CART classifier minimizing Gini impurity.
#[derive(Debug, Clone)]
pub struct DecisionTreeClassifier {
    max_depth: usize,
    min_samples_split: usize,
    root: Option<Node>,
    n_classes: usize,
    n_features: usize,
}

impl DecisionTreeClassifier {
    /// A new tree limited to `max_depth` levels; nodes with fewer than
    /// `min_samples_split` rows become leaves.
    pub fn new(max_depth: usize, min_samples_split: usize) -> Self {
        Self {
            max_depth,
            min_samples_split,
            root: None,
            n_classes: 0,
            n_features: 0,
        }
    }

    /// The fitted root node.
    pub fn root(&self) -> Option<&Node> {
        self.root.as_ref()
    }
}

impl Classifier for DecisionTreeClassifier {
    fn fit(&mut self, x: &[Vec<f64>], y: &[usize]) -> Result<()> {
        let d = check_xy(x, y.len())?;
        if self.max_depth == 0 {
            return Err(MlError::InvalidParameter("max_depth must be >= 1".into()));
        }
        let k = y.iter().copied().max().map_or(0, |m| m + 1);
        if k < 2 {
            return Err(MlError::InvalidParameter("need at least 2 classes".into()));
        }
        let y_f: Vec<f64> = y.iter().map(|&c| c as f64).collect();
        let indices: Vec<usize> = (0..x.len()).collect();
        let features: Vec<usize> = (0..d).collect();
        self.root = Some(grow_tree(
            x,
            &y_f,
            &indices,
            &features,
            Some(k),
            self.max_depth,
            self.min_samples_split.max(2),
        ));
        self.n_classes = k;
        self.n_features = d;
        Ok(())
    }

    fn predict_one(&self, row: &[f64]) -> Result<usize> {
        let p = self.predict_proba_one(row)?;
        Ok(p.iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .expect("fitted tree has classes"))
    }

    fn predict_proba_one(&self, row: &[f64]) -> Result<Vec<f64>> {
        let root = self
            .root
            .as_ref()
            .ok_or(MlError::NotFitted("decision tree"))?;
        if row.len() != self.n_features {
            return Err(MlError::DimensionMismatch {
                expected: self.n_features,
                got: row.len(),
            });
        }
        match root.descend(row) {
            Node::Leaf { distribution, .. } => Ok(distribution.clone()),
            Node::Split { .. } => unreachable!("descend returns a leaf"),
        }
    }

    fn n_classes(&self) -> usize {
        self.n_classes
    }

    fn name(&self) -> &'static str {
        "tree"
    }
}

/// CART regressor minimizing within-node variance.
#[derive(Debug, Clone)]
pub struct DecisionTreeRegressor {
    max_depth: usize,
    min_samples_split: usize,
    root: Option<Node>,
    n_features: usize,
}

impl DecisionTreeRegressor {
    /// A new regression tree; see [`DecisionTreeClassifier::new`].
    pub fn new(max_depth: usize, min_samples_split: usize) -> Self {
        Self {
            max_depth,
            min_samples_split,
            root: None,
            n_features: 0,
        }
    }

    /// The fitted root node.
    pub fn root(&self) -> Option<&Node> {
        self.root.as_ref()
    }
}

impl Regressor for DecisionTreeRegressor {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) -> Result<()> {
        let d = check_xy(x, y.len())?;
        if self.max_depth == 0 {
            return Err(MlError::InvalidParameter("max_depth must be >= 1".into()));
        }
        let indices: Vec<usize> = (0..x.len()).collect();
        let features: Vec<usize> = (0..d).collect();
        self.root = Some(grow_tree(
            x,
            y,
            &indices,
            &features,
            None,
            self.max_depth,
            self.min_samples_split.max(2),
        ));
        self.n_features = d;
        Ok(())
    }

    fn predict_one(&self, row: &[f64]) -> Result<f64> {
        let root = self
            .root
            .as_ref()
            .ok_or(MlError::NotFitted("decision tree"))?;
        if row.len() != self.n_features {
            return Err(MlError::DimensionMismatch {
                expected: self.n_features,
                got: row.len(),
            });
        }
        match root.descend(row) {
            Node::Leaf { value, .. } => Ok(*value),
            Node::Split { .. } => unreachable!("descend returns a leaf"),
        }
    }

    fn name(&self) -> &'static str {
        "tree"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_threshold_rule() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y: Vec<usize> = (0..20).map(|i| usize::from(i >= 10)).collect();
        let mut m = DecisionTreeClassifier::new(3, 2);
        m.fit(&x, &y).unwrap();
        assert_eq!(m.predict_one(&[3.0]).unwrap(), 0);
        assert_eq!(m.predict_one(&[15.0]).unwrap(), 1);
        assert_eq!(m.root().unwrap().depth(), 1, "one split suffices");
    }

    #[test]
    fn learns_xor_with_depth_two() {
        let x = vec![
            vec![0.0, 0.0],
            vec![0.0, 1.0],
            vec![1.0, 0.0],
            vec![1.0, 1.0],
        ];
        let y = vec![0, 1, 1, 0];
        let mut m = DecisionTreeClassifier::new(2, 2);
        m.fit(&x, &y).unwrap();
        assert_eq!(m.predict(&x).unwrap(), y, "XOR needs two levels");
    }

    #[test]
    fn depth_limit_enforced() {
        let x: Vec<Vec<f64>> = (0..32).map(|i| vec![i as f64]).collect();
        let y: Vec<usize> = (0..32).map(|i| i % 2).collect();
        let mut m = DecisionTreeClassifier::new(2, 2);
        m.fit(&x, &y).unwrap();
        assert!(m.root().unwrap().depth() <= 2);
    }

    #[test]
    fn pure_node_stops_early() {
        // All labels are class 1 (class 0 exists but is empty): zero
        // impurity at the root, so the tree is a single leaf.
        let x = vec![vec![0.0], vec![1.0], vec![2.0]];
        let y = vec![1, 1, 1];
        let mut m = DecisionTreeClassifier::new(5, 2);
        m.fit(&x, &y).unwrap();
        assert_eq!(m.root().unwrap().n_leaves(), 1);
        assert_eq!(m.predict_one(&[9.0]).unwrap(), 1);
    }

    #[test]
    fn proba_at_impure_leaf() {
        let x = vec![vec![0.0], vec![0.0], vec![0.0], vec![5.0]];
        let y = vec![0, 0, 1, 1];
        // Depth 1 with identical left values: leaf keeps mixed distribution.
        let mut m = DecisionTreeClassifier::new(1, 2);
        m.fit(&x, &y).unwrap();
        let p = m.predict_proba_one(&[0.0]).unwrap();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((p[0] - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn regression_step_function() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..20).map(|i| if i < 10 { 1.0 } else { 5.0 }).collect();
        let mut m = DecisionTreeRegressor::new(3, 2);
        m.fit(&x, &y).unwrap();
        assert_eq!(m.predict_one(&[2.0]).unwrap(), 1.0);
        assert_eq!(m.predict_one(&[17.0]).unwrap(), 5.0);
    }

    #[test]
    fn regression_reduces_to_mean_at_depth_limit() {
        let x = vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]];
        let y = vec![0.0, 1.0, 2.0, 3.0];
        let mut shallow = DecisionTreeRegressor::new(1, 2);
        shallow.fit(&x, &y).unwrap();
        // Single split at 1.5: leaves predict means 0.5 and 2.5.
        assert_eq!(shallow.predict_one(&[0.0]).unwrap(), 0.5);
        assert_eq!(shallow.predict_one(&[3.0]).unwrap(), 2.5);
    }

    #[test]
    fn min_samples_split_respected() {
        let x: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64]).collect();
        let y: Vec<usize> = (0..8).map(|i| i % 2).collect();
        let mut m = DecisionTreeClassifier::new(10, 100);
        m.fit(&x, &y).unwrap();
        assert_eq!(m.root().unwrap().n_leaves(), 1, "root cannot split");
    }

    #[test]
    fn identical_features_cannot_split() {
        let x = vec![vec![1.0], vec![1.0], vec![1.0], vec![1.0]];
        let y = vec![0, 1, 0, 1];
        let mut m = DecisionTreeClassifier::new(3, 2);
        m.fit(&x, &y).unwrap();
        assert_eq!(m.root().unwrap().n_leaves(), 1);
    }

    #[test]
    fn not_fitted_and_dims() {
        let m = DecisionTreeClassifier::new(3, 2);
        assert!(m.predict_one(&[0.0]).is_err());
        let mut r = DecisionTreeRegressor::new(3, 2);
        r.fit(&[vec![0.0, 1.0], vec![1.0, 0.0]], &[0.0, 1.0])
            .unwrap();
        assert!(r.predict_one(&[0.0]).is_err());
    }

    #[test]
    fn max_depth_zero_rejected() {
        let mut m = DecisionTreeRegressor::new(0, 2);
        assert!(m.fit(&[vec![0.0]], &[0.0]).is_err());
    }
}
