//! Gaussian naive Bayes classifier.

use crate::dataset::check_xy;
use crate::error::{MlError, Result};
use crate::model::Classifier;

/// Per-class Gaussian parameters.
#[derive(Debug, Clone)]
struct ClassStats {
    prior_ln: f64,
    means: Vec<f64>,
    variances: Vec<f64>,
}

/// Gaussian naive Bayes: features are modelled as independent normals per
/// class; variances are floored at a small epsilon for numerical safety.
#[derive(Debug, Clone, Default)]
pub struct GaussianNb {
    classes: Vec<ClassStats>,
    n_features: usize,
}

const VAR_FLOOR: f64 = 1e-9;

impl GaussianNb {
    /// A new, unfitted model.
    pub fn new() -> Self {
        Self::default()
    }

    fn log_likelihood(&self, stats: &ClassStats, row: &[f64]) -> f64 {
        let mut ll = stats.prior_ln;
        for ((&x, &m), &v) in row.iter().zip(&stats.means).zip(&stats.variances) {
            ll += -0.5 * ((2.0 * std::f64::consts::PI * v).ln() + (x - m).powi(2) / v);
        }
        ll
    }
}

impl Classifier for GaussianNb {
    fn fit(&mut self, x: &[Vec<f64>], y: &[usize]) -> Result<()> {
        let d = check_xy(x, y.len())?;
        let k = y.iter().copied().max().map_or(0, |m| m + 1);
        if k < 2 {
            return Err(MlError::InvalidParameter("need at least 2 classes".into()));
        }
        self.n_features = d;
        self.classes.clear();
        for c in 0..k {
            let rows: Vec<&Vec<f64>> = x
                .iter()
                .zip(y)
                .filter(|(_, &label)| label == c)
                .map(|(r, _)| r)
                .collect();
            if rows.is_empty() {
                return Err(MlError::InvalidParameter(format!(
                    "class {c} has no samples"
                )));
            }
            let n = rows.len() as f64;
            let mut means = vec![0.0; d];
            for row in &rows {
                for (m, &v) in means.iter_mut().zip(row.iter()) {
                    *m += v;
                }
            }
            means.iter_mut().for_each(|m| *m /= n);
            let mut variances = vec![0.0; d];
            for row in &rows {
                for ((s, &v), &m) in variances.iter_mut().zip(row.iter()).zip(&means) {
                    *s += (v - m).powi(2);
                }
            }
            variances
                .iter_mut()
                .for_each(|v| *v = (*v / n).max(VAR_FLOOR));
            self.classes.push(ClassStats {
                prior_ln: (n / x.len() as f64).ln(),
                means,
                variances,
            });
        }
        Ok(())
    }

    fn predict_one(&self, row: &[f64]) -> Result<usize> {
        let probs = self.predict_proba_one(row)?;
        Ok(probs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .expect("fitted model has classes"))
    }

    fn predict_proba_one(&self, row: &[f64]) -> Result<Vec<f64>> {
        if self.classes.is_empty() {
            return Err(MlError::NotFitted("gaussian naive bayes"));
        }
        if row.len() != self.n_features {
            return Err(MlError::DimensionMismatch {
                expected: self.n_features,
                got: row.len(),
            });
        }
        let lls: Vec<f64> = self
            .classes
            .iter()
            .map(|s| self.log_likelihood(s, row))
            .collect();
        let max = lls.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = lls.iter().map(|&l| (l - max).exp()).collect();
        let sum: f64 = exps.iter().sum();
        Ok(exps.into_iter().map(|e| e / sum).collect())
    }

    fn n_classes(&self) -> usize {
        self.classes.len()
    }

    fn name(&self) -> &'static str {
        "gaussian_nb"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..20 {
            let jitter = (i % 5) as f64 * 0.1;
            x.push(vec![0.0 + jitter, 0.0 - jitter]);
            y.push(0);
            x.push(vec![10.0 + jitter, 10.0 - jitter]);
            y.push(1);
        }
        (x, y)
    }

    #[test]
    fn separates_blobs() {
        let (x, y) = blobs();
        let mut m = GaussianNb::new();
        m.fit(&x, &y).unwrap();
        assert_eq!(m.predict_one(&[0.1, 0.0]).unwrap(), 0);
        assert_eq!(m.predict_one(&[9.9, 10.0]).unwrap(), 1);
        assert_eq!(m.n_classes(), 2);
    }

    #[test]
    fn probabilities_normalized_and_confident() {
        let (x, y) = blobs();
        let mut m = GaussianNb::new();
        m.fit(&x, &y).unwrap();
        let p = m.predict_proba_one(&[0.0, 0.0]).unwrap();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[0] > 0.99);
    }

    #[test]
    fn respects_priors_on_ambiguous_point() {
        // Class 0 has 9x the samples of class 1 at the same location spread.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..90 {
            x.push(vec![(i % 10) as f64 / 10.0]);
            y.push(0);
        }
        for i in 0..10 {
            x.push(vec![(i % 10) as f64 / 10.0]);
            y.push(1);
        }
        let mut m = GaussianNb::new();
        m.fit(&x, &y).unwrap();
        assert_eq!(
            m.predict_one(&[0.5]).unwrap(),
            0,
            "prior should break the tie"
        );
    }

    #[test]
    fn constant_feature_is_safe() {
        let x = vec![
            vec![1.0, 0.0],
            vec![1.0, 1.0],
            vec![1.0, 10.0],
            vec![1.0, 11.0],
        ];
        let y = vec![0, 0, 1, 1];
        let mut m = GaussianNb::new();
        m.fit(&x, &y).unwrap();
        assert_eq!(m.predict_one(&[1.0, 0.5]).unwrap(), 0);
        assert_eq!(m.predict_one(&[1.0, 10.5]).unwrap(), 1);
    }

    #[test]
    fn empty_class_detected() {
        // Labels 0 and 2 only: class 1 has no samples.
        let mut m = GaussianNb::new();
        let err = m.fit(&[vec![0.0], vec![1.0]], &[0, 2]).unwrap_err();
        assert!(matches!(err, MlError::InvalidParameter(_)));
    }

    #[test]
    fn not_fitted_and_dimension_errors() {
        let m = GaussianNb::new();
        assert!(m.predict_one(&[0.0]).is_err());
        let (x, y) = blobs();
        let mut m = GaussianNb::new();
        m.fit(&x, &y).unwrap();
        assert!(m.predict_one(&[0.0]).is_err(), "wrong dimension");
    }
}
