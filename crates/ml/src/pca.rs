//! Principal component analysis via Jacobi eigen-decomposition of the
//! covariance matrix.

use crate::dataset::check_xy;
use crate::error::{MlError, Result};
use crate::linalg::{self, dot};

/// A fitted PCA projection.
#[derive(Debug, Clone)]
pub struct Pca {
    n_components: usize,
    /// Feature means subtracted before projecting.
    means: Vec<f64>,
    /// Component rows, each a unit-length direction in feature space.
    components: Vec<Vec<f64>>,
    /// Variance explained by each kept component.
    explained_variance: Vec<f64>,
    /// Total variance across all original features.
    total_variance: f64,
}

impl Pca {
    /// Fit a projection onto the top `n_components` principal directions.
    pub fn fit(x: &[Vec<f64>], n_components: usize) -> Result<Pca> {
        let d = check_xy(x, x.len())?;
        if n_components == 0 || n_components > d {
            return Err(MlError::InvalidParameter(format!(
                "n_components {n_components} outside 1..={d}"
            )));
        }
        if x.len() < 2 {
            return Err(MlError::EmptyInput("pca needs >= 2 rows"));
        }
        let mut means = vec![0.0; d];
        for row in x {
            for (m, &v) in means.iter_mut().zip(row) {
                *m += v;
            }
        }
        means.iter_mut().for_each(|m| *m /= x.len() as f64);
        let cov = linalg::covariance(x)?;
        let total_variance: f64 = (0..d).map(|i| cov[i][i]).sum();
        let (values, vectors) = linalg::jacobi_eigen(cov, 50)?;
        Ok(Pca {
            n_components,
            means,
            components: vectors.into_iter().take(n_components).collect(),
            explained_variance: values
                .into_iter()
                .take(n_components)
                .map(|v| v.max(0.0))
                .collect(),
            total_variance,
        })
    }

    /// Number of components kept.
    pub fn n_components(&self) -> usize {
        self.n_components
    }

    /// Variance explained per kept component, descending.
    pub fn explained_variance(&self) -> &[f64] {
        &self.explained_variance
    }

    /// Fraction of total variance captured by the kept components.
    pub fn explained_variance_ratio(&self) -> f64 {
        if self.total_variance == 0.0 {
            return 0.0;
        }
        self.explained_variance.iter().sum::<f64>() / self.total_variance
    }

    /// Project one row into component space.
    pub fn transform_one(&self, row: &[f64]) -> Result<Vec<f64>> {
        if row.len() != self.means.len() {
            return Err(MlError::DimensionMismatch {
                expected: self.means.len(),
                got: row.len(),
            });
        }
        let centred: Vec<f64> = row.iter().zip(&self.means).map(|(v, m)| v - m).collect();
        Ok(self.components.iter().map(|c| dot(c, &centred)).collect())
    }

    /// Project many rows.
    pub fn transform(&self, x: &[Vec<f64>]) -> Result<Vec<Vec<f64>>> {
        x.iter().map(|r| self.transform_one(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Points on the line y = 2x with tiny orthogonal noise.
    fn line_cloud() -> Vec<Vec<f64>> {
        (0..50)
            .map(|i| {
                let t = i as f64 / 10.0;
                let noise = if i % 2 == 0 { 0.01 } else { -0.01 };
                vec![t - 2.5 + noise * 2.0, 2.0 * (t - 2.5) - noise]
            })
            .collect()
    }

    #[test]
    fn first_component_captures_line() {
        let x = line_cloud();
        let pca = Pca::fit(&x, 1).unwrap();
        assert!(
            pca.explained_variance_ratio() > 0.999,
            "line is 1-dimensional"
        );
        // Moving by (1, 2) in feature space moves sqrt(5) along the first
        // component (up to sign); differencing cancels the centring.
        let a = pca.transform_one(&[1.0, 2.0]).unwrap()[0];
        let b = pca.transform_one(&[0.0, 0.0]).unwrap()[0];
        assert!(((a - b).abs() - 5.0f64.sqrt()).abs() < 0.01);
    }

    #[test]
    fn full_rank_keeps_all_variance() {
        let x = vec![
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![-1.0, 0.0],
            vec![0.0, -1.0],
        ];
        let pca = Pca::fit(&x, 2).unwrap();
        assert!((pca.explained_variance_ratio() - 1.0).abs() < 1e-9);
        assert_eq!(pca.n_components(), 2);
    }

    #[test]
    fn variances_descending() {
        let x = line_cloud();
        let pca = Pca::fit(&x, 2).unwrap();
        let ev = pca.explained_variance();
        assert!(ev[0] >= ev[1]);
    }

    #[test]
    fn transform_centres_data() {
        let x = vec![vec![10.0, 0.0], vec![12.0, 0.0], vec![14.0, 0.0]];
        let pca = Pca::fit(&x, 1).unwrap();
        let proj = pca.transform(&x).unwrap();
        let mean: f64 = proj.iter().map(|p| p[0]).sum::<f64>() / 3.0;
        assert!(mean.abs() < 1e-9, "projections are centred");
    }

    #[test]
    fn parameter_validation() {
        let x = vec![vec![0.0, 1.0], vec![1.0, 0.0]];
        assert!(Pca::fit(&x, 0).is_err());
        assert!(Pca::fit(&x, 3).is_err());
        assert!(Pca::fit(&x[..1], 1).is_err());
    }

    #[test]
    fn transform_dimension_checked() {
        let x = vec![vec![0.0, 1.0], vec![1.0, 0.0], vec![1.0, 1.0]];
        let pca = Pca::fit(&x, 1).unwrap();
        assert!(pca.transform_one(&[0.0]).is_err());
    }
}
