//! Error types for the ML substrate.

use std::fmt;

/// Errors produced while fitting or applying models.
#[derive(Debug, Clone, PartialEq)]
pub enum MlError {
    /// Training or prediction input was empty.
    EmptyInput(&'static str),
    /// Features and targets (or two matrices) disagree in length.
    LengthMismatch { expected: usize, got: usize },
    /// Rows disagree in feature dimensionality.
    DimensionMismatch { expected: usize, got: usize },
    /// A hyper-parameter was outside its valid domain.
    InvalidParameter(String),
    /// The model was used before fitting.
    NotFitted(&'static str),
    /// A numerical routine failed (singular matrix, divergence).
    Numerical(String),
    /// Underlying data error.
    Data(matilda_data::DataError),
    /// The fit or evaluation was cooperatively cancelled at the named
    /// checkpoint site because the active deadline budget expired.
    Preempted(String),
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::EmptyInput(what) => write!(f, "empty input: {what}"),
            MlError::LengthMismatch { expected, got } => {
                write!(f, "length mismatch: expected {expected}, got {got}")
            }
            MlError::DimensionMismatch { expected, got } => {
                write!(
                    f,
                    "dimension mismatch: expected {expected} features, got {got}"
                )
            }
            MlError::InvalidParameter(message) => write!(f, "invalid parameter: {message}"),
            MlError::NotFitted(model) => write!(f, "{model} used before fit"),
            MlError::Numerical(message) => write!(f, "numerical failure: {message}"),
            MlError::Data(e) => write!(f, "data error: {e}"),
            MlError::Preempted(site) => {
                write!(f, "preempted at {site}: deadline budget exhausted")
            }
        }
    }
}

impl std::error::Error for MlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MlError::Data(e) => Some(e),
            _ => None,
        }
    }
}

impl From<matilda_data::DataError> for MlError {
    fn from(e: matilda_data::DataError) -> Self {
        match e {
            // A preempted data read stays a preemption, not a data fault,
            // so the executor can turn it into a partial result.
            matilda_data::DataError::Preempted(site) => MlError::Preempted(site),
            other => MlError::Data(other),
        }
    }
}

impl From<matilda_resilience::cancel::Preempted> for MlError {
    fn from(p: matilda_resilience::cancel::Preempted) -> Self {
        MlError::Preempted(p.site().to_string())
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, MlError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(MlError::EmptyInput("x").to_string().contains("empty"));
        assert!(MlError::NotFitted("knn").to_string().contains("before fit"));
        assert!(MlError::DimensionMismatch {
            expected: 3,
            got: 2
        }
        .to_string()
        .contains("3"));
    }

    #[test]
    fn from_data_error_keeps_source() {
        let e: MlError = matilda_data::DataError::Empty("frame").into();
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn preemption_lifts_unwrapped_through_error_layers() {
        let e: MlError = matilda_data::DataError::Preempted("data.csv.batch".into()).into();
        assert_eq!(e, MlError::Preempted("data.csv.batch".into()));
        let e: MlError = matilda_resilience::cancel::Preempted::at("ml.fit.mlp").into();
        assert_eq!(e, MlError::Preempted("ml.fit.mlp".into()));
        assert!(e.to_string().contains("ml.fit.mlp"));
    }
}
