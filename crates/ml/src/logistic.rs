//! Multinomial logistic regression trained by batch gradient descent.

use crate::dataset::check_xy;
use crate::error::{MlError, Result};
use crate::linalg::dot;
use crate::model::Classifier;

/// Softmax over raw scores, numerically stabilized.
fn softmax(scores: &[f64]) -> Vec<f64> {
    let max = scores.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = scores.iter().map(|s| (s - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// Multinomial (softmax) logistic regression with L2 regularization.
///
/// One weight vector + bias per class, trained by full-batch gradient
/// descent on the cross-entropy loss. Deterministic: weights start at zero.
#[derive(Debug, Clone)]
pub struct LogisticRegression {
    learning_rate: f64,
    epochs: usize,
    l2: f64,
    /// Per-class weight vectors; empty before fit.
    weights: Vec<Vec<f64>>,
    /// Per-class biases.
    biases: Vec<f64>,
}

impl LogisticRegression {
    /// A new model; `l2` is the L2 penalty coefficient.
    pub fn new(learning_rate: f64, epochs: usize, l2: f64) -> Self {
        Self {
            learning_rate,
            epochs,
            l2,
            weights: Vec::new(),
            biases: Vec::new(),
        }
    }

    fn scores(&self, row: &[f64]) -> Vec<f64> {
        self.weights
            .iter()
            .zip(&self.biases)
            .map(|(w, b)| dot(w, row) + b)
            .collect()
    }
}

impl Classifier for LogisticRegression {
    fn fit(&mut self, x: &[Vec<f64>], y: &[usize]) -> Result<()> {
        let d = check_xy(x, y.len())?;
        if self.learning_rate <= 0.0 {
            return Err(MlError::InvalidParameter(
                "learning_rate must be positive".into(),
            ));
        }
        if self.epochs == 0 {
            return Err(MlError::InvalidParameter("epochs must be positive".into()));
        }
        let k = y.iter().copied().max().map_or(0, |m| m + 1);
        if k < 2 {
            return Err(MlError::InvalidParameter("need at least 2 classes".into()));
        }
        let mut timer = matilda_telemetry::profile::phase("ml.fit.logistic");
        timer.field("rows", x.len()).field("epochs", self.epochs);
        let n = x.len() as f64;
        self.weights = vec![vec![0.0; d]; k];
        self.biases = vec![0.0; k];
        let mut grad_w = vec![vec![0.0; d]; k];
        let mut grad_b = vec![0.0; k];
        for _ in 0..self.epochs {
            crate::hooks::iteration("ml.fit.logistic")?;
            for g in grad_w.iter_mut() {
                g.iter_mut().for_each(|v| *v = 0.0);
            }
            grad_b.iter_mut().for_each(|v| *v = 0.0);
            for (row, &label) in x.iter().zip(y) {
                let p = softmax(&self.scores(row));
                for c in 0..k {
                    let err = p[c] - f64::from(u8::from(c == label));
                    for (g, &v) in grad_w[c].iter_mut().zip(row) {
                        *g += err * v;
                    }
                    grad_b[c] += err;
                }
            }
            for c in 0..k {
                for (w, g) in self.weights[c].iter_mut().zip(&grad_w[c]) {
                    *w -= self.learning_rate * (g / n + self.l2 * *w);
                }
                self.biases[c] -= self.learning_rate * grad_b[c] / n;
            }
        }
        matilda_telemetry::metrics::global().observe_duration("ml.fit_seconds", timer.close());
        Ok(())
    }

    fn predict_one(&self, row: &[f64]) -> Result<usize> {
        let p = self.predict_proba_one(row)?;
        Ok(p.iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .expect("non-empty probabilities"))
    }

    fn predict_proba_one(&self, row: &[f64]) -> Result<Vec<f64>> {
        if self.weights.is_empty() {
            return Err(MlError::NotFitted("logistic regression"));
        }
        if row.len() != self.weights[0].len() {
            return Err(MlError::DimensionMismatch {
                expected: self.weights[0].len(),
                got: row.len(),
            });
        }
        Ok(softmax(&self.scores(row)))
    }

    fn n_classes(&self) -> usize {
        self.weights.len()
    }

    fn name(&self) -> &'static str {
        "logistic"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn separable() -> (Vec<Vec<f64>>, Vec<usize>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..20 {
            let t = i as f64 / 20.0;
            x.push(vec![t, t + 0.5]);
            y.push(0);
            x.push(vec![t + 3.0, t + 3.5]);
            y.push(1);
        }
        (x, y)
    }

    #[test]
    fn slow_epochs_preempt_on_the_virtual_clock() {
        use matilda_resilience::{
            cancel, fault, Clock, DeadlineBudget, FaultKind, FaultPlan, TestClock,
        };
        use std::sync::Arc;
        use std::time::Duration;
        let clock = Arc::new(TestClock::new());
        // Each epoch costs 1 ms of virtual time; a 10 ms budget stops the
        // 200-epoch fit at the 11th epoch's checkpoint, exactly on budget.
        let _faults = fault::activate_with_clock(
            FaultPlan::new(1).inject(
                "ml.fit.logistic",
                FaultKind::Delay(Duration::from_millis(1)),
                1.0,
            ),
            clock.clone(),
        );
        let budget = DeadlineBudget::start(clock.as_ref(), Duration::from_millis(10));
        let _scope = cancel::activate_budget(budget, clock.clone());
        let (x, y) = separable();
        let mut m = LogisticRegression::new(0.5, 200, 0.0);
        let err = m.fit(&x, &y).unwrap_err();
        assert_eq!(err, MlError::Preempted("ml.fit.logistic".into()));
        assert_eq!(clock.now(), Duration::from_millis(10), "no overshoot");
    }

    #[test]
    fn zero_budget_preempts_before_the_first_epoch() {
        use matilda_resilience::{cancel, DeadlineBudget, TestClock};
        use std::sync::Arc;
        use std::time::Duration;
        let clock = Arc::new(TestClock::new());
        let budget = DeadlineBudget::start(clock.as_ref(), Duration::ZERO);
        let scope = cancel::activate_budget(budget, clock);
        let (x, y) = separable();
        let mut m = LogisticRegression::new(0.5, 200, 0.0);
        let err = m.fit(&x, &y).unwrap_err();
        assert_eq!(err, MlError::Preempted("ml.fit.logistic".into()));
        assert_eq!(scope.checks(), 1, "preempted at the very first iteration");
    }

    #[test]
    fn softmax_sums_to_one() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[2] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn softmax_large_scores_stable() {
        let p = softmax(&[1000.0, 1001.0]);
        assert!(p.iter().all(|v| v.is_finite()));
        assert!(p[1] > p[0]);
    }

    #[test]
    fn learns_separable_binary() {
        let (x, y) = separable();
        let mut m = LogisticRegression::new(0.5, 300, 0.0);
        m.fit(&x, &y).unwrap();
        let preds = m.predict(&x).unwrap();
        let acc = preds.iter().zip(&y).filter(|(p, t)| p == t).count() as f64 / y.len() as f64;
        assert!(acc > 0.95, "accuracy {acc}");
    }

    #[test]
    fn three_class_blobs() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..15 {
            let t = i as f64 * 0.01;
            x.push(vec![0.0 + t, 0.0]);
            y.push(0);
            x.push(vec![5.0 + t, 0.0]);
            y.push(1);
            x.push(vec![2.5 + t, 5.0]);
            y.push(2);
        }
        let mut m = LogisticRegression::new(0.5, 500, 0.0);
        m.fit(&x, &y).unwrap();
        assert_eq!(m.n_classes(), 3);
        assert_eq!(m.predict_one(&[0.0, 0.0]).unwrap(), 0);
        assert_eq!(m.predict_one(&[5.0, 0.0]).unwrap(), 1);
        assert_eq!(m.predict_one(&[2.5, 5.0]).unwrap(), 2);
    }

    #[test]
    fn probabilities_valid() {
        let (x, y) = separable();
        let mut m = LogisticRegression::new(0.5, 100, 0.01);
        m.fit(&x, &y).unwrap();
        let p = m.predict_proba_one(&[0.0, 0.5]).unwrap();
        assert_eq!(p.len(), 2);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p.iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn l2_shrinks_confidence() {
        let (x, y) = separable();
        let mut free = LogisticRegression::new(0.5, 300, 0.0);
        free.fit(&x, &y).unwrap();
        let mut reg = LogisticRegression::new(0.5, 300, 1.0);
        reg.fit(&x, &y).unwrap();
        let pf = free.predict_proba_one(&x[0]).unwrap()[0];
        let pr = reg.predict_proba_one(&x[0]).unwrap()[0];
        assert!(
            pf > pr,
            "regularized model should be less confident ({pf} vs {pr})"
        );
    }

    #[test]
    fn parameter_validation() {
        let (x, y) = separable();
        assert!(LogisticRegression::new(0.0, 10, 0.0).fit(&x, &y).is_err());
        assert!(LogisticRegression::new(0.1, 0, 0.0).fit(&x, &y).is_err());
        assert!(LogisticRegression::new(0.1, 10, 0.0)
            .fit(&x, &[0; 40])
            .is_err());
    }

    #[test]
    fn not_fitted_errors() {
        let m = LogisticRegression::new(0.1, 10, 0.0);
        assert!(m.predict_proba_one(&[1.0]).is_err());
    }
}
