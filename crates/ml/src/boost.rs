//! Gradient boosting over shallow regression trees.
//!
//! Regression uses squared loss: each round fits a tree to the residuals.
//! Classification wraps the regression ensemble with the logistic link on
//! ±1-coded binary targets (one-vs-rest for multiclass).

use crate::dataset::check_xy;
use crate::error::{MlError, Result};
use crate::model::{Classifier, Regressor};
use crate::tree::{grow_tree, Node};

fn validate(n_rounds: usize, learning_rate: f64, max_depth: usize) -> Result<()> {
    if n_rounds == 0 {
        return Err(MlError::InvalidParameter("n_rounds must be >= 1".into()));
    }
    if learning_rate <= 0.0 || learning_rate > 1.0 {
        return Err(MlError::InvalidParameter(format!(
            "learning_rate {learning_rate} outside (0,1]"
        )));
    }
    if max_depth == 0 {
        return Err(MlError::InvalidParameter("max_depth must be >= 1".into()));
    }
    Ok(())
}

fn leaf_value(node: &Node, row: &[f64]) -> f64 {
    match node {
        Node::Leaf { value, .. } => *value,
        Node::Split {
            feature,
            threshold,
            left,
            right,
        } => {
            if row[*feature] < *threshold {
                leaf_value(left, row)
            } else {
                leaf_value(right, row)
            }
        }
    }
}

/// The additive ensemble shared by the regressor and classifier.
#[derive(Debug, Clone, Default)]
struct Ensemble {
    base: f64,
    learning_rate: f64,
    trees: Vec<Node>,
}

impl Ensemble {
    fn fit(
        x: &[Vec<f64>],
        y: &[f64],
        n_rounds: usize,
        learning_rate: f64,
        max_depth: usize,
    ) -> Result<Ensemble> {
        let n = x.len();
        let base = y.iter().sum::<f64>() / n as f64;
        let indices: Vec<usize> = (0..n).collect();
        let features: Vec<usize> = (0..x[0].len()).collect();
        let mut current: Vec<f64> = vec![base; n];
        let mut trees = Vec::with_capacity(n_rounds);
        for _ in 0..n_rounds {
            crate::hooks::iteration("ml.fit.boost")?;
            let residuals: Vec<f64> = y.iter().zip(&current).map(|(t, c)| t - c).collect();
            let tree = grow_tree(x, &residuals, &indices, &features, None, max_depth, 2);
            for (c, row) in current.iter_mut().zip(x) {
                *c += learning_rate * leaf_value(&tree, row);
            }
            trees.push(tree);
        }
        Ok(Ensemble {
            base,
            learning_rate,
            trees,
        })
    }

    fn predict(&self, row: &[f64]) -> f64 {
        self.base + self.learning_rate * self.trees.iter().map(|t| leaf_value(t, row)).sum::<f64>()
    }
}

/// Gradient-boosted regression trees with squared loss.
#[derive(Debug, Clone)]
pub struct GradientBoostingRegressor {
    n_rounds: usize,
    learning_rate: f64,
    max_depth: usize,
    ensemble: Option<Ensemble>,
    n_features: usize,
}

impl GradientBoostingRegressor {
    /// `n_rounds` boosting rounds of depth-`max_depth` trees, each scaled by
    /// `learning_rate`.
    pub fn new(n_rounds: usize, learning_rate: f64, max_depth: usize) -> Self {
        Self {
            n_rounds,
            learning_rate,
            max_depth,
            ensemble: None,
            n_features: 0,
        }
    }

    /// Number of fitted boosting rounds.
    pub fn n_fitted_rounds(&self) -> usize {
        self.ensemble.as_ref().map_or(0, |e| e.trees.len())
    }
}

impl Regressor for GradientBoostingRegressor {
    fn fit(&mut self, x: &[Vec<f64>], y: &[f64]) -> Result<()> {
        let mut span = matilda_telemetry::profile::phase("ml.fit.boost");
        span.field("rows", x.len()).field("rounds", self.n_rounds);
        let d = check_xy(x, y.len())?;
        validate(self.n_rounds, self.learning_rate, self.max_depth)?;
        self.ensemble = Some(Ensemble::fit(
            x,
            y,
            self.n_rounds,
            self.learning_rate,
            self.max_depth,
        )?);
        self.n_features = d;
        matilda_telemetry::metrics::global().observe_duration("ml.fit_seconds", span.close());
        Ok(())
    }

    fn predict_one(&self, row: &[f64]) -> Result<f64> {
        let e = self
            .ensemble
            .as_ref()
            .ok_or(MlError::NotFitted("gradient boosting"))?;
        if row.len() != self.n_features {
            return Err(MlError::DimensionMismatch {
                expected: self.n_features,
                got: row.len(),
            });
        }
        Ok(e.predict(row))
    }

    fn name(&self) -> &'static str {
        "boost"
    }
}

/// Boosted classifier: one regression ensemble per class on ±1 targets,
/// probabilities via softmax over the ensemble margins.
#[derive(Debug, Clone)]
pub struct GradientBoostingClassifier {
    n_rounds: usize,
    learning_rate: f64,
    max_depth: usize,
    ensembles: Vec<Ensemble>,
    n_features: usize,
}

impl GradientBoostingClassifier {
    /// See [`GradientBoostingRegressor::new`].
    pub fn new(n_rounds: usize, learning_rate: f64, max_depth: usize) -> Self {
        Self {
            n_rounds,
            learning_rate,
            max_depth,
            ensembles: Vec::new(),
            n_features: 0,
        }
    }
}

impl Classifier for GradientBoostingClassifier {
    fn fit(&mut self, x: &[Vec<f64>], y: &[usize]) -> Result<()> {
        let mut span = matilda_telemetry::profile::phase("ml.fit.boost");
        span.field("rows", x.len()).field("rounds", self.n_rounds);
        let d = check_xy(x, y.len())?;
        validate(self.n_rounds, self.learning_rate, self.max_depth)?;
        let k = y.iter().copied().max().map_or(0, |m| m + 1);
        if k < 2 {
            return Err(MlError::InvalidParameter("need at least 2 classes".into()));
        }
        self.ensembles.clear();
        for c in 0..k {
            let targets: Vec<f64> = y
                .iter()
                .map(|&label| if label == c { 1.0 } else { -1.0 })
                .collect();
            self.ensembles.push(Ensemble::fit(
                x,
                &targets,
                self.n_rounds,
                self.learning_rate,
                self.max_depth,
            )?);
        }
        self.n_features = d;
        matilda_telemetry::metrics::global().observe_duration("ml.fit_seconds", span.close());
        Ok(())
    }

    fn predict_one(&self, row: &[f64]) -> Result<usize> {
        let p = self.predict_proba_one(row)?;
        Ok(p.iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .expect("fitted ensemble has classes"))
    }

    fn predict_proba_one(&self, row: &[f64]) -> Result<Vec<f64>> {
        if self.ensembles.is_empty() {
            return Err(MlError::NotFitted("gradient boosting"));
        }
        if row.len() != self.n_features {
            return Err(MlError::DimensionMismatch {
                expected: self.n_features,
                got: row.len(),
            });
        }
        let margins: Vec<f64> = self.ensembles.iter().map(|e| e.predict(row)).collect();
        let max = margins.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = margins.iter().map(|m| (m - max).exp()).collect();
        let sum: f64 = exps.iter().sum();
        Ok(exps.into_iter().map(|e| e / sum).collect())
    }

    fn n_classes(&self) -> usize {
        self.ensembles.len()
    }

    fn name(&self) -> &'static str {
        "boost"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regression_improves_with_rounds() {
        let x: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64 / 10.0]).collect();
        let y: Vec<f64> = x.iter().map(|r| r[0] * r[0]).collect();
        let mut weak = GradientBoostingRegressor::new(1, 0.5, 2);
        weak.fit(&x, &y).unwrap();
        let mut strong = GradientBoostingRegressor::new(80, 0.2, 2);
        strong.fit(&x, &y).unwrap();
        let mse_weak = crate::metrics::mse(&y, &weak.predict(&x).unwrap()).unwrap();
        let mse_strong = crate::metrics::mse(&y, &strong.predict(&x).unwrap()).unwrap();
        assert!(
            mse_strong < mse_weak / 10.0,
            "weak {mse_weak} vs strong {mse_strong}"
        );
        assert_eq!(strong.n_fitted_rounds(), 80);
    }

    #[test]
    fn regression_base_is_mean_for_one_stump() {
        let x = vec![vec![0.0], vec![1.0]];
        let y = vec![2.0, 4.0];
        let mut m = GradientBoostingRegressor::new(1, 1.0, 1);
        m.fit(&x, &y).unwrap();
        // Base = 3, one stump fits residuals -1/+1 exactly at depth 1.
        assert!((m.predict_one(&[0.0]).unwrap() - 2.0).abs() < 1e-9);
        assert!((m.predict_one(&[1.0]).unwrap() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn classifier_learns_binary() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..40 {
            x.push(vec![i as f64]);
            y.push(usize::from(i >= 20));
        }
        let mut m = GradientBoostingClassifier::new(20, 0.3, 2);
        m.fit(&x, &y).unwrap();
        let preds = m.predict(&x).unwrap();
        let acc = preds.iter().zip(&y).filter(|(p, t)| p == t).count() as f64 / y.len() as f64;
        assert!(acc > 0.95, "accuracy {acc}");
        assert_eq!(m.n_classes(), 2);
    }

    #[test]
    fn classifier_three_classes() {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..60 {
            x.push(vec![i as f64]);
            y.push(i / 20);
        }
        let mut m = GradientBoostingClassifier::new(25, 0.3, 2);
        m.fit(&x, &y).unwrap();
        assert_eq!(m.predict_one(&[5.0]).unwrap(), 0);
        assert_eq!(m.predict_one(&[30.0]).unwrap(), 1);
        assert_eq!(m.predict_one(&[55.0]).unwrap(), 2);
    }

    #[test]
    fn probabilities_normalized() {
        let x = vec![vec![0.0], vec![1.0], vec![2.0], vec![3.0]];
        let y = vec![0, 0, 1, 1];
        let mut m = GradientBoostingClassifier::new(5, 0.5, 1);
        m.fit(&x, &y).unwrap();
        let p = m.predict_proba_one(&[1.5]).unwrap();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn parameter_validation() {
        let x = vec![vec![0.0], vec![1.0]];
        assert!(GradientBoostingRegressor::new(0, 0.1, 2)
            .fit(&x, &[0.0, 1.0])
            .is_err());
        assert!(GradientBoostingRegressor::new(5, 0.0, 2)
            .fit(&x, &[0.0, 1.0])
            .is_err());
        assert!(GradientBoostingRegressor::new(5, 1.5, 2)
            .fit(&x, &[0.0, 1.0])
            .is_err());
        assert!(GradientBoostingRegressor::new(5, 0.1, 0)
            .fit(&x, &[0.0, 1.0])
            .is_err());
    }

    #[test]
    fn not_fitted_errors() {
        assert!(GradientBoostingRegressor::new(1, 0.5, 1)
            .predict_one(&[0.0])
            .is_err());
        assert!(GradientBoostingClassifier::new(1, 0.5, 1)
            .predict_proba_one(&[0.0])
            .is_err());
    }
}
