//! The step-by-step dialogue state machine.
//!
//! The dialogue walks the user through the pipeline phases, presenting one
//! suggestion at a time for adoption or rejection, exactly as the paper's
//! platform does. It is pure conversational logic: executing pipelines and
//! producing creative suggestions are the platform's job, surfaced here as
//! [`DialogueEvent`]s.

use crate::error::{ConversationError, Result};
use crate::feedback::apply_to_draft;
use crate::intent::{parse, Intent};
use crate::profile::UserProfile;
use crate::suggest::{suggestions_for, Suggestion};
use crate::transcript::Transcript;
use matilda_data::DataFrame;
use matilda_pipeline::prelude::*;
use matilda_telemetry as telemetry;

/// Where the dialogue currently is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DialogueState {
    /// Waiting for the user to state a goal.
    AwaitGoal,
    /// Walking a phase's suggestions.
    InPhase(Phase),
    /// Design complete; waiting for a run/finish command.
    ReadyToRun,
    /// Session over.
    Closed,
}

impl DialogueState {
    /// Stable name for provenance.
    pub fn name(&self) -> &'static str {
        match self {
            DialogueState::AwaitGoal => "await_goal",
            DialogueState::InPhase(_) => "in_phase",
            DialogueState::ReadyToRun => "ready_to_run",
            DialogueState::Closed => "closed",
        }
    }
}

/// Things the platform must act on.
#[derive(Debug, Clone, PartialEq)]
pub enum DialogueEvent {
    /// The user fixed the analysis goal.
    GoalSet {
        /// The resulting task.
        task: Task,
    },
    /// The design entered a new phase.
    PhaseEntered(Phase),
    /// A suggestion was decided.
    SuggestionDecided {
        /// The suggestion in question.
        suggestion: Suggestion,
        /// Whether the user adopted it.
        adopted: bool,
    },
    /// The user asked for something creative; the platform should inject a
    /// creative suggestion via [`Dialogue::inject_suggestion`].
    SurpriseRequested,
    /// The user asked to execute the current draft.
    RunRequested {
        /// The design to execute.
        spec: PipelineSpec,
    },
    /// The user asked which features drive the result; the platform should
    /// compute feature importance for the latest executed design.
    DriversRequested,
    /// The session ended.
    Finished,
}

/// The platform's reply to one user message.
#[derive(Debug, Clone, PartialEq)]
pub struct DialogueResponse {
    /// Text shown to the user.
    pub reply: String,
    /// Events the platform must process.
    pub events: Vec<DialogueEvent>,
}

/// The dialogue engine.
#[derive(Debug, Clone)]
pub struct Dialogue {
    user: UserProfile,
    columns: Vec<(String, bool)>,
    data_profile: DataProfile,
    frame_rows: usize,
    data_digest: String,
    state: DialogueState,
    draft: Option<PipelineSpec>,
    pending: Vec<Suggestion>,
    transcript: Transcript,
    next_suggestion_id: usize,
    decided: Vec<(Suggestion, bool)>,
}

impl Dialogue {
    /// Start a dialogue for `user` over `frame`.
    pub fn new(user: UserProfile, frame: &DataFrame) -> Self {
        let columns: Vec<(String, bool)> = frame
            .schema()
            .fields()
            .iter()
            .map(|f| (f.name.clone(), f.dtype.is_numeric()))
            .collect();
        // Until a goal is set, profile with no target.
        let data_profile = DataProfile::from_frame(frame, "", true);
        let data_digest = Self::digest(frame);
        let mut transcript = Transcript::new();
        let opening = format!(
            "Hello {}! I can help you explore your {} data and design a study. \
             What would you like to predict? (Mention a column in quotes, e.g. 'price'.)",
            user.name, user.domain
        );
        transcript.matilda(&opening);
        Self {
            user,
            columns,
            data_profile,
            frame_rows: frame.n_rows(),
            data_digest,
            state: DialogueState::AwaitGoal,
            draft: None,
            pending: Vec::new(),
            transcript,
            next_suggestion_id: 0,
            decided: Vec::new(),
        }
    }

    /// A compact human-readable overview of the frame, computed once.
    fn digest(frame: &DataFrame) -> String {
        let nulls = frame.null_count();
        let mut parts = vec![format!(
            "{} rows and {} columns{}",
            frame.n_rows(),
            frame.n_cols(),
            if nulls > 0 {
                format!(" ({nulls} missing values)")
            } else {
                String::new()
            }
        )];
        for (name, summary) in matilda_data::stats::describe(frame).into_iter().take(4) {
            parts.push(format!(
                "{name}: typically {:.2} (ranges {:.2} to {:.2})",
                summary.median, summary.min, summary.max
            ));
        }
        let categorical: Vec<String> = frame
            .schema()
            .non_numeric_names()
            .iter()
            .take(3)
            .map(|n| {
                let distinct = frame.column(n).map(|c| c.n_unique()).unwrap_or(0);
                format!("{n}: {distinct} kinds")
            })
            .collect();
        if !categorical.is_empty() {
            parts.push(categorical.join("; "));
        }
        parts.join(". ")
    }

    /// The data overview shown on request ("show me the data").
    pub fn data_overview(&self) -> &str {
        &self.data_digest
    }

    /// The opening line shown before any user input.
    pub fn opening(&self) -> &str {
        &self.transcript.turns()[0].text
    }

    /// Current state.
    pub fn state(&self) -> DialogueState {
        self.state
    }

    /// The working design, once a goal is set.
    pub fn draft(&self) -> Option<&PipelineSpec> {
        self.draft.as_ref()
    }

    /// Full transcript so far.
    pub fn transcript(&self) -> &Transcript {
        &self.transcript
    }

    /// All decided suggestions as `(suggestion, adopted)`.
    pub fn decisions(&self) -> &[(Suggestion, bool)] {
        &self.decided
    }

    /// The suggestion currently awaiting a decision.
    pub fn pending_suggestion(&self) -> Option<&Suggestion> {
        self.pending.first()
    }

    fn fresh_id(&mut self) -> String {
        self.next_suggestion_id += 1;
        format!("sug-{}", self.next_suggestion_id)
    }

    /// Put a (typically creative) suggestion at the front of the queue.
    pub fn inject_suggestion(&mut self, mut suggestion: Suggestion) -> Result<()> {
        match self.state {
            DialogueState::InPhase(_) | DialogueState::ReadyToRun => {
                suggestion.id = self.fresh_id();
                if self.state == DialogueState::ReadyToRun {
                    // Re-open the phase the suggestion belongs to.
                    self.state = DialogueState::InPhase(suggestion.phase);
                }
                self.pending.insert(0, suggestion);
                Ok(())
            }
            _ => Err(ConversationError::BadState {
                state: self.state.name(),
                action: "inject a suggestion".into(),
            }),
        }
    }

    fn enter_phase(&mut self, phase: Phase, events: &mut Vec<DialogueEvent>) -> String {
        self.state = DialogueState::InPhase(phase);
        events.push(DialogueEvent::PhaseEntered(phase));
        let mut counter = {
            let mut n = self.next_suggestion_id;
            move || {
                n += 1;
                format!("sug-{n}")
            }
        };
        let mut pending = suggestions_for(phase, &self.data_profile, &self.user, &mut counter);
        self.next_suggestion_id += pending.len();
        // The Explore phase is informational: no adoption question.
        if phase == Phase::Explore {
            pending.clear();
        }
        self.pending = pending;
        match self.pending.first() {
            Some(s) => format!(
                "We are now in the '{phase}' step: {}.\nSuggestion: {} — shall we? (yes/no)",
                phase.describe(),
                s.text
            ),
            None => {
                // Nothing to ask: advance immediately.
                match phase.next() {
                    Some(next) if phase != Phase::Assess => {
                        let intro = format!(
                            "I took a look at your data: {} rows, {} columns. ",
                            self.frame_rows,
                            self.columns.len()
                        );
                        let rest = self.enter_phase(next, events);
                        format!("{intro}{rest}")
                    }
                    _ => self.finish_design(),
                }
            }
        }
    }

    fn finish_design(&mut self) -> String {
        self.state = DialogueState::ReadyToRun;
        let summary = self
            .draft
            .as_ref()
            .map(|d| d.summary())
            .unwrap_or_else(|| "an empty design".to_string());
        format!(
            "The design is ready: {summary}. Say 'run' to execute it, \
             'surprise me' for a creative alternative, or 'done' to stop."
        )
    }

    fn advance_after_decision(&mut self, events: &mut Vec<DialogueEvent>) -> String {
        if let Some(next) = self.pending.first() {
            return format!("Next suggestion: {} — shall we? (yes/no)", next.text);
        }
        // Round exhausted: move to the next phase.
        let DialogueState::InPhase(phase) = self.state else {
            return self.finish_design();
        };
        match phase.next() {
            Some(next) => self.enter_phase(next, events),
            None => self.finish_design(),
        }
    }

    fn decide(&mut self, adopted: bool, events: &mut Vec<DialogueEvent>) -> Result<String> {
        let suggestion = match self.pending.first().cloned() {
            Some(s) => s,
            None => {
                return Err(ConversationError::BadState {
                    state: self.state.name(),
                    action: "decide with no pending suggestion".into(),
                })
            }
        };
        self.pending.remove(0);
        if adopted {
            if let Some(draft) = self.draft.as_mut() {
                apply_to_draft(draft, &suggestion)?;
            }
            // Single-choice phases (fragment/train/assess): adopting one
            // option closes the round.
            if matches!(
                suggestion.phase,
                Phase::Fragment | Phase::Train | Phase::Assess
            ) {
                self.pending.clear();
            }
        }
        telemetry::log::debug("conversation.dialogue", "suggestion decided")
            .field("suggestion_id", suggestion.id.as_str())
            .field("phase", suggestion.phase.name())
            .field("adopted", adopted)
            .field("creative", suggestion.creative)
            .emit();
        self.decided.push((suggestion.clone(), adopted));
        events.push(DialogueEvent::SuggestionDecided {
            suggestion,
            adopted,
        });
        let ack = if adopted {
            "Done. "
        } else {
            "No problem, skipping that. "
        };
        Ok(format!("{ack}{}", self.advance_after_decision(events)))
    }

    fn set_goal(&mut self, target: Option<String>, events: &mut Vec<DialogueEvent>) -> String {
        let Some(target) = target else {
            let numeric: Vec<&str> = self
                .columns
                .iter()
                .filter(|(_, numeric)| *numeric)
                .map(|(n, _)| n.as_str())
                .collect();
            return format!(
                "Which column should we predict? Your options include: {}. \
                 Please name one in quotes.",
                numeric.join(", ")
            );
        };
        let Some((name, numeric)) = self.columns.iter().find(|(n, _)| *n == target).cloned() else {
            return format!(
                "I cannot find a column called '{target}'. The columns are: {}.",
                self.columns
                    .iter()
                    .map(|(n, _)| n.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            );
        };
        let task = if numeric {
            Task::Regression {
                target: name.clone(),
            }
        } else {
            Task::Classification {
                target: name.clone(),
            }
        };
        self.data_profile.classification = task.is_classification();
        let mut draft = if task.is_classification() {
            PipelineSpec::default_classification(&name)
        } else {
            PipelineSpec::default_regression(&name)
        };
        draft.prep.clear(); // the conversation will build the prep chain
        self.draft = Some(draft);
        events.push(DialogueEvent::GoalSet { task: task.clone() });
        let kind = if task.is_classification() {
            "tell categories apart"
        } else {
            "predict a number"
        };
        let rest = self.enter_phase(Phase::Explore, events);
        format!("Understood — we will {kind} for '{name}'. {rest}")
    }

    fn explain(&self) -> String {
        if let Some(s) = self.pending.first() {
            return match self.user.expertise.technical_language() {
                true => format!(
                    "This suggestion belongs to the '{}' phase ({}). It is on the table \
                     because of your data's characteristics.",
                    s.phase,
                    s.phase.describe()
                ),
                false => format!(
                    "We are deciding how to {}. This step helps make the final answer \
                     about your {} question trustworthy.",
                    s.phase.describe(),
                    self.user.domain
                ),
            };
        }
        match self.state {
            DialogueState::ReadyToRun => {
                "Running will train the model on one part of your data and honestly \
                 test it on the rest."
                    .into()
            }
            _ => "Tell me what you would like to predict, and I will walk you through \
                  each step with suggestions you can accept or reject."
                .into(),
        }
    }

    /// Process one user message, advancing the dialogue.
    pub fn handle(&mut self, user_text: &str) -> Result<DialogueResponse> {
        if self.state == DialogueState::Closed {
            return Err(ConversationError::BadState {
                state: self.state.name(),
                action: "continue a closed session".into(),
            });
        }
        self.transcript.user(user_text);
        let intent = parse(user_text);
        // The routing decision is the conversational loop's hot path: what
        // the user said, what we understood, and where the dialogue stood.
        telemetry::log::debug("conversation.dialogue", "intent routed")
            .field("intent", intent.name())
            .field("state", self.state.name())
            .field("pending", self.pending.len())
            .emit();
        let mut events = Vec::new();
        let reply = match (&self.state, intent) {
            (_, Intent::Finish) => {
                self.state = DialogueState::Closed;
                events.push(DialogueEvent::Finished);
                "Thank you for designing with me. Goodbye!".to_string()
            }
            (_, Intent::Explain) => self.explain(),
            (DialogueState::AwaitGoal, Intent::SetGoal { target }) => {
                self.set_goal(target, &mut events)
            }
            (DialogueState::AwaitGoal, _) => {
                "Let's start with the goal: what would you like to predict? \
                 Name a column in quotes."
                    .to_string()
            }
            (DialogueState::InPhase(_), Intent::Accept) => self.decide(true, &mut events)?,
            (DialogueState::InPhase(_), Intent::Reject) => self.decide(false, &mut events)?,
            (_, Intent::SurpriseMe) => {
                events.push(DialogueEvent::SurpriseRequested);
                "Let me think of something less ordinary...".to_string()
            }
            (DialogueState::ReadyToRun, Intent::Run) | (DialogueState::InPhase(_), Intent::Run) => {
                match &self.draft {
                    Some(draft) => {
                        events.push(DialogueEvent::RunRequested {
                            spec: draft.clone(),
                        });
                        "Running the study now...".to_string()
                    }
                    None => "There is no design to run yet.".to_string(),
                }
            }
            (_, Intent::SetGoal { target }) => self.set_goal(target, &mut events),
            (_, Intent::Drivers) => {
                events.push(DialogueEvent::DriversRequested);
                "Let me check which of your measurements carry the signal...".to_string()
            }
            (_, Intent::Explore) => {
                let follow_up = match self.pending.first() {
                    Some(s) => format!(" The pending suggestion is: {} — yes or no?", s.text),
                    None => String::new(),
                };
                format!(
                    "Here is what your data looks like: {}.{follow_up}",
                    self.data_digest
                )
            }
            (_, _) => match self.pending.first() {
                Some(s) => format!(
                    "Sorry, I did not follow. The pending suggestion is: {} — yes or no?",
                    s.text
                ),
                None => "Sorry, I did not follow. You can say 'run', 'surprise me', \
                         or 'done'."
                    .to_string(),
            },
        };
        self.transcript.matilda(&reply);
        Ok(DialogueResponse { reply, events })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matilda_data::Column;

    fn frame() -> DataFrame {
        DataFrame::from_columns(vec![
            ("age", Column::from_f64((0..40).map(f64::from).collect())),
            (
                "income",
                Column::from_f64((0..40).map(|i| f64::from(i) * 2.0).collect()),
            ),
            (
                "churn",
                Column::from_categorical(
                    &(0..40)
                        .map(|i| if i % 2 == 0 { "yes" } else { "no" })
                        .collect::<Vec<_>>(),
                ),
            ),
        ])
        .unwrap()
    }

    fn dialogue() -> Dialogue {
        Dialogue::new(UserProfile::novice("Ada", "urbanism"), &frame())
    }

    #[test]
    fn opening_greets_by_name() {
        let d = dialogue();
        assert!(d.opening().contains("Ada"));
        assert_eq!(d.state(), DialogueState::AwaitGoal);
    }

    #[test]
    fn goal_with_categorical_target_is_classification() {
        let mut d = dialogue();
        let r = d.handle("I want to predict 'churn'").unwrap();
        assert!(matches!(
            r.events.first(),
            Some(DialogueEvent::GoalSet {
                task: Task::Classification { .. }
            })
        ));
        assert!(d.draft().is_some());
        assert!(matches!(d.state(), DialogueState::InPhase(_)));
    }

    #[test]
    fn goal_with_numeric_target_is_regression() {
        let mut d = dialogue();
        let r = d.handle("can you estimate 'income'?").unwrap();
        assert!(matches!(
            r.events.first(),
            Some(DialogueEvent::GoalSet {
                task: Task::Regression { .. }
            })
        ));
    }

    #[test]
    fn unknown_target_lists_columns() {
        let mut d = dialogue();
        let r = d.handle("predict 'ghost'").unwrap();
        assert!(r.reply.contains("age"));
        assert!(r.events.is_empty());
        assert_eq!(d.state(), DialogueState::AwaitGoal);
    }

    #[test]
    fn goal_without_target_asks_for_one() {
        let mut d = dialogue();
        let r = d.handle("I want to predict something").unwrap();
        assert!(r.reply.contains("quotes") || r.reply.contains("name one"));
    }

    #[test]
    fn accepting_suggestions_builds_draft() {
        let mut d = dialogue();
        d.handle("predict 'churn'").unwrap();
        let before = d.draft().unwrap().prep.len();
        // Accept everything until the design is ready.
        let mut guard = 0;
        while matches!(d.state(), DialogueState::InPhase(_)) && guard < 30 {
            d.handle("yes").unwrap();
            guard += 1;
        }
        assert_eq!(d.state(), DialogueState::ReadyToRun);
        assert!(d.draft().unwrap().prep.len() > before);
        assert!(!d.decisions().is_empty());
        assert!(d.decisions().iter().all(|(_, adopted)| *adopted));
    }

    #[test]
    fn rejecting_everything_still_terminates() {
        let mut d = dialogue();
        d.handle("predict 'churn'").unwrap();
        let mut guard = 0;
        while matches!(d.state(), DialogueState::InPhase(_)) && guard < 30 {
            d.handle("no").unwrap();
            guard += 1;
        }
        assert_eq!(d.state(), DialogueState::ReadyToRun);
        assert!(d.decisions().iter().all(|(_, adopted)| !*adopted));
    }

    #[test]
    fn run_emits_event_with_spec() {
        let mut d = dialogue();
        d.handle("predict 'churn'").unwrap();
        let mut guard = 0;
        while matches!(d.state(), DialogueState::InPhase(_)) && guard < 30 {
            d.handle("yes").unwrap();
            guard += 1;
        }
        let r = d.handle("run it").unwrap();
        assert!(matches!(
            r.events.first(),
            Some(DialogueEvent::RunRequested { .. })
        ));
    }

    #[test]
    fn surprise_me_emits_event_and_injection_works() {
        let mut d = dialogue();
        d.handle("predict 'churn'").unwrap();
        let r = d.handle("surprise me").unwrap();
        assert!(r.events.contains(&DialogueEvent::SurpriseRequested));
        let creative = Suggestion {
            id: "x".into(),
            phase: Phase::Prepare,
            action: crate::suggest::SuggestedAction::AddPrep(PrepOp::PolynomialFeatures {
                degree: 2,
            }),
            text: "add squared features".into(),
            creative: true,
            pattern: Some("mutant_shopping".into()),
        };
        d.inject_suggestion(creative).unwrap();
        assert!(d.pending_suggestion().unwrap().creative);
        let r = d.handle("yes").unwrap();
        assert!(matches!(
            r.events.first(),
            Some(DialogueEvent::SuggestionDecided { adopted: true, .. })
        ));
        assert!(d
            .draft()
            .unwrap()
            .prep
            .iter()
            .any(|op| matches!(op, PrepOp::PolynomialFeatures { .. })));
    }

    #[test]
    fn finish_closes_session() {
        let mut d = dialogue();
        let r = d.handle("we're done").unwrap();
        assert!(r.events.contains(&DialogueEvent::Finished));
        assert_eq!(d.state(), DialogueState::Closed);
        assert!(d.handle("hello?").is_err());
    }

    #[test]
    fn explain_answers_in_context() {
        let mut d = dialogue();
        let r = d.handle("why?").unwrap();
        assert!(r.reply.contains("predict"));
        d.handle("predict 'churn'").unwrap();
        let r = d.handle("why?").unwrap();
        assert!(!r.reply.is_empty());
        assert!(r.events.is_empty(), "explanations change nothing");
    }

    #[test]
    fn explore_request_shows_data_overview() {
        let mut d = dialogue();
        d.handle("predict 'churn'").unwrap();
        let r = d.handle("show me the data").unwrap();
        assert!(r.reply.contains("40 rows"), "{}", r.reply);
        assert!(
            r.reply.contains("age"),
            "numeric summaries present: {}",
            r.reply
        );
        assert!(r.reply.contains("churn: 2 kinds"), "{}", r.reply);
        // The pending suggestion is restated so the flow is not lost.
        assert!(r.reply.contains("yes or no"), "{}", r.reply);
        assert!(r.events.is_empty());
    }

    #[test]
    fn data_overview_accessor() {
        let d = dialogue();
        assert!(d.data_overview().contains("3 columns"));
    }

    #[test]
    fn transcript_grows() {
        let mut d = dialogue();
        d.handle("predict 'churn'").unwrap();
        d.handle("yes").unwrap();
        // opening + 2 * (user + matilda)
        assert_eq!(d.transcript().len(), 5);
        assert_eq!(d.transcript().user_turns(), 2);
    }

    #[test]
    fn injection_requires_active_design() {
        let mut d = dialogue();
        let s = Suggestion {
            id: "x".into(),
            phase: Phase::Prepare,
            action: crate::suggest::SuggestedAction::AddPrep(PrepOp::DropNulls),
            text: "t".into(),
            creative: true,
            pattern: None,
        };
        assert!(d.inject_suggestion(s).is_err(), "no goal yet");
    }

    #[test]
    fn single_choice_phase_closes_after_adoption() {
        let mut d = dialogue();
        d.handle("predict 'churn'").unwrap();
        // Walk to the fragment phase by rejecting prepare suggestions.
        let mut guard = 0;
        while !matches!(d.state(), DialogueState::InPhase(Phase::Fragment)) && guard < 20 {
            d.handle("no").unwrap();
            guard += 1;
        }
        assert!(matches!(d.state(), DialogueState::InPhase(Phase::Fragment)));
        d.handle("yes").unwrap();
        // Adopting one split option moves straight to the next phase.
        assert!(!matches!(
            d.state(),
            DialogueState::InPhase(Phase::Fragment)
        ));
    }
}
