//! Error types for the conversational substrate.

use std::fmt;

/// Errors raised by the dialogue engine.
#[derive(Debug, Clone, PartialEq)]
pub enum ConversationError {
    /// The dialogue cannot accept this action in its current state.
    BadState { state: &'static str, action: String },
    /// A referenced suggestion id does not exist or was already decided.
    UnknownSuggestion(String),
    /// The draft pipeline cannot be updated as requested.
    Draft(String),
    /// Failure in the pipeline substrate.
    Pipeline(matilda_pipeline::PipelineError),
}

impl fmt::Display for ConversationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConversationError::BadState { state, action } => {
                write!(f, "cannot {action} while dialogue is in state {state}")
            }
            ConversationError::UnknownSuggestion(id) => write!(f, "unknown suggestion: {id}"),
            ConversationError::Draft(m) => write!(f, "draft update failed: {m}"),
            ConversationError::Pipeline(e) => write!(f, "pipeline error: {e}"),
        }
    }
}

impl std::error::Error for ConversationError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ConversationError::Pipeline(e) => Some(e),
            _ => None,
        }
    }
}

impl From<matilda_pipeline::PipelineError> for ConversationError {
    fn from(e: matilda_pipeline::PipelineError) -> Self {
        ConversationError::Pipeline(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ConversationError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = ConversationError::BadState {
            state: "greeting",
            action: "execute".into(),
        };
        assert!(e.to_string().contains("greeting"));
        assert!(ConversationError::UnknownSuggestion("s9".into())
            .to_string()
            .contains("s9"));
    }
}
