//! Graceful-degradation narration: when the platform has to cut a study
//! short (a deadline preemption), the turn becomes an honest account of how
//! far the work got, phrased for the user's expertise — never a timeout.

use crate::profile::UserProfile;

/// Plain-language phrase for a cancellation site, used for novice wording.
fn site_phrase(site: &str) -> &'static str {
    match site {
        "pipeline.task" => "between two steps of the study",
        "ml.cv.fold" => "while double-checking the result on held-back data",
        "ml.fit.mlp" | "ml.fit.logistic" | "ml.fit.boost" | "ml.fit.forest" => {
            "while the method was still learning from your data"
        }
        "data.csv.batch" => "while reading your data file",
        _ => "partway through the study",
    }
}

/// Narrate a deadline preemption: which work completed, where the budget
/// ran out, and that nothing was lost.
///
/// Novices get the plain-language account; technical users additionally get
/// the tripped site and the completed task list.
pub fn narrate_preempted(site: &str, completed_tasks: &[String], user: &UserProfile) -> String {
    let progress = if completed_tasks.is_empty() {
        "I had to stop before any step finished".to_string()
    } else {
        format!(
            "I finished {} of the study's steps before stopping",
            completed_tasks.len()
        )
    };
    if user.expertise.technical_language() {
        let done = if completed_tasks.is_empty() {
            "none".to_string()
        } else {
            completed_tasks.join(", ")
        };
        format!(
            "This study ran out of its time budget at `{site}`. {progress} \
             (completed: {done}). The partial timings are saved; a simpler \
             design or a larger budget would let it finish."
        )
    } else {
        format!(
            "I ran out of time {} — {}. Nothing is lost: what we measured \
             is saved, and a simpler design should fit in the time we have.",
            site_phrase(site),
            progress.to_lowercase()
        )
    }
}

/// Narrate an overload (brownout) level change: what the platform is doing
/// about the pressure, phrased for the user's expertise.
///
/// `level` is a stable lowercase load-level name (`nominal`, `elevated`,
/// `saturated`, `critical`); unknown names get the saturated wording, which
/// is the safe middle ground.
pub fn narrate_overload(level: &str, user: &UserProfile) -> String {
    if user.expertise.technical_language() {
        return match level {
            "nominal" => "Load level is back to `nominal`; full deadline budgets and \
                          search depth are restored."
                .to_string(),
            "elevated" => "Load level is `elevated`: per-turn deadline budgets are \
                           halved to keep latency inside the SLO."
                .to_string(),
            "critical" => "Load level is `critical`: the daemon is shedding the \
                           least-recently-active sessions and bouncing new work with \
                           `overloaded` replies."
                .to_string(),
            _ => format!(
                "Load level is `{level}`: creative search is capped and new sessions \
                 are bounced until pressure drops."
            ),
        };
    }
    match level {
        "nominal" => "Things have calmed down — we're back to full speed.".to_string(),
        "elevated" => "It's getting busy, so I'll keep each step a little shorter \
                       for now. Your work continues as usual."
            .to_string(),
        "critical" => "We're overloaded — I'm pausing the quietest conversations so \
                       active ones keep moving. Nothing is lost."
            .to_string(),
        _ => "A lot is happening at once, so I'll explore fewer ideas per turn \
              until things quiet down. Your results are still trustworthy."
            .to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn novice_wording_is_plain() {
        let user = UserProfile::novice("Ada", "urbanism");
        let text = narrate_preempted(
            "ml.fit.logistic",
            &["explore".into(), "fragment".into()],
            &user,
        );
        assert!(text.contains("still learning"), "{text}");
        assert!(!text.contains("ml.fit.logistic"), "no site names: {text}");
        assert!(text.contains("Nothing is lost"), "{text}");
    }

    #[test]
    fn technical_wording_names_the_site_and_tasks() {
        let user = UserProfile::data_scientist("Elias");
        let text = narrate_preempted(
            "ml.fit.logistic",
            &["explore".into(), "train".into()],
            &user,
        );
        assert!(text.contains("ml.fit.logistic"), "{text}");
        assert!(text.contains("explore, train"), "{text}");
    }

    #[test]
    fn empty_prefix_is_honest() {
        let novice = UserProfile::novice("Ada", "urbanism");
        let text = narrate_preempted("pipeline.task", &[], &novice);
        assert!(text.contains("before any step finished"), "{text}");
        let expert = UserProfile::data_scientist("Elias");
        let text = narrate_preempted("pipeline.task", &[], &expert);
        assert!(text.contains("completed: none"), "{text}");
    }

    #[test]
    fn overload_narration_tracks_expertise() {
        let novice = UserProfile::novice("Ada", "urbanism");
        let expert = UserProfile::data_scientist("Elias");
        for level in ["nominal", "elevated", "saturated", "critical"] {
            let plain = narrate_overload(level, &novice);
            assert!(
                !plain.contains('`'),
                "novice wording must avoid jargon markers: {plain}"
            );
            let technical = narrate_overload(level, &expert);
            assert!(
                technical.contains("Load level"),
                "technical wording names the level: {technical}"
            );
        }
        // Unknown levels still narrate something sensible.
        let fallback = narrate_overload("weird", &novice);
        assert!(fallback.contains("fewer ideas"), "{fallback}");
    }

    #[test]
    fn every_canonical_site_has_a_phrase() {
        for site in [
            "pipeline.task",
            "ml.cv.fold",
            "ml.fit.mlp",
            "ml.fit.logistic",
            "ml.fit.boost",
            "ml.fit.forest",
            "data.csv.batch",
        ] {
            assert_ne!(
                site_phrase(site),
                "partway through the study",
                "site {site} should have a dedicated phrase"
            );
        }
        assert_eq!(site_phrase("unknown.site"), "partway through the study");
    }
}
