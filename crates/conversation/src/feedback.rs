//! Applying adopted suggestions to the draft design.

use crate::error::{ConversationError, Result};
use crate::suggest::{SuggestedAction, Suggestion};
use matilda_pipeline::prelude::*;

/// Apply one adopted suggestion to the draft spec.
///
/// Prep ops keep the no-duplicate-family invariant: adopting a second
/// suggestion of the same family replaces the first.
pub fn apply_to_draft(draft: &mut PipelineSpec, suggestion: &Suggestion) -> Result<()> {
    match &suggestion.action {
        SuggestedAction::AddPrep(op) => {
            if let Some(existing) = draft.prep.iter_mut().find(|p| p.name() == op.name()) {
                *existing = op.clone();
            } else {
                draft.prep.push(op.clone());
            }
        }
        SuggestedAction::SetSplit(split) => {
            if split.stratified && !draft.task.is_classification() {
                return Err(ConversationError::Draft(
                    "stratified split needs a categorical target".into(),
                ));
            }
            draft.split = split.clone();
        }
        SuggestedAction::SetModel(model) => {
            let ok = if draft.task.is_classification() {
                model.supports_classification()
            } else {
                model.supports_regression()
            };
            if !ok {
                return Err(ConversationError::Draft(format!(
                    "model '{}' does not fit the task",
                    model.name()
                )));
            }
            draft.model = model.clone();
        }
        SuggestedAction::SetScoring(s) => {
            if s.is_classification() != draft.task.is_classification() {
                return Err(ConversationError::Draft(format!(
                    "scoring '{}' does not fit the task",
                    s.name()
                )));
            }
            draft.scoring = *s;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use matilda_data::transform::ImputeStrategy;
    use matilda_ml::{ModelSpec, Scoring};

    fn suggestion(action: SuggestedAction) -> Suggestion {
        Suggestion {
            id: "s1".into(),
            phase: Phase::Prepare,
            action,
            text: String::new(),
            creative: false,
            pattern: None,
        }
    }

    #[test]
    fn add_prep_appends() {
        let mut draft = PipelineSpec::default_classification("y");
        draft.prep.clear();
        apply_to_draft(
            &mut draft,
            &suggestion(SuggestedAction::AddPrep(PrepOp::DropNulls)),
        )
        .unwrap();
        assert_eq!(draft.prep.len(), 1);
    }

    #[test]
    fn add_prep_replaces_same_family() {
        let mut draft = PipelineSpec::default_classification("y");
        draft.prep = vec![PrepOp::Impute(ImputeStrategy::Mean)];
        apply_to_draft(
            &mut draft,
            &suggestion(SuggestedAction::AddPrep(PrepOp::Impute(
                ImputeStrategy::Median,
            ))),
        )
        .unwrap();
        assert_eq!(draft.prep, vec![PrepOp::Impute(ImputeStrategy::Median)]);
    }

    #[test]
    fn set_model_capability_checked() {
        let mut draft = PipelineSpec::default_classification("y");
        let err = apply_to_draft(
            &mut draft,
            &suggestion(SuggestedAction::SetModel(ModelSpec::Linear { ridge: 0.0 })),
        )
        .unwrap_err();
        assert!(matches!(err, ConversationError::Draft(_)));
        apply_to_draft(
            &mut draft,
            &suggestion(SuggestedAction::SetModel(ModelSpec::Knn { k: 3 })),
        )
        .unwrap();
        assert_eq!(draft.model, ModelSpec::Knn { k: 3 });
    }

    #[test]
    fn set_scoring_task_checked() {
        let mut draft = PipelineSpec::default_regression("price");
        assert!(apply_to_draft(
            &mut draft,
            &suggestion(SuggestedAction::SetScoring(Scoring::Accuracy)),
        )
        .is_err());
        apply_to_draft(
            &mut draft,
            &suggestion(SuggestedAction::SetScoring(Scoring::NegRmse)),
        )
        .unwrap();
        assert_eq!(draft.scoring, Scoring::NegRmse);
    }

    #[test]
    fn stratified_regression_rejected() {
        let mut draft = PipelineSpec::default_regression("price");
        let err = apply_to_draft(
            &mut draft,
            &suggestion(SuggestedAction::SetSplit(SplitSpec {
                test_fraction: 0.3,
                stratified: true,
                seed: 1,
            })),
        )
        .unwrap_err();
        assert!(matches!(err, ConversationError::Draft(_)));
    }
}
