//! Session transcripts: who said what, in order.

use std::fmt;

/// Who produced a transcript line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Speaker {
    /// The human user.
    User,
    /// The platform.
    Matilda,
}

impl Speaker {
    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            Speaker::User => "user",
            Speaker::Matilda => "matilda",
        }
    }
}

/// One line of dialogue.
#[derive(Debug, Clone, PartialEq)]
pub struct Turn {
    /// Who spoke.
    pub speaker: Speaker,
    /// What was said.
    pub text: String,
}

/// The ordered record of a conversation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Transcript {
    turns: Vec<Turn>,
}

impl Transcript {
    /// An empty transcript.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record a user line.
    pub fn user(&mut self, text: impl Into<String>) {
        self.turns.push(Turn {
            speaker: Speaker::User,
            text: text.into(),
        });
    }

    /// Record a platform line.
    pub fn matilda(&mut self, text: impl Into<String>) {
        self.turns.push(Turn {
            speaker: Speaker::Matilda,
            text: text.into(),
        });
    }

    /// All turns in order.
    pub fn turns(&self) -> &[Turn] {
        &self.turns
    }

    /// Number of turns.
    pub fn len(&self) -> usize {
        self.turns.len()
    }

    /// `true` when nothing has been said.
    pub fn is_empty(&self) -> bool {
        self.turns.is_empty()
    }

    /// Number of user turns (the conversational-effort measure used in the
    /// efficiency experiment).
    pub fn user_turns(&self) -> usize {
        self.turns
            .iter()
            .filter(|t| t.speaker == Speaker::User)
            .count()
    }
}

impl fmt::Display for Transcript {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for turn in &self.turns {
            writeln!(f, "[{:>7}] {}", turn.speaker.name(), turn.text)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order() {
        let mut t = Transcript::new();
        t.matilda("Hello! What would you like to study?");
        t.user("predict 'price'");
        t.matilda("Great.");
        assert_eq!(t.len(), 3);
        assert_eq!(t.turns()[1].speaker, Speaker::User);
        assert_eq!(t.user_turns(), 1);
    }

    #[test]
    fn display_format() {
        let mut t = Transcript::new();
        t.user("hello");
        let s = t.to_string();
        assert!(s.contains("[   user] hello"));
    }

    #[test]
    fn empty_transcript() {
        let t = Transcript::new();
        assert!(t.is_empty());
        assert_eq!(t.user_turns(), 0);
    }
}
