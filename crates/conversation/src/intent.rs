//! Rule-based intent parsing over the controlled vocabulary.

use crate::vocab::{concepts_in, quoted_token};

/// What the user wants, as understood by the parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Intent {
    /// State the analysis goal; target column if quoted.
    SetGoal {
        /// Quoted target column, when present.
        target: Option<String>,
    },
    /// Ask to see data summaries.
    Explore,
    /// Ask to handle missing values / cleaning.
    Clean,
    /// Ask about fragmentation.
    Split,
    /// Ask how good the results are.
    Assess,
    /// Accept the pending suggestion.
    Accept,
    /// Reject the pending suggestion.
    Reject,
    /// Ask for an explanation.
    Explain,
    /// Ask which features drive the result.
    Drivers,
    /// Ask for something unusual — hands the floor to the creativity engine.
    SurpriseMe,
    /// Ask to run/train the current design.
    Run,
    /// End the session.
    Finish,
    /// Could not be understood.
    Unknown,
}

impl Intent {
    /// Stable name for provenance/transcripts.
    pub fn name(&self) -> &'static str {
        match self {
            Intent::SetGoal { .. } => "set_goal",
            Intent::Explore => "explore",
            Intent::Clean => "clean",
            Intent::Split => "split",
            Intent::Assess => "assess",
            Intent::Accept => "accept",
            Intent::Reject => "reject",
            Intent::Explain => "explain",
            Intent::Drivers => "drivers",
            Intent::SurpriseMe => "surprise_me",
            Intent::Run => "run",
            Intent::Finish => "finish",
            Intent::Unknown => "unknown",
        }
    }
}

/// Parse one user message into an intent.
///
/// Priority order resolves ambiguity: an explicit accept/reject wins (the
/// loop usually has a pending question), then goal statements, then the
/// phase-specific requests, then meta requests.
pub fn parse(text: &str) -> Intent {
    let concepts = concepts_in(text);
    let has = |c: &str| concepts.contains(&c);
    // accept/reject first, but only when unaccompanied by a concrete
    // request ("no, show me the data" is an explore request).
    let concrete = [
        "predict", "explore", "clean", "split", "assess", "run", "surprise",
    ];
    let has_concrete = concepts.iter().any(|c| concrete.contains(c));
    if has("accept") && !has_concrete {
        return Intent::Accept;
    }
    if has("reject") && !has_concrete {
        return Intent::Reject;
    }
    if has("predict") {
        return Intent::SetGoal {
            target: quoted_token(text),
        };
    }
    if has("surprise") {
        return Intent::SurpriseMe;
    }
    if has("run") {
        return Intent::Run;
    }
    if has("drivers") {
        return Intent::Drivers;
    }
    if has("explore") {
        return Intent::Explore;
    }
    if has("clean") {
        return Intent::Clean;
    }
    if has("split") {
        return Intent::Split;
    }
    if has("assess") {
        return Intent::Assess;
    }
    if has("explain") {
        return Intent::Explain;
    }
    if has("finish") {
        return Intent::Finish;
    }
    Intent::Unknown
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn goal_with_target() {
        assert_eq!(
            parse("I want to predict 'churn' for my customers"),
            Intent::SetGoal {
                target: Some("churn".into())
            }
        );
        assert_eq!(
            parse("can we forecast demand?"),
            Intent::SetGoal { target: None }
        );
    }

    #[test]
    fn phase_requests() {
        assert_eq!(parse("show me the data"), Intent::Explore);
        assert_eq!(parse("there are missing values to fill"), Intent::Clean);
        assert_eq!(parse("how should we split it?"), Intent::Split);
        assert_eq!(parse("how accurate is it?"), Intent::Assess);
        assert_eq!(parse("train it now"), Intent::Run);
    }

    #[test]
    fn accept_reject() {
        assert_eq!(parse("yes"), Intent::Accept);
        assert_eq!(parse("ok sounds good"), Intent::Accept);
        assert_eq!(parse("no thanks"), Intent::Reject);
        assert_eq!(parse("skip that"), Intent::Reject);
    }

    #[test]
    fn rejection_with_request_is_request() {
        assert_eq!(parse("no, show me the data instead"), Intent::Explore);
        assert_eq!(parse("yes, run it"), Intent::Run);
    }

    #[test]
    fn surprise_me() {
        assert_eq!(parse("surprise me"), Intent::SurpriseMe);
        assert_eq!(parse("got anything more creative?"), Intent::SurpriseMe);
    }

    #[test]
    fn explain_and_finish() {
        assert_eq!(parse("why that one?"), Intent::Explain);
        assert_eq!(parse("we're done, stop"), Intent::Finish);
    }

    #[test]
    fn drivers_intent() {
        assert_eq!(parse("what matters most here?"), Intent::Drivers);
        assert_eq!(parse("which factors influence the result"), Intent::Drivers);
        assert_eq!(parse("no, show me the important drivers"), Intent::Drivers);
    }

    #[test]
    fn unknown_fallback() {
        assert_eq!(parse("lorem ipsum dolor"), Intent::Unknown);
        assert_eq!(parse(""), Intent::Unknown);
    }

    #[test]
    fn names_stable() {
        assert_eq!(Intent::SurpriseMe.name(), "surprise_me");
        assert_eq!(Intent::SetGoal { target: None }.name(), "set_goal");
    }

    #[test]
    fn predict_beats_explain() {
        // "what would the model predict" — prediction context wins.
        assert!(matches!(
            parse("what would the model predict for 'price'?"),
            Intent::SetGoal { .. }
        ));
    }
}
