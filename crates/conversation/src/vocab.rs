//! The controlled vocabulary: normalization and keyword lexicons that the
//! rule-based intent parser matches against.
//!
//! MATILDA's conversational layer (following DS4All) is deliberately
//! *step-by-step* rather than open-ended: a small, documented vocabulary
//! keeps the interaction predictable for non-technical users and fully
//! deterministic for replay.

/// Lowercase a message and strip punctuation, collapsing whitespace.
pub fn normalize(text: &str) -> Vec<String> {
    text.to_lowercase()
        .split(|c: char| !c.is_alphanumeric() && c != '\'')
        .filter(|t| !t.is_empty())
        .map(|t| t.trim_matches('\'').to_string())
        .filter(|t| !t.is_empty())
        .collect()
}

/// A keyword family: a canonical concept plus its surface forms.
#[derive(Debug, Clone)]
pub struct Lexeme {
    /// Canonical concept name.
    pub concept: &'static str,
    /// Surface forms that trigger it.
    pub forms: &'static [&'static str],
}

/// The platform's keyword lexicon.
pub const LEXICON: &[Lexeme] = &[
    Lexeme {
        concept: "predict",
        forms: &[
            "predict",
            "forecast",
            "estimate",
            "classify",
            "classification",
            "regression",
            "model",
            "guess",
        ],
    },
    Lexeme {
        concept: "explore",
        forms: &[
            "explore",
            "look",
            "show",
            "describe",
            "summary",
            "summarize",
            "profile",
            "distribution",
            "overview",
        ],
    },
    Lexeme {
        concept: "clean",
        forms: &[
            "clean", "missing", "impute", "fill", "gaps", "nulls", "tidy",
        ],
    },
    Lexeme {
        concept: "split",
        forms: &["split", "holdout", "fragment", "partition", "fold"],
    },
    Lexeme {
        concept: "assess",
        forms: &[
            "assess",
            "evaluate",
            "score",
            "accuracy",
            "accurate",
            "performance",
            "results",
        ],
    },
    Lexeme {
        concept: "accept",
        forms: &[
            "yes", "ok", "okay", "sure", "accept", "adopt", "sounds", "go", "do", "apply",
        ],
    },
    Lexeme {
        concept: "reject",
        forms: &[
            "no", "nope", "reject", "skip", "don't", "dont", "never", "pass",
        ],
    },
    Lexeme {
        concept: "explain",
        forms: &[
            "why",
            "explain",
            "what",
            "how",
            "mean",
            "meaning",
            "understand",
        ],
    },
    Lexeme {
        concept: "surprise",
        forms: &[
            "surprise",
            "creative",
            "wild",
            "unusual",
            "different",
            "else",
            "other",
            "alternative",
            "alternatives",
        ],
    },
    Lexeme {
        concept: "drivers",
        forms: &[
            "drivers",
            "driver",
            "matters",
            "important",
            "importance",
            "influence",
            "influences",
            "factors",
        ],
    },
    Lexeme {
        concept: "run",
        forms: &["run", "execute", "start", "train", "fit", "build", "launch"],
    },
    Lexeme {
        concept: "finish",
        forms: &["finish", "done", "stop", "end", "enough", "quit", "close"],
    },
];

/// The canonical concepts present in a message, in lexicon order.
pub fn concepts_in(text: &str) -> Vec<&'static str> {
    let tokens = normalize(text);
    LEXICON
        .iter()
        .filter(|lex| tokens.iter().any(|t| lex.forms.contains(&t.as_str())))
        .map(|lex| lex.concept)
        .collect()
}

/// Extract a quoted column-like token (`'price'`, `"price"`) from raw
/// text; used to pull target column names out of goal statements.
///
/// Only single-word quoted segments count, so apostrophes in contractions
/// ("I'd like...") do not produce false targets.
pub fn quoted_token(text: &str) -> Option<String> {
    for quote in ['\'', '"'] {
        // Contractions ("I'd") make quote parity unreliable, so accept any
        // between-quotes segment that is a single bare word.
        for (i, segment) in text.split(quote).enumerate() {
            if i == 0 {
                continue; // before the first quote
            }
            let trimmed = segment.trim();
            if !trimmed.is_empty()
                && trimmed.len() < 64
                && !trimmed.chars().any(char::is_whitespace)
                && text.split(quote).count() > i + 1
            {
                return Some(trimmed.to_string());
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_strips_punctuation() {
        assert_eq!(normalize("Hello, World!"), vec!["hello", "world"]);
        assert_eq!(
            normalize("  lots\t of   space "),
            vec!["lots", "of", "space"]
        );
        assert_eq!(normalize("don't"), vec!["don't"]);
    }

    #[test]
    fn normalize_empty() {
        assert!(normalize("...").is_empty());
        assert!(normalize("").is_empty());
    }

    #[test]
    fn concepts_detected() {
        assert_eq!(concepts_in("Can you predict the price?"), vec!["predict"]);
        assert_eq!(concepts_in("show me a summary"), vec!["explore"]);
        assert!(concepts_in("fill the missing values").contains(&"clean"));
        assert!(concepts_in("why did you do that?").contains(&"explain"));
    }

    #[test]
    fn multiple_concepts_in_order() {
        let c = concepts_in("clean the data then split it");
        assert_eq!(c, vec!["clean", "split"]);
    }

    #[test]
    fn accept_and_reject_forms() {
        assert_eq!(concepts_in("yes please"), vec!["accept"]);
        assert_eq!(concepts_in("nope"), vec!["reject"]);
        assert!(concepts_in("ok, go ahead").contains(&"accept"));
    }

    #[test]
    fn surprise_concept() {
        assert!(concepts_in("show me something creative").contains(&"surprise"));
        assert!(concepts_in("what else could we try?").contains(&"surprise"));
    }

    #[test]
    fn quoted_token_extraction() {
        assert_eq!(quoted_token("predict 'price' please"), Some("price".into()));
        assert_eq!(
            quoted_token("predict \"co2_level\""),
            Some("co2_level".into())
        );
        assert_eq!(quoted_token("no quotes here"), None);
    }

    #[test]
    fn lexicon_concepts_unique() {
        let names: std::collections::HashSet<&str> = LEXICON.iter().map(|l| l.concept).collect();
        assert_eq!(names.len(), LEXICON.len());
    }

    #[test]
    fn no_form_collisions_across_concepts() {
        let mut seen: std::collections::HashMap<&str, &str> = std::collections::HashMap::new();
        for lex in LEXICON {
            for form in lex.forms {
                if let Some(prev) = seen.insert(form, lex.concept) {
                    panic!("form '{form}' in both '{prev}' and '{}'", lex.concept);
                }
            }
        }
    }
}
