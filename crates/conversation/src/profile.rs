//! User profiles: who the platform is talking to.
//!
//! The paper's central inclusion claim is that suggestions must be
//! "calibrated to the data's characteristics and the user's expertise";
//! the profile carries the user half of that calibration.

/// Self-reported or inferred technical expertise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Expertise {
    /// Domain expert with no data-science background.
    Novice,
    /// Comfortable with spreadsheets and basic statistics.
    Analyst,
    /// Professional data scientist.
    DataScientist,
}

impl Expertise {
    /// All levels, least to most technical.
    pub const ALL: [Expertise; 3] = [
        Expertise::Novice,
        Expertise::Analyst,
        Expertise::DataScientist,
    ];

    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Expertise::Novice => "novice",
            Expertise::Analyst => "analyst",
            Expertise::DataScientist => "data_scientist",
        }
    }

    /// How many options one suggestion round shows: fewer for novices so
    /// choices stay manageable, more for experts who can triage.
    pub fn suggestion_budget(self) -> usize {
        match self {
            Expertise::Novice => 2,
            Expertise::Analyst => 3,
            Expertise::DataScientist => 5,
        }
    }

    /// Whether explanations should include technical vocabulary.
    pub fn technical_language(self) -> bool {
        self >= Expertise::Analyst
    }
}

/// The profile of the human in the loop.
#[derive(Debug, Clone, PartialEq)]
pub struct UserProfile {
    /// Display name.
    pub name: String,
    /// Technical expertise level.
    pub expertise: Expertise,
    /// The user's discipline, e.g. "urbanism" — echoed in explanations so
    /// the conversation stays in the user's vocabulary.
    pub domain: String,
    /// Appetite for unusual, creative suggestions in `[0, 1]`; calibrates
    /// the exploration weight the creativity engine uses for this user.
    pub openness: f64,
}

impl UserProfile {
    /// A new profile; `openness` is clamped into `[0, 1]`.
    pub fn new(
        name: impl Into<String>,
        expertise: Expertise,
        domain: impl Into<String>,
        openness: f64,
    ) -> Self {
        Self {
            name: name.into(),
            expertise,
            domain: domain.into(),
            openness: openness.clamp(0.0, 1.0),
        }
    }

    /// A typical non-technical domain expert.
    pub fn novice(name: impl Into<String>, domain: impl Into<String>) -> Self {
        Self::new(name, Expertise::Novice, domain, 0.3)
    }

    /// A typical data scientist.
    pub fn data_scientist(name: impl Into<String>) -> Self {
        Self::new(name, Expertise::DataScientist, "data science", 0.7)
    }

    /// The exploration weight the creativity engine should use for this
    /// user: novices get mostly known territory, open experts get more
    /// unknown territory.
    pub fn exploration_weight(&self) -> f64 {
        let base = match self.expertise {
            Expertise::Novice => 0.2,
            Expertise::Analyst => 0.4,
            Expertise::DataScientist => 0.5,
        };
        (base + 0.4 * self.openness).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_grows_with_expertise() {
        assert!(Expertise::Novice.suggestion_budget() < Expertise::Analyst.suggestion_budget());
        assert!(
            Expertise::Analyst.suggestion_budget() < Expertise::DataScientist.suggestion_budget()
        );
    }

    #[test]
    fn language_gate() {
        assert!(!Expertise::Novice.technical_language());
        assert!(Expertise::Analyst.technical_language());
        assert!(Expertise::DataScientist.technical_language());
    }

    #[test]
    fn openness_clamped() {
        let p = UserProfile::new("u", Expertise::Novice, "urbanism", 7.0);
        assert_eq!(p.openness, 1.0);
        let p = UserProfile::new("u", Expertise::Novice, "urbanism", -1.0);
        assert_eq!(p.openness, 0.0);
    }

    #[test]
    fn exploration_weight_ordering() {
        let novice = UserProfile::novice("n", "urbanism");
        let expert = UserProfile::data_scientist("e");
        assert!(novice.exploration_weight() < expert.exploration_weight());
        assert!((0.0..=1.0).contains(&novice.exploration_weight()));
        assert!((0.0..=1.0).contains(&expert.exploration_weight()));
    }

    #[test]
    fn names_unique() {
        let names: std::collections::HashSet<&str> =
            Expertise::ALL.iter().map(|e| e.name()).collect();
        assert_eq!(names.len(), 3);
    }
}
