//! Per-phase suggestion generation, calibrated to the data profile and the
//! user's expertise — the platform side of the paper's "suggests possible
//! scenarios that are adopted or not".

use crate::profile::UserProfile;
use matilda_data::transform::ImputeStrategy;
use matilda_ml::ModelSpec;
use matilda_pipeline::prelude::*;

/// What adopting a suggestion would change in the draft design.
#[derive(Debug, Clone, PartialEq)]
pub enum SuggestedAction {
    /// Append a preparation operator.
    AddPrep(PrepOp),
    /// Replace the fragmentation strategy.
    SetSplit(SplitSpec),
    /// Replace the model.
    SetModel(ModelSpec),
    /// Replace the scoring rule.
    SetScoring(matilda_ml::Scoring),
}

/// One adoptable suggestion shown to the user.
#[derive(Debug, Clone, PartialEq)]
pub struct Suggestion {
    /// Unique id within the session.
    pub id: String,
    /// Design phase it belongs to.
    pub phase: Phase,
    /// What adopting it does.
    pub action: SuggestedAction,
    /// Wording shown to the user (expertise-calibrated).
    pub text: String,
    /// Whether it came from known territory (registry) or the creativity
    /// engine (set by the platform when it injects creative suggestions).
    pub creative: bool,
    /// The creativity pattern that produced it (`None` for registry
    /// suggestions). Drives provenance attribution and lets the session
    /// quarantine suggestions from chronically failing patterns.
    pub pattern: Option<String>,
}

/// Split `suggestions` into `(available, quarantined)` by asking
/// `is_quarantined` about each suggestion's creativity pattern.
///
/// Registry suggestions (no pattern) are always available. The predicate
/// keeps this crate free of any dependency on the resilience layer: the
/// session passes a closure consulting its breaker registry.
pub fn partition_quarantined(
    suggestions: Vec<Suggestion>,
    mut is_quarantined: impl FnMut(&str) -> bool,
) -> (Vec<Suggestion>, Vec<Suggestion>) {
    suggestions
        .into_iter()
        .partition(|s| !s.pattern.as_deref().is_some_and(&mut is_quarantined))
}

/// Phrase an action for a given user.
pub fn phrase(action: &SuggestedAction, rationale: &str, profile: &UserProfile) -> String {
    let technical = profile.expertise.technical_language();
    match action {
        SuggestedAction::AddPrep(op) => {
            if technical {
                format!("Apply `{}`: {rationale}", op.name())
            } else {
                // Plain language, anchored in the user's own domain.
                format!("I could {}. ({rationale})", op.describe())
            }
        }
        SuggestedAction::SetSplit(split) => {
            let pct = (split.test_fraction * 100.0).round() as u32;
            if technical {
                format!(
                    "Hold out {pct}% for testing{}",
                    if split.stratified {
                        ", stratified on the target"
                    } else {
                        ""
                    }
                )
            } else {
                format!(
                    "I could set aside {pct}% of your {} data to check our answer honestly",
                    profile.domain
                )
            }
        }
        SuggestedAction::SetModel(model) => {
            if technical {
                format!("Use a `{}` model: {rationale}", model.name())
            } else {
                format!("I could try a method that {rationale}")
            }
        }
        SuggestedAction::SetScoring(s) => {
            if technical {
                format!("Judge results by {}", s.name())
            } else {
                "I could pick a fair way to score how well we are doing".to_string()
            }
        }
    }
}

/// Build the suggestion list for `phase`, calibrated to data and user.
///
/// The number of suggestions respects the user's suggestion budget; the
/// ordering is by registry relevance, so the most applicable option always
/// comes first.
pub fn suggestions_for(
    phase: Phase,
    data_profile: &DataProfile,
    user: &UserProfile,
    next_id: &mut impl FnMut() -> String,
) -> Vec<Suggestion> {
    let budget = user.expertise.suggestion_budget();
    let mut out = Vec::new();
    match phase {
        Phase::Explore => {
            // Exploration has a single canonical move: profile the data.
            out.push(Suggestion {
                id: next_id(),
                phase,
                action: SuggestedAction::AddPrep(PrepOp::DropNulls),
                text: if user.expertise.technical_language() {
                    "Profile the dataset (summaries, correlations, missingness)".into()
                } else {
                    format!("Let me take a first look at your {} data", user.domain)
                },
                creative: false,
                pattern: None,
            });
            // This placeholder action is replaced by the platform; explore
            // suggestions exist so the human can steer pace.
            out.truncate(1);
        }
        Phase::Prepare => {
            let mut entries = prep_catalogue();
            entries.sort_by(|a, b| {
                (b.relevance)(data_profile).total_cmp(&(a.relevance)(data_profile))
            });
            for entry in entries.into_iter().take(budget) {
                if (entry.relevance)(data_profile) < 0.2 {
                    continue;
                }
                // Calibrate template hyper-parameters to the data at hand.
                let op = match entry.op {
                    PrepOp::SelectKBest { k } => PrepOp::SelectKBest {
                        k: k.min(data_profile.n_numeric.max(1)),
                    },
                    other => other,
                };
                let action = SuggestedAction::AddPrep(op);
                out.push(Suggestion {
                    id: next_id(),
                    phase,
                    text: phrase(&action, entry.rationale, user),
                    action,
                    creative: false,
                    pattern: None,
                });
            }
            // Guarantee at least an imputation option exists.
            if out.is_empty() {
                let action = SuggestedAction::AddPrep(PrepOp::Impute(ImputeStrategy::Median));
                out.push(Suggestion {
                    id: next_id(),
                    phase,
                    text: phrase(&action, "fill gaps so nothing is silently dropped", user),
                    action,
                    creative: false,
                    pattern: None,
                });
            }
        }
        Phase::Fragment => {
            let options = [
                SplitSpec {
                    test_fraction: 0.25,
                    stratified: data_profile.classification,
                    seed: 42,
                },
                SplitSpec {
                    test_fraction: 0.2,
                    stratified: false,
                    seed: 42,
                },
                SplitSpec {
                    test_fraction: 0.4,
                    stratified: data_profile.classification,
                    seed: 42,
                },
            ];
            for split in options.into_iter().take(budget) {
                let action = SuggestedAction::SetSplit(split);
                out.push(Suggestion {
                    id: next_id(),
                    phase,
                    text: phrase(&action, "", user),
                    action,
                    creative: false,
                    pattern: None,
                });
            }
        }
        Phase::Train => {
            let mut entries = model_catalogue();
            entries.sort_by(|a, b| {
                (b.relevance)(data_profile).total_cmp(&(a.relevance)(data_profile))
            });
            for entry in entries.into_iter().take(budget) {
                if (entry.relevance)(data_profile) <= 0.0 {
                    continue;
                }
                let action = SuggestedAction::SetModel(entry.spec.clone());
                out.push(Suggestion {
                    id: next_id(),
                    phase,
                    text: phrase(&action, entry.rationale, user),
                    action,
                    creative: false,
                    pattern: None,
                });
            }
        }
        Phase::Test | Phase::Assess => {
            for s in scoring_catalogue(data_profile.classification)
                .into_iter()
                .take(budget)
            {
                let action = SuggestedAction::SetScoring(s);
                out.push(Suggestion {
                    id: next_id(),
                    phase,
                    text: phrase(&action, "", user),
                    action,
                    creative: false,
                    pattern: None,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::Expertise;

    fn data_profile() -> DataProfile {
        DataProfile {
            n_rows: 400,
            n_numeric: 6,
            n_categorical: 2,
            n_nulls: 12,
            classification: true,
            max_skewness: 0.4,
        }
    }

    fn id_counter() -> impl FnMut() -> String {
        let mut n = 0;
        move || {
            n += 1;
            format!("s{n}")
        }
    }

    #[test]
    fn budget_respected_by_expertise() {
        let novice = UserProfile::novice("n", "urbanism");
        let expert = UserProfile::data_scientist("e");
        let mut ids = id_counter();
        let for_novice = suggestions_for(Phase::Prepare, &data_profile(), &novice, &mut ids);
        let for_expert = suggestions_for(Phase::Prepare, &data_profile(), &expert, &mut ids);
        assert!(for_novice.len() <= Expertise::Novice.suggestion_budget());
        assert!(for_expert.len() > for_novice.len());
    }

    #[test]
    fn prepare_suggestions_lead_with_most_relevant() {
        let user = UserProfile::data_scientist("e");
        let mut ids = id_counter();
        let s = suggestions_for(Phase::Prepare, &data_profile(), &user, &mut ids);
        // With nulls and categoricals present, the top suggestions must
        // include imputation and one-hot encoding.
        let names: Vec<&str> = s
            .iter()
            .filter_map(|sg| match &sg.action {
                SuggestedAction::AddPrep(op) => Some(op.name()),
                _ => None,
            })
            .collect();
        assert!(names.contains(&"impute"), "{names:?}");
        assert!(names.contains(&"one_hot"), "{names:?}");
    }

    #[test]
    fn novice_wording_is_plain() {
        let novice = UserProfile::novice("n", "urbanism");
        let mut ids = id_counter();
        let s = suggestions_for(Phase::Prepare, &data_profile(), &novice, &mut ids);
        for sg in &s {
            assert!(
                !sg.text.contains('`'),
                "no code voice for novices: {}",
                sg.text
            );
        }
    }

    #[test]
    fn expert_wording_is_technical() {
        let expert = UserProfile::data_scientist("e");
        let mut ids = id_counter();
        let s = suggestions_for(Phase::Train, &data_profile(), &expert, &mut ids);
        assert!(
            s.iter().any(|sg| sg.text.contains('`')),
            "expert sees model names"
        );
    }

    #[test]
    fn train_suggestions_are_classifiers() {
        let user = UserProfile::data_scientist("e");
        let mut ids = id_counter();
        let s = suggestions_for(Phase::Train, &data_profile(), &user, &mut ids);
        assert!(!s.is_empty());
        for sg in &s {
            if let SuggestedAction::SetModel(m) = &sg.action {
                assert!(m.supports_classification());
            }
        }
    }

    #[test]
    fn assess_suggestions_match_task() {
        let user = UserProfile::novice("n", "retail");
        let mut regression = data_profile();
        regression.classification = false;
        let mut ids = id_counter();
        let s = suggestions_for(Phase::Assess, &regression, &user, &mut ids);
        for sg in &s {
            if let SuggestedAction::SetScoring(sc) = &sg.action {
                assert!(!sc.is_classification());
            }
        }
    }

    #[test]
    fn ids_unique_across_phases() {
        let user = UserProfile::data_scientist("e");
        let mut ids = id_counter();
        let mut all = Vec::new();
        for phase in [Phase::Prepare, Phase::Fragment, Phase::Train, Phase::Assess] {
            all.extend(suggestions_for(phase, &data_profile(), &user, &mut ids));
        }
        let unique: std::collections::HashSet<&str> = all.iter().map(|s| s.id.as_str()).collect();
        assert_eq!(unique.len(), all.len());
    }

    #[test]
    fn quarantine_partition_skips_only_flagged_patterns() {
        let mk = |id: &str, pattern: Option<&str>| Suggestion {
            id: id.into(),
            phase: Phase::Train,
            action: SuggestedAction::SetModel(ModelSpec::Knn { k: 3 }),
            text: String::new(),
            creative: pattern.is_some(),
            pattern: pattern.map(String::from),
        };
        let (kept, skipped) = partition_quarantined(
            vec![
                mk("registry", None),
                mk("healthy", Some("no_blank_canvas")),
                mk("sick", Some("mutant_shopping")),
            ],
            |p| p == "mutant_shopping",
        );
        assert_eq!(
            kept.iter().map(|s| s.id.as_str()).collect::<Vec<_>>(),
            vec!["registry", "healthy"]
        );
        assert_eq!(
            skipped.iter().map(|s| s.id.as_str()).collect::<Vec<_>>(),
            vec!["sick"]
        );
    }

    #[test]
    fn registry_suggestions_never_quarantined() {
        let user = UserProfile::data_scientist("e");
        let mut ids = id_counter();
        let all = suggestions_for(Phase::Train, &data_profile(), &user, &mut ids);
        let n = all.len();
        // Even a predicate quarantining everything leaves pattern-less
        // registry suggestions untouched.
        let (kept, skipped) = partition_quarantined(all, |_| true);
        assert_eq!(kept.len(), n);
        assert!(skipped.is_empty());
    }

    #[test]
    fn split_phrase_mentions_percentage() {
        let user = UserProfile::novice("n", "urbanism");
        let action = SuggestedAction::SetSplit(SplitSpec {
            test_fraction: 0.25,
            stratified: false,
            seed: 1,
        });
        assert!(phrase(&action, "", &user).contains("25%"));
    }
}
