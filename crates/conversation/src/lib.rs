//! # matilda-conversation
//!
//! MATILDA's conversational-computing substrate: the DS4All-style
//! step-by-step loop that lets non-technical users steer a pipeline design
//! without touching technical detail.
//!
//! - [`vocab`]: the controlled vocabulary and text normalization;
//! - [`degrade`]: graceful-degradation narration for preempted studies;
//! - [`intent`]: rule-based intent parsing (deterministic, replayable);
//! - [`profile`]: user expertise/domain/openness, which calibrates both
//!   the number of suggestions and their wording;
//! - [`suggest`]: per-phase suggestions drawn from the platform registry;
//! - [`feedback`]: applying adopted suggestions to the draft design;
//! - [`dialogue`]: the state machine walking the paper's phases and
//!   emitting [`dialogue::DialogueEvent`]s for the platform to act on;
//! - [`transcript`]: the ordered conversation record.
//!
//! ```
//! use matilda_conversation::prelude::*;
//! use matilda_data::{Column, DataFrame};
//!
//! let df = DataFrame::from_columns(vec![
//!     ("x", Column::from_f64((0..20).map(f64::from).collect())),
//!     ("label", Column::from_categorical(
//!         &(0..20).map(|i| if i < 10 { "a" } else { "b" }).collect::<Vec<_>>())),
//! ]).unwrap();
//! let mut dialogue = Dialogue::new(UserProfile::novice("Ada", "urbanism"), &df);
//! let response = dialogue.handle("I want to predict 'label'").unwrap();
//! assert!(matches!(response.events.first(), Some(DialogueEvent::GoalSet { .. })));
//! ```

pub mod degrade;
pub mod dialogue;
pub mod error;
pub mod feedback;
pub mod intent;
pub mod profile;
pub mod suggest;
pub mod transcript;
pub mod vocab;

/// Convenient re-exports of the most used items.
pub mod prelude {
    pub use crate::degrade::narrate_preempted;
    pub use crate::dialogue::{Dialogue, DialogueEvent, DialogueResponse, DialogueState};
    pub use crate::error::{ConversationError, Result};
    pub use crate::feedback::apply_to_draft;
    pub use crate::intent::{parse, Intent};
    pub use crate::profile::{Expertise, UserProfile};
    pub use crate::suggest::{partition_quarantined, suggestions_for, SuggestedAction, Suggestion};
    pub use crate::transcript::{Speaker, Transcript, Turn};
}

pub use dialogue::{Dialogue, DialogueEvent, DialogueResponse, DialogueState};
pub use error::{ConversationError, Result};
pub use profile::{Expertise, UserProfile};
pub use suggest::{partition_quarantined, SuggestedAction, Suggestion};
