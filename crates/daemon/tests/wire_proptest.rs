//! Property tests for the daemon wire protocol.
//!
//! The framing layer faces untrusted peers, so its contract is checked
//! adversarially: arbitrary payloads must round-trip byte-exact; torn
//! frames, oversized length prefixes and mid-frame disconnects must come
//! back as *typed* [`WireError`]s — never a panic, never an unbounded
//! allocation, never a hang.

use std::io::Cursor;

use matilda_daemon::wire::{
    error_reply, read_frame, write_frame, Request, WireError, MAX_FRAME_BYTES,
};
use proptest::prelude::*;

proptest! {
    /// Any payload (hostile alphabet: quotes, backslashes, braces,
    /// multibyte) survives write → read byte-exact, and consecutive frames
    /// on one stream stay delimited.
    #[test]
    fn frames_round_trip(a in ".{0,300}", b in ".{0,300}") {
        let mut buf = Vec::new();
        write_frame(&mut buf, &a).unwrap();
        write_frame(&mut buf, &b).unwrap();
        let mut cursor = Cursor::new(buf);
        let first = read_frame(&mut cursor).unwrap();
        let second = read_frame(&mut cursor).unwrap();
        prop_assert_eq!(first.as_deref(), Some(a.as_str()));
        prop_assert_eq!(second.as_deref(), Some(b.as_str()));
        // Clean EOF exactly on the boundary.
        prop_assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    /// Cutting a well-formed frame at any interior byte produces a typed
    /// torn-frame error (or a clean EOF when nothing at all arrived) —
    /// never a panic, never success.
    #[test]
    fn truncation_is_always_typed(payload in ".{0,200}", cut_seed in any::<u64>()) {
        let mut buf = Vec::new();
        write_frame(&mut buf, &payload).unwrap();
        // Cut strictly inside the frame.
        let cut = (cut_seed as usize) % buf.len();
        let result = read_frame(&mut Cursor::new(buf[..cut].to_vec()));
        if cut == 0 {
            prop_assert!(matches!(result, Ok(None)), "zero bytes is a clean EOF");
        } else {
            match result {
                Err(WireError::Torn { expected, got }) => {
                    prop_assert!(got < expected, "torn {got}/{expected}");
                }
                other => prop_assert!(false, "expected Torn, got {other:?}"),
            }
        }
    }

    /// Length prefixes above the ceiling are rejected before any payload
    /// read, whatever junk follows.
    #[test]
    fn oversized_prefixes_are_typed(extra in any::<u32>(), junk in ".{0,64}") {
        let len = (MAX_FRAME_BYTES as u32).saturating_add(1).saturating_add(extra % 1_000_000);
        let mut buf = len.to_be_bytes().to_vec();
        buf.extend_from_slice(junk.as_bytes());
        match read_frame(&mut Cursor::new(buf)) {
            Err(WireError::FrameTooLarge { len: got, max }) => {
                prop_assert_eq!(got, len as usize);
                prop_assert_eq!(max, MAX_FRAME_BYTES);
            }
            other => prop_assert!(false, "expected FrameTooLarge, got {other:?}"),
        }
    }

    /// Request parsing never panics on arbitrary input: every outcome is a
    /// parsed request or a typed bad_request.
    #[test]
    fn arbitrary_payload_never_panics_the_parser(payload in ".{0,300}") {
        match Request::parse(&payload) {
            Ok(_) => {}
            Err(e) => prop_assert_eq!(e.code(), "bad_request"),
        }
    }

    /// Every request built from arbitrary field values round-trips through
    /// its own JSON — escaping holds under quotes, backslashes and
    /// multibyte characters.
    #[test]
    fn requests_round_trip(
        session in ".{1,60}",
        text in ".{0,200}",
        question in ".{0,120}",
        openness_bits in 0u32..1000,
    ) {
        let turn = Request::Turn { session: session.clone(), text };
        prop_assert_eq!(Request::parse(&turn.to_json()).unwrap(), turn);
        let open = Request::Open {
            session: session.clone(),
            question,
            user_name: "user".into(),
            expertise: "analyst".into(),
            domain: "general".into(),
            openness: f64::from(openness_bits) / 1000.0,
            dataset: None,
        };
        prop_assert_eq!(Request::parse(&open.to_json()).unwrap(), open);
        let inspect = Request::Inspect { session };
        prop_assert_eq!(Request::parse(&inspect.to_json()).unwrap(), inspect);
    }

    /// Typed error replies are themselves valid flat JSON whatever the
    /// detail text contains — a failure path must never produce garbage.
    #[test]
    fn error_replies_stay_parseable(code in ".{1,20}", detail in ".{0,200}") {
        let reply = error_reply(&code, &detail);
        let fields = matilda_provenance::json::parse_flat_object(&reply);
        prop_assert!(fields.is_some(), "unparseable error reply: {reply}");
    }
}

/// A frame that promises more than it delivers, then disconnects — the
/// "mid-frame disconnect" case, deterministic edition.
#[test]
fn mid_frame_disconnect_is_torn() {
    for promised in [1usize, 5, 100, MAX_FRAME_BYTES] {
        for delivered in [0usize, 1, 3] {
            if delivered >= promised {
                continue;
            }
            let mut buf = (promised as u32).to_be_bytes().to_vec();
            buf.extend(std::iter::repeat_n(b'x', delivered));
            match read_frame(&mut Cursor::new(buf)) {
                Err(WireError::Torn { expected, got }) => {
                    assert_eq!((expected, got), (promised, delivered));
                }
                other => panic!("expected Torn for {promised}/{delivered}, got {other:?}"),
            }
        }
    }
}
