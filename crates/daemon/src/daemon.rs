//! Assembly: a resident daemon from store + catalog + scheduler + servers.
//!
//! [`Daemon::start`] wires the pieces together: it opens the durable
//! session store, runs the startup recovery pass (resurrecting every
//! in-flight log from the previous life under its logged seed), starts
//! the scheduler thread, binds the Unix-socket wire server, optionally
//! binds the HTTP observability listener, and registers the daemon behind
//! the global `/sessions` and `/drain` routes.
//!
//! The scheduler thread **adopts the starting thread's resilience scope**
//! (`fault::adopt`), so a chaos test that activated a fault plan and a
//! `TestClock` before `Daemon::start` governs every session the daemon
//! creates — injected store faults, virtual time, the lot. Production
//! starts have no scope and run on the system clock; the same code serves
//! both.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::Arc;
use std::time::Duration;

use matilda_core::config::PlatformConfig;
use matilda_core::sessionstore::{recover, SessionStore, StoreConfig};
use matilda_resilience::fault;
use matilda_telemetry as telemetry;

use crate::catalog;
use crate::manager::SessionManager;
use crate::scheduler::{Command, CommandQueue, DrainSummary, TickScheduler};
use crate::server::{ConnLimits, TcpWireServer, WireServer};

/// Everything a daemon needs to come up.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Unix socket path for the wire protocol.
    pub socket: PathBuf,
    /// Optional `host:port` for the HTTP observability listener
    /// (`/metrics`, `/sessions`, `/drain`, ...).
    pub http: Option<String>,
    /// Default catalog dataset for `open` requests that do not pick one —
    /// and the dataset recovery resolves, since logs record the design
    /// conversation, not the data.
    pub dataset: String,
    /// Per-session platform config; the per-session seed is derived from
    /// `platform.seed` and the session id.
    pub platform: PlatformConfig,
    /// Durable store root; `None` keeps the fleet in memory only.
    pub store_dir: Option<PathBuf>,
    /// Optional `host:port` to expose the wire protocol over TCP. Refused
    /// unless `token` is also set: the Unix socket is gated by file
    /// permissions, a TCP port is not.
    pub tcp: Option<String>,
    /// Shared secret TCP connections must present in an `auth` op before
    /// any other request is honoured.
    pub token: Option<String>,
}

impl DaemonConfig {
    /// A config with defaults suitable for tests: quick platform config,
    /// no HTTP listener, no store.
    pub fn new(socket: impl Into<PathBuf>) -> Self {
        Self {
            socket: socket.into(),
            http: None,
            dataset: catalog::DEFAULT_DATASET.to_string(),
            platform: PlatformConfig::quick(),
            store_dir: None,
            tcp: None,
            token: None,
        }
    }
}

/// A running daemon. Dropping it without [`Daemon::shutdown`] still stops
/// the servers, but a graceful drain is on the caller.
pub struct Daemon {
    queue: Arc<CommandQueue>,
    server: Option<WireServer>,
    tcp_server: Option<TcpWireServer>,
    observability: Option<telemetry::expose::ObservabilityServer>,
    scheduler: Option<std::thread::JoinHandle<DrainSummary>>,
    drained: Arc<AtomicBool>,
    recovered: Vec<String>,
}

// Push `command` (built around `tx`) and wait for the scheduler's reply.
fn ask(
    queue: &CommandQueue,
    build: impl FnOnce(Sender<String>) -> Command,
    wait: Duration,
) -> Option<String> {
    let (tx, rx) = channel();
    if queue.push(build(tx)).is_err() {
        return None;
    }
    rx.recv_timeout(wait).ok()
}

impl Daemon {
    /// Start a daemon. Blocks until recovery has finished and the wire
    /// socket is accepting, so a caller that returns from `start` can
    /// immediately connect and see the resurrected fleet.
    pub fn start(config: DaemonConfig) -> std::io::Result<Self> {
        let scope = fault::handle();
        let queue = Arc::new(CommandQueue::new());
        let drained = Arc::new(AtomicBool::new(false));
        let (ready_tx, ready_rx) = channel::<Result<Vec<String>, String>>();

        let sched_queue = Arc::clone(&queue);
        let sched_drained = Arc::clone(&drained);
        let sched_config = config.clone();
        let scheduler = std::thread::Builder::new()
            .name("matilda-daemon-scheduler".to_string())
            .spawn(move || {
                // Inherit the starter's chaos scope and clock (no-op when
                // none is active).
                let _adopt = fault::adopt(scope);
                let store = match &sched_config.store_dir {
                    Some(dir) => match SessionStore::open(StoreConfig::new(dir)) {
                        Ok(store) => Some(store),
                        Err(e) => {
                            let _ = ready_tx.send(Err(format!("store open failed: {e}")));
                            return DrainSummary {
                                suspended: Vec::new(),
                                bounced: 0,
                            };
                        }
                    },
                    None => None,
                };
                let mut manager = SessionManager::new(
                    sched_config.platform.clone(),
                    store,
                    &sched_config.dataset,
                );
                // Resurrect the previous life's in-flight fleet before the
                // socket opens: recovery replays each log under its logged
                // seed, so digests match the run that wrote it.
                let mut recovered_ids = Vec::new();
                if let Some(store) = manager.store() {
                    let default_dataset = sched_config.dataset.clone();
                    // Logs that recorded their dataset resolve it by name;
                    // a session whose dataset left the catalog is refused
                    // (typed `DatasetMissing`) instead of silently replayed
                    // over different data. Pre-dataset-field logs fall back
                    // to the daemon default, as before.
                    let report = recover(store, manager.base_config(), move |meta| {
                        match &meta.dataset {
                            Some(name) => catalog::resolve(name),
                            None => catalog::resolve(&default_dataset),
                        }
                    });
                    for resumed in report.resumed {
                        recovered_ids.push(resumed.id.clone());
                        manager.adopt(resumed.id, resumed.session, resumed.dataset);
                    }
                }
                let scheduler = TickScheduler::new(manager, sched_queue);
                let _ = ready_tx.send(Ok(recovered_ids));
                let summary = scheduler.run();
                sched_drained.store(true, Ordering::SeqCst);
                summary
            })?;

        let recovered = match ready_rx.recv() {
            Ok(Ok(ids)) => ids,
            Ok(Err(detail)) => {
                let _ = scheduler.join();
                return Err(std::io::Error::other(detail));
            }
            Err(_) => {
                let _ = scheduler.join();
                return Err(std::io::Error::other("scheduler died during startup"));
            }
        };

        // Route the global HTTP surface through the scheduler.
        let sessions_queue = Arc::clone(&queue);
        telemetry::expose::register_sessions_provider(move || {
            ask(
                &sessions_queue,
                |reply| Command::Sessions { reply },
                Duration::from_secs(5),
            )
            .unwrap_or_else(|| "{\"draining\":true,\"live\":[]}".to_string())
        });
        let drain_queue = Arc::clone(&queue);
        telemetry::expose::register_drain_provider(move || {
            ask(
                &drain_queue,
                |reply| Command::Drain { reply },
                Duration::from_secs(30),
            )
            .unwrap_or_else(|| "{\"ok\":true,\"drained\":true,\"already\":true}".to_string())
        });

        // One limit set across both doors: the connection cap bounds the
        // daemon's total handler-thread count, not per-listener counts.
        let limits = ConnLimits::from_env();
        let server =
            WireServer::bind_with(&config.socket, Arc::clone(&queue), Arc::clone(&limits))?;
        let tcp_server = match &config.tcp {
            Some(addr) => {
                let token = config.token.clone().unwrap_or_default();
                if token.is_empty() {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::InvalidInput,
                        "refusing to expose the daemon over TCP without a token \
                         (set MATILDA_DAEMON_TOKEN or --token)",
                    ));
                }
                Some(TcpWireServer::bind(
                    addr,
                    Arc::clone(&queue),
                    Arc::new(token),
                    Arc::clone(&limits),
                )?)
            }
            None => None,
        };
        let observability = match &config.http {
            Some(addr) => Some(telemetry::expose::ObservabilityServer::bind(addr)?),
            None => None,
        };
        telemetry::log::info("daemon", "daemon resident")
            .field("socket", config.socket.display().to_string())
            .field("recovered", recovered.len() as u64)
            .emit();
        Ok(Self {
            queue,
            server: Some(server),
            tcp_server,
            observability,
            scheduler: Some(scheduler),
            drained,
            recovered,
        })
    }

    /// The command queue (tests drive the scheduler through it directly).
    pub fn queue(&self) -> Arc<CommandQueue> {
        Arc::clone(&self.queue)
    }

    /// Session ids resurrected by the startup recovery pass.
    pub fn recovered(&self) -> &[String] {
        &self.recovered
    }

    /// The HTTP observability address, when one was configured.
    pub fn http_addr(&self) -> Option<std::net::SocketAddr> {
        self.observability.as_ref().map(|o| o.addr())
    }

    /// The TCP wire address, when the TCP door was configured (with the
    /// real port when bound to port 0).
    pub fn tcp_addr(&self) -> Option<std::net::SocketAddr> {
        self.tcp_server.as_ref().map(|s| s.addr())
    }

    /// Whether a drain has completed.
    pub fn is_drained(&self) -> bool {
        self.drained.load(Ordering::SeqCst)
    }

    /// Trigger a graceful drain and wait for it to settle; idempotent.
    pub fn drain(&self) -> String {
        ask(
            &self.queue,
            |reply| Command::Drain { reply },
            Duration::from_secs(30),
        )
        .unwrap_or_else(|| "{\"ok\":true,\"drained\":true,\"already\":true}".to_string())
    }

    /// Drain (if not already drained), stop both servers, unregister the
    /// HTTP providers and join the scheduler. Returns the drain summary.
    pub fn shutdown(mut self) -> DrainSummary {
        if !self.is_drained() {
            self.drain();
        }
        self.stop_front_end();
        let summary = match self.scheduler.take() {
            Some(handle) => handle.join().unwrap_or(DrainSummary {
                suspended: Vec::new(),
                bounced: 0,
            }),
            None => DrainSummary {
                suspended: Vec::new(),
                bounced: 0,
            },
        };
        telemetry::log::info("daemon", "daemon stopped")
            .field("suspended", summary.suspended.len() as u64)
            .emit();
        summary
    }

    fn stop_front_end(&mut self) {
        telemetry::expose::clear_sessions_provider();
        telemetry::expose::clear_drain_provider();
        if let Some(server) = self.server.take() {
            server.shutdown();
        }
        if let Some(tcp_server) = self.tcp_server.take() {
            tcp_server.shutdown();
        }
        if let Some(observability) = self.observability.take() {
            observability.shutdown();
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        self.queue.close();
        self.stop_front_end();
        if let Some(handle) = self.scheduler.take() {
            // Closing the queue makes the scheduler suspend the fleet and
            // exit on its next idle tick (see `TickScheduler::run`).
            let _ = handle.join();
        }
    }
}
