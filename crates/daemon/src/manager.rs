//! The session fleet: many concurrent `DesignSession`s keyed by id.
//!
//! The manager owns every live session plus the optional durable store
//! behind them. It is deliberately single-owner, not `Sync`: all mutation
//! happens on the scheduler thread, so sessions need no locks and the
//! at-most-one-in-flight-turn-per-session invariant is structural rather
//! than defended. Concurrency lives one layer down (connection threads)
//! and talks to the manager through the scheduler's command queue.

use matilda_core::config::PlatformConfig;
use matilda_core::error::PlatformError;
use matilda_core::session::DesignSession;
use matilda_core::sessionstore::{self, SessionStore};
use matilda_provenance::json::escape;

use crate::catalog;

/// One resident session plus the daemon-side bookkeeping around it.
struct Entry {
    session: DesignSession,
    /// Catalog dataset the session designs over (recovery needs the name).
    dataset: String,
}

/// Why an `open` was refused.
#[derive(Debug, Clone, PartialEq)]
pub enum OpenError {
    /// The id is already live in this daemon or has durable records.
    Exists,
    /// The requested dataset is not in the catalog.
    UnknownDataset(String),
    /// The durable store rejected the new log.
    Store(String),
}

/// Why a `turn` was refused.
#[derive(Debug)]
pub enum TurnError {
    /// No session with that id is resident.
    Unknown,
    /// The session already said goodbye.
    Closed,
    /// The turn itself failed inside the platform.
    Step(PlatformError),
}

/// What `inspect` reports about one resident session — the introspection
/// surface the e2e isolation checks gate on.
#[derive(Debug, Clone, PartialEq)]
pub struct InspectReport {
    /// Successful turns so far.
    pub turns: usize,
    /// Stable, ephemeral-id-free provenance digest.
    pub digest: u64,
    /// The session's trace id.
    pub trace_id: u64,
    /// Whether every recorded provenance event carries this session's own
    /// trace id — `false` would mean another session's work bled in.
    pub trace_coherent: bool,
    /// Whether the session has closed conversationally.
    pub closed: bool,
    /// Provenance events recorded so far.
    pub events: usize,
}

// FNV-1a over the session id: a tiny, stable hash for deriving per-session
// seeds from the daemon's base seed.
fn fnv1a(text: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in text.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The fleet owner. See the module docs for the threading contract.
pub struct SessionManager {
    entries: std::collections::BTreeMap<String, Entry>,
    store: Option<SessionStore>,
    base: PlatformConfig,
    default_dataset: String,
}

impl SessionManager {
    /// A new, empty fleet. `base` supplies every per-session config except
    /// the seed, which is derived per session id so two sessions never
    /// share a stochastic stream; `store` makes every turn durable.
    pub fn new(base: PlatformConfig, store: Option<SessionStore>, default_dataset: &str) -> Self {
        Self {
            entries: std::collections::BTreeMap::new(),
            store,
            base,
            default_dataset: default_dataset.to_string(),
        }
    }

    /// The per-session config: the base with a session-specific seed.
    pub fn config_for(&self, id: &str) -> PlatformConfig {
        PlatformConfig {
            seed: self.base.seed ^ fnv1a(id),
            ..self.base.clone()
        }
    }

    /// The base (fleet-wide) config, as recovery wants it.
    pub fn base_config(&self) -> &PlatformConfig {
        &self.base
    }

    /// The durable store, if one is attached.
    pub fn store(&self) -> Option<&SessionStore> {
        self.store.as_ref()
    }

    /// Ids of resident sessions, sorted.
    pub fn ids(&self) -> Vec<String> {
        self.entries.keys().cloned().collect()
    }

    /// Number of resident sessions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the fleet is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether `id` is resident and still conversationally open.
    pub fn is_open(&self, id: &str) -> bool {
        self.entries
            .get(id)
            .map(|e| !e.session.is_closed())
            .unwrap_or(false)
    }

    /// Open a fresh session. The public name is sanitized into the store's
    /// id alphabet first, so the wire name and the on-disk log agree.
    /// Returns `(id, opening narration, trace id)`.
    pub fn open(
        &mut self,
        name: &str,
        question: &str,
        user: matilda_conversation::UserProfile,
        dataset: Option<&str>,
    ) -> Result<(String, String, u64), OpenError> {
        let id = sessionstore::sanitize_id(name);
        if self.entries.contains_key(&id) {
            return Err(OpenError::Exists);
        }
        if let Some(store) = &self.store {
            // A durable log under this id — even a cleanly closed one —
            // must not be appended to by an unrelated new session.
            if store.has_records(&id) {
                return Err(OpenError::Exists);
            }
        }
        let dataset = dataset.unwrap_or(&self.default_dataset).to_string();
        let frame =
            catalog::resolve(&dataset).ok_or_else(|| OpenError::UnknownDataset(dataset.clone()))?;
        let config = self.config_for(&id);
        let mut session = DesignSession::new(id.clone(), question, frame, user, config);
        // Label before attaching: the store's meta record carries the
        // dataset name, so a future daemon's recovery pass can resolve the
        // same data instead of guessing a default.
        session.set_dataset_label(&dataset);
        if let Some(store) = &self.store {
            session
                .attach_store(store)
                .map_err(|e| OpenError::Store(e.to_string()))?;
        }
        let opening = session.opening().to_string();
        let trace = session.trace_id();
        self.entries.insert(id.clone(), Entry { session, dataset });
        Ok((id, opening, trace))
    }

    /// Adopt an already-built session (startup recovery). Replaces any
    /// resident entry under the same id. `dataset` is the name the
    /// session's log recorded; pre-dataset-field logs pass `None` and get
    /// the daemon default.
    pub fn adopt(&mut self, id: String, session: DesignSession, dataset: Option<String>) {
        let dataset = dataset.unwrap_or_else(|| self.default_dataset.clone());
        self.entries.insert(id, Entry { session, dataset });
    }

    /// Feed one turn to session `id`. Returns the step outcome plus the
    /// 1-based index of the turn within the session.
    pub fn turn(
        &mut self,
        id: &str,
        text: &str,
    ) -> Result<(matilda_core::session::StepOutcome, usize), TurnError> {
        let entry = self.entries.get_mut(id).ok_or(TurnError::Unknown)?;
        if entry.session.is_closed() {
            return Err(TurnError::Closed);
        }
        let outcome = entry.session.step(text).map_err(TurnError::Step)?;
        let index = entry.session.turn_log().len();
        Ok((outcome, index))
    }

    /// Introspect session `id`.
    pub fn inspect(&self, id: &str) -> Option<InspectReport> {
        let entry = self.entries.get(id)?;
        let session = &entry.session;
        let trace = session.trace_id();
        let events = session.recorder().snapshot();
        let trace_coherent = events
            .iter()
            .all(|e| e.trace_id.is_none() || e.trace_id == Some(trace));
        Some(InspectReport {
            turns: session.turn_log().len(),
            digest: session.provenance_digest(),
            trace_id: trace,
            trace_coherent,
            closed: session.is_closed(),
            events: events.len(),
        })
    }

    /// Suspend the whole fleet: drop every session *without* a
    /// conversational close, exactly like PR 8's simulated crash. Durable
    /// logs keep their `in_flight` class on disk, so a restarted daemon's
    /// recovery pass resurrects the fleet by replay — which is why drain
    /// must not inject a goodbye turn (it would shift the event fold and
    /// break digest equality with an uninterrupted run). Returns the
    /// suspended session ids.
    pub fn suspend_all(&mut self) -> Vec<String> {
        let ids: Vec<String> = self.entries.keys().cloned().collect();
        // Dropping an entry drops its `SessionLog`; every turn was already
        // written through at its commit point, so there is nothing left to
        // flush beyond the file handles themselves.
        self.entries.clear();
        ids
    }

    /// Suspend one session (critical-overload shedding): drop it without a
    /// conversational close, exactly like [`SessionManager::suspend_all`]
    /// does for the whole fleet — the durable log stays `in_flight`, so the
    /// session resurrects on the next recovery pass (or daemon restart).
    /// Returns whether `id` was resident.
    pub fn suspend(&mut self, id: &str) -> bool {
        self.entries.remove(id).is_some()
    }

    /// The user a resident session is talking to, for expertise-calibrated
    /// narration.
    pub fn user(&self, id: &str) -> Option<&matilda_conversation::UserProfile> {
        self.entries.get(id).map(|e| e.session.user())
    }

    /// Apply a brownout to every resident session: scale per-turn deadline
    /// budgets by `deadline_scale` and cap creative-search generations at
    /// `generation_cap` (both restored by a later nominal call with
    /// `1.0, None`).
    pub fn apply_brownout(&mut self, deadline_scale: f64, generation_cap: Option<usize>) {
        for entry in self.entries.values_mut() {
            entry.session.set_brownout(deadline_scale, generation_cap);
        }
    }

    /// Total open circuit breakers across the fleet — one of the overload
    /// governor's input signals (open breakers mean dependencies are
    /// already failing; more admission would pile on).
    pub fn open_breakers(&self) -> usize {
        self.entries
            .values()
            .map(|e| e.session.open_breakers())
            .sum()
    }

    /// The `/sessions` listing: live fleet state merged with the durable
    /// store's classified scan (`clean_closed` / `in_flight` / `corrupt`),
    /// plus the scheduler's admission state (`load_level`, `queue_depth`)
    /// so operators see overload where they already look for sessions.
    pub fn listing_json_with_load(
        &self,
        draining: bool,
        load_level: &str,
        queue_depth: usize,
    ) -> String {
        let listing = self.listing_json(draining);
        debug_assert!(listing.starts_with('{'));
        format!(
            "{{\"load_level\":\"{}\",\"queue_depth\":{queue_depth},{}",
            escape(load_level),
            &listing[1..]
        )
    }

    /// The `/sessions` listing without admission state (see
    /// [`SessionManager::listing_json_with_load`]).
    pub fn listing_json(&self, draining: bool) -> String {
        let mut live = String::new();
        for (id, entry) in &self.entries {
            if !live.is_empty() {
                live.push(',');
            }
            live.push_str(&format!(
                "{{\"id\":\"{}\",\"dataset\":\"{}\",\"turns\":{},\"closed\":{},\"digest\":{}}}",
                escape(id),
                escape(&entry.dataset),
                entry.session.turn_log().len(),
                entry.session.is_closed(),
                entry.session.provenance_digest(),
            ));
        }
        let store = match &self.store {
            Some(store) => store.listing_json(),
            None => "{\"sessions\":[],\"quarantined\":[]}".to_string(),
        };
        format!("{{\"draining\":{draining},\"live\":[{live}],\"store\":{store}}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manager() -> SessionManager {
        SessionManager::new(PlatformConfig::quick(), None, catalog::DEFAULT_DATASET)
    }

    fn ada() -> matilda_conversation::UserProfile {
        matilda_conversation::UserProfile::novice("Ada", "urbanism")
    }

    #[test]
    fn open_turn_inspect_round_trip() {
        let mut m = manager();
        let (id, opening, trace) = m
            .open("city one", "what drives label?", ada(), None)
            .unwrap();
        assert_eq!(id, "city_one", "names are sanitized into store ids");
        assert!(!opening.is_empty());
        let (outcome, index) = m.turn(&id, "I want to predict 'label'").unwrap();
        assert!(!outcome.reply.is_empty());
        assert_eq!(index, 1);
        let report = m.inspect(&id).unwrap();
        assert_eq!(report.turns, 1);
        assert_eq!(report.trace_id, trace);
        assert!(report.trace_coherent);
        assert!(!report.closed);
    }

    #[test]
    fn duplicate_and_unknown_are_typed() {
        let mut m = manager();
        m.open("dup", "q", ada(), None).unwrap();
        assert_eq!(m.open("dup", "q", ada(), None), Err(OpenError::Exists));
        assert!(matches!(
            m.open("other", "q", ada(), Some("nope")),
            Err(OpenError::UnknownDataset(_))
        ));
        assert!(matches!(m.turn("ghost", "hi"), Err(TurnError::Unknown)));
        assert!(m.inspect("ghost").is_none());
    }

    #[test]
    fn sessions_do_not_share_seeds_or_traces() {
        let mut m = manager();
        let (a, _, trace_a) = m.open("a", "q", ada(), None).unwrap();
        let (b, _, trace_b) = m.open("b", "q", ada(), None).unwrap();
        assert_ne!(trace_a, trace_b);
        assert_ne!(m.config_for(&a).seed, m.config_for(&b).seed);
        m.turn(&a, "I want to predict 'label'").unwrap();
        m.turn(&b, "I want to predict 'label'").unwrap();
        let ia = m.inspect(&a).unwrap();
        let ib = m.inspect(&b).unwrap();
        assert!(ia.trace_coherent && ib.trace_coherent);
        assert_ne!(ia.trace_id, ib.trace_id);
    }

    #[test]
    fn suspend_empties_the_fleet() {
        let mut m = manager();
        m.open("s1", "q", ada(), None).unwrap();
        m.open("s2", "q", ada(), None).unwrap();
        let suspended = m.suspend_all();
        assert_eq!(suspended.len(), 2);
        assert!(m.is_empty());
        let listing = m.listing_json(true);
        assert!(listing.contains("\"draining\":true"), "{listing}");
        assert!(listing.contains("\"live\":[]"), "{listing}");
    }

    #[test]
    fn single_suspend_sheds_only_its_target() {
        let mut m = manager();
        m.open("keep", "q", ada(), None).unwrap();
        m.open("shed", "q", ada(), None).unwrap();
        assert!(m.suspend("shed"));
        assert!(!m.suspend("shed"), "second suspend is a no-op");
        assert!(m.is_open("keep"));
        assert!(!m.is_open("shed"));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn brownout_applies_to_every_resident_session() {
        let mut m = manager();
        let (a, _, _) = m.open("a", "q", ada(), None).unwrap();
        let (b, _, _) = m.open("b", "q", ada(), None).unwrap();
        m.apply_brownout(0.25, Some(1));
        for id in [&a, &b] {
            let entry = m.entries.get(id.as_str()).unwrap();
            let (scale, generations) = entry.session.brownout();
            assert!((scale - 0.25).abs() < 1e-9);
            assert_eq!(generations, 1);
        }
        m.apply_brownout(1.0, None);
        let (scale, _) = m.entries.get(a.as_str()).unwrap().session.brownout();
        assert!((scale - 1.0).abs() < 1e-9);
    }

    #[test]
    fn listing_with_load_prepends_admission_state() {
        let mut m = manager();
        m.open("s1", "q", ada(), None).unwrap();
        let listing = m.listing_json_with_load(false, "saturated", 7);
        assert!(
            listing.starts_with("{\"load_level\":\"saturated\""),
            "{listing}"
        );
        assert!(listing.contains("\"queue_depth\":7"), "{listing}");
        assert!(listing.contains("\"draining\":false"), "{listing}");
        assert!(listing.contains("\"live\":[{"), "{listing}");
    }
}
