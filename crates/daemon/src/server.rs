//! The wire front doors: Unix-socket (and optionally TCP) accept loops
//! and per-connection handlers.
//!
//! Each connection gets its own thread speaking the length-prefixed frame
//! protocol from [`crate::wire`]. Handlers never touch sessions — they
//! parse requests, enqueue [`Command`]s, and relay the scheduler's reply,
//! so a slow turn blocks exactly one client and never the accept loop.
//! Every protocol failure maps to a typed error reply (and, where the
//! stream is desynchronized, a close) — a misbehaving peer cannot panic or
//! hang the daemon.
//!
//! Overload hardening happens at three choke points, all shared between
//! the Unix and TCP listeners through one [`ConnLimits`]:
//!
//! - **connection cap** — past `MATILDA_DAEMON_MAX_CONNS` live
//!   connections the accept loop sheds new arrivals with a best-effort
//!   `overloaded` frame instead of spawning an unbounded thread pool;
//! - **frame-rate limiting** — a per-connection token bucket (refilled on
//!   the resilience clock, so chaos tests can drive it virtually) bounces
//!   over-rate frames with `overloaded` and closes the connection after
//!   three consecutive violations;
//! - **bounded admission** — a full command queue maps to the typed
//!   `overloaded` reply with a retry-after hint, a closed one to
//!   `shutting_down`.
//!
//! The TCP door additionally requires a shared-secret handshake
//! ([`ConnAuth::Required`]): until an `auth` op with the right token
//! arrives, **every** frame — wrong token, wrong op, garbage — gets the
//! byte-identical `unauthorized` reply after an escalating real-time
//! delay, so a probing peer cannot distinguish "bad token" from "valid
//! token but wrong op", and brute force is rate-bound. Unix connections
//! are pre-authenticated by socket-file permissions.

use std::io::ErrorKind;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc::channel;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use matilda_telemetry as telemetry;

use crate::scheduler::{names, Command, CommandQueue, PushError};
use crate::wire::{self, error_reply, overloaded_reply, Request};

/// How often an idle connection wakes up to check the stop flag.
const IDLE_POLL: Duration = Duration::from_millis(250);
/// Once a frame has started arriving, how long a stall may last.
const FRAME_TIMEOUT: Duration = Duration::from_secs(5);
/// How long a handler waits for the scheduler's reply before giving the
/// client a typed `timeout` error. Generous: a turn may run a full
/// creative search under a real clock.
const REPLY_TIMEOUT: Duration = Duration::from_secs(60);
/// Consecutive over-rate frames tolerated before the connection closes.
const RATE_LIMIT_STRIKES: u32 = 3;
/// Failed authentication attempts tolerated before the connection closes.
const AUTH_STRIKES: u32 = 3;

/// Shared connection-level limits. One instance is shared across every
/// listener (Unix and TCP), so the cap bounds the daemon's total thread
/// count, not per-door counts.
pub struct ConnLimits {
    max_conns: usize,
    frames_per_sec: u32,
    live: AtomicUsize,
}

impl ConnLimits {
    /// Explicit limits (mins clamped to 1).
    pub fn new(max_conns: usize, frames_per_sec: u32) -> Arc<Self> {
        Arc::new(Self {
            max_conns: max_conns.max(1),
            frames_per_sec: frames_per_sec.max(1),
            live: AtomicUsize::new(0),
        })
    }

    /// Limits from the environment: `MATILDA_DAEMON_MAX_CONNS` (default
    /// 64) and `MATILDA_DAEMON_FRAMES_PER_SEC` (default 50).
    pub fn from_env() -> Arc<Self> {
        let max_conns = std::env::var("MATILDA_DAEMON_MAX_CONNS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        let frames = std::env::var("MATILDA_DAEMON_FRAMES_PER_SEC")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(50);
        Self::new(max_conns, frames)
    }

    /// Connections currently being served.
    pub fn live(&self) -> usize {
        self.live.load(Ordering::SeqCst)
    }

    // Admit one connection, or None at the cap. The guard releases the
    // slot when the handler thread finishes.
    fn try_admit(self: &Arc<Self>) -> Option<ConnGuard> {
        let mut current = self.live.load(Ordering::SeqCst);
        loop {
            if current >= self.max_conns {
                return None;
            }
            match self.live.compare_exchange(
                current,
                current + 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => {
                    return Some(ConnGuard {
                        limits: Arc::clone(self),
                    })
                }
                Err(seen) => current = seen,
            }
        }
    }
}

/// RAII slot in the connection cap.
struct ConnGuard {
    limits: Arc<ConnLimits>,
}

impl Drop for ConnGuard {
    fn drop(&mut self) {
        self.limits.live.fetch_sub(1, Ordering::SeqCst);
    }
}

/// How a connection earns the right to issue commands.
#[derive(Clone)]
pub enum ConnAuth {
    /// Pre-authenticated — the Unix socket's file permissions already
    /// gated access.
    Granted,
    /// Must present this shared secret in an `auth` op first (TCP).
    Required {
        /// The expected token.
        token: Arc<String>,
    },
}

/// Compare two secrets without an early exit, so timing does not reveal
/// the length of the match prefix. Length inequality folds into the
/// accumulator instead of short-circuiting.
pub fn constant_time_eq(a: &str, b: &str) -> bool {
    let a = a.as_bytes();
    let b = b.as_bytes();
    let mut diff: u8 = if a.len() == b.len() { 0 } else { 1 };
    for i in 0..a.len().max(b.len()) {
        diff |= a.get(i).copied().unwrap_or(0) ^ b.get(i).copied().unwrap_or(0);
    }
    diff == 0
}

/// The stream surface both socket families share, so one handler serves
/// Unix and TCP connections.
pub trait WireStream: std::io::Read + std::io::Write + Send {
    /// Set the read timeout.
    fn set_read_deadline(&self, timeout: Option<Duration>) -> std::io::Result<()>;
    /// Set the write timeout.
    fn set_write_deadline(&self, timeout: Option<Duration>) -> std::io::Result<()>;
}

impl WireStream for UnixStream {
    fn set_read_deadline(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.set_read_timeout(timeout)
    }
    fn set_write_deadline(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.set_write_timeout(timeout)
    }
}

impl WireStream for TcpStream {
    fn set_read_deadline(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.set_read_timeout(timeout)
    }
    fn set_write_deadline(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.set_write_timeout(timeout)
    }
}

/// A listening Unix-socket wire server; accepts until shut down.
pub struct WireServer {
    path: PathBuf,
    stop: Arc<AtomicBool>,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl WireServer {
    /// Bind `path` (removing any stale socket file first) and start
    /// accepting connections that feed `queue`, with limits from the
    /// environment.
    pub fn bind(path: &Path, queue: Arc<CommandQueue>) -> std::io::Result<Self> {
        Self::bind_with(path, queue, ConnLimits::from_env())
    }

    /// Bind with explicit connection limits (shared with other doors).
    pub fn bind_with(
        path: &Path,
        queue: Arc<CommandQueue>,
        limits: Arc<ConnLimits>,
    ) -> std::io::Result<Self> {
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let accept_path = path.to_path_buf();
        let accept = std::thread::Builder::new()
            .name("matilda-daemon-accept".to_string())
            .spawn(move || {
                accept_loop(
                    listener.incoming(),
                    accept_stop,
                    queue,
                    ConnAuth::Granted,
                    limits,
                );
                let _ = std::fs::remove_file(&accept_path);
            })?;
        telemetry::log::info("daemon.server", "wire server listening")
            .field("socket", path.display().to_string())
            .emit();
        Ok(Self {
            path: path.to_path_buf(),
            stop,
            accept: Some(accept),
        })
    }

    /// The socket path this server listens on.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Stop accepting, wake the accept loop, and join every connection.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Nudge the blocking accept() awake.
        let _ = UnixStream::connect(&self.path);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = UnixStream::connect(&self.path);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

/// A listening TCP wire server. Speaks the same frame protocol as the
/// Unix door but demands the shared-secret `auth` handshake first — the
/// daemon refuses to construct one without a token.
pub struct TcpWireServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl TcpWireServer {
    /// Bind `addr` (e.g. `127.0.0.1:7333`, or port 0 for an ephemeral
    /// one) and start accepting authenticated connections that feed
    /// `queue`. `limits` is shared with the Unix door so the connection
    /// cap is global.
    pub fn bind(
        addr: &str,
        queue: Arc<CommandQueue>,
        token: Arc<String>,
        limits: Arc<ConnLimits>,
    ) -> std::io::Result<Self> {
        if token.is_empty() {
            return Err(std::io::Error::new(
                ErrorKind::InvalidInput,
                "refusing to expose the daemon over TCP without a token",
            ));
        }
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let auth = ConnAuth::Required { token };
        let accept = std::thread::Builder::new()
            .name("matilda-daemon-tcp-accept".to_string())
            .spawn(move || {
                accept_loop(listener.incoming(), accept_stop, queue, auth, limits);
            })?;
        telemetry::log::info("daemon.server", "tcp wire server listening")
            .field("addr", local.to_string())
            .emit();
        Ok(Self {
            addr: local,
            stop,
            accept: Some(accept),
        })
    }

    /// The bound address (with the real port when bound to port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, wake the accept loop, and join every connection.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for TcpWireServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

fn accept_loop<S, L>(
    incoming: L,
    stop: Arc<AtomicBool>,
    queue: Arc<CommandQueue>,
    auth: ConnAuth,
    limits: Arc<ConnLimits>,
) where
    S: WireStream + 'static,
    L: Iterator<Item = std::io::Result<S>>,
{
    let connections: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> =
        Arc::new(Mutex::new(Vec::new()));
    for stream in incoming {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let mut stream = match stream {
            Ok(stream) => stream,
            Err(_) => continue,
        };
        // Admission at the door: past the cap, shed with a typed frame
        // instead of spawning an unbounded number of handler threads.
        // Established connections are untouched — only new arrivals pay.
        let Some(guard) = limits.try_admit() else {
            telemetry::metrics::global().inc(names::CONNS_SHED);
            let _ = stream.set_write_deadline(Some(FRAME_TIMEOUT));
            let _ = wire::write_frame(
                &mut stream,
                &overloaded_reply("connection limit reached", 1000),
            );
            continue;
        };
        let conn_stop = Arc::clone(&stop);
        let conn_queue = Arc::clone(&queue);
        let conn_auth = auth.clone();
        let conn_limits = Arc::clone(&limits);
        let handle = std::thread::Builder::new()
            .name("matilda-daemon-conn".to_string())
            .spawn(move || {
                handle_connection(stream, conn_stop, conn_queue, conn_auth, conn_limits);
                drop(guard);
            });
        if let Ok(handle) = handle {
            let mut pool = connections.lock().unwrap();
            // Opportunistically reap finished handlers so the pool does
            // not grow with every connection the daemon ever served.
            pool.retain(|h| !h.is_finished());
            pool.push(handle);
        }
    }
    let handles: Vec<_> = connections.lock().unwrap().drain(..).collect();
    for handle in handles {
        let _ = handle.join();
    }
}

// Dispatch one parsed request; returns the JSON reply to frame back.
fn dispatch(request: Request, queue: &CommandQueue) -> String {
    let (tx, rx) = channel();
    let mut abandoned = None;
    let command = match request {
        Request::Ping => return "{\"ok\":true,\"pong\":true}".to_string(),
        // On an authenticated connection (or the pre-authenticated Unix
        // door) a repeat `auth` is an idempotent ok.
        Request::Auth { .. } => return "{\"ok\":true,\"authenticated\":true}".to_string(),
        Request::Open {
            session,
            question,
            user_name,
            expertise,
            domain,
            openness,
            dataset,
        } => {
            let level = match expertise.as_str() {
                "analyst" => matilda_conversation::Expertise::Analyst,
                "data_scientist" => matilda_conversation::Expertise::DataScientist,
                // Unknown labels degrade to novice, matching the session
                // store's meta parser.
                _ => matilda_conversation::Expertise::Novice,
            };
            Command::Open {
                session,
                question,
                user: matilda_conversation::UserProfile::new(user_name, level, domain, openness),
                dataset,
                reply: tx,
            }
        }
        Request::Turn { session, text } => {
            let (command, flag) = Command::turn_tracked(session, text, tx);
            abandoned = Some(flag);
            command
        }
        Request::Inspect { session } => Command::Inspect { session, reply: tx },
        Request::Sessions => Command::Sessions { reply: tx },
        Request::Drain => Command::Drain { reply: tx },
    };
    match queue.push(command) {
        Ok(()) => {}
        Err(PushError::Full(_)) => {
            // Admission control at the queue: typed, with a retry hint.
            return overloaded_reply("command queue is full", 500);
        }
        Err(PushError::Closed(_)) => return error_reply("shutting_down", "daemon has drained"),
    }
    match rx.recv_timeout(REPLY_TIMEOUT) {
        Ok(body) => body,
        Err(_) => {
            // Mark the turn abandoned so the scheduler skips it instead
            // of mutating the session behind a reply nobody reads.
            if let Some(flag) = abandoned {
                flag.store(true, Ordering::SeqCst);
            }
            error_reply("timeout", "scheduler did not reply in time")
        }
    }
}

// The byte-identical refusal every unauthenticated frame gets, whatever
// its content — indistinguishability is the point.
fn unauthorized() -> String {
    error_reply("unauthorized", "authentication required")
}

fn handle_connection<S: WireStream>(
    mut stream: S,
    stop: Arc<AtomicBool>,
    queue: Arc<CommandQueue>,
    auth: ConnAuth,
    limits: Arc<ConnLimits>,
) {
    use std::io::Read;
    let _ = stream.set_write_deadline(Some(FRAME_TIMEOUT));
    let mut authed = matches!(auth, ConnAuth::Granted);
    let mut auth_failures: u32 = 0;
    // Token-bucket frame-rate limit on the resilience clock (virtual
    // under a TestClock, real otherwise): a full-rate burst is allowed,
    // then frames drain one token each at `frames_per_sec` refill.
    let clock = matilda_resilience::fault::clock();
    let rate = f64::from(limits.frames_per_sec);
    let mut tokens = rate;
    let mut refilled = clock.now();
    let mut over_rate_streak: u32 = 0;
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        // Idle wait: read the first byte of the next frame with a short
        // timeout so a silent client never pins this thread past shutdown.
        let _ = stream.set_read_deadline(Some(IDLE_POLL));
        let mut first = [0u8; 1];
        match stream.read(&mut first) {
            Ok(0) => return, // clean disconnect
            Ok(_) => {}
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => continue,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return,
        }
        // A frame has started: stalls from here are protocol errors, not
        // idleness. The consumed byte is chained back in front.
        let _ = stream.set_read_deadline(Some(FRAME_TIMEOUT));
        let mut reader = (&first[..]).chain(&mut stream);
        match wire::read_frame(&mut reader) {
            Ok(Some(payload)) => {
                let now = clock.now();
                tokens = (tokens + now.saturating_sub(refilled).as_secs_f64() * rate).min(rate);
                refilled = now;
                if tokens < 1.0 {
                    over_rate_streak += 1;
                    let _ = wire::write_frame(
                        &mut stream,
                        &overloaded_reply("frame rate limit exceeded", 100),
                    );
                    if over_rate_streak >= RATE_LIMIT_STRIKES {
                        return;
                    }
                    continue;
                }
                tokens -= 1.0;
                over_rate_streak = 0;
                if !authed {
                    // Until the handshake lands, the ONLY accepted frame
                    // is `auth` with the right token; everything else —
                    // wrong token, wrong op, garbage — earns the same
                    // bytes after an escalating real-time delay, so the
                    // reply channel leaks nothing.
                    let granted = match (&auth, Request::parse(&payload)) {
                        (ConnAuth::Required { token }, Ok(Request::Auth { token: offered })) => {
                            constant_time_eq(&offered, token)
                        }
                        _ => false,
                    };
                    if granted {
                        authed = true;
                        if wire::write_frame(&mut stream, "{\"ok\":true,\"authenticated\":true}")
                            .is_err()
                        {
                            return;
                        }
                        continue;
                    }
                    auth_failures += 1;
                    telemetry::metrics::global().inc(names::AUTH_FAILURES);
                    // Real (not virtual) backoff: brute force pays wall
                    // clock even under a TestClock.
                    std::thread::sleep(Duration::from_millis(50 * u64::from(auth_failures)));
                    let _ = wire::write_frame(&mut stream, &unauthorized());
                    if auth_failures >= AUTH_STRIKES {
                        return;
                    }
                    continue;
                }
                let reply = match Request::parse(&payload) {
                    Ok(request) => dispatch(request, &queue),
                    Err(e) => error_reply(e.code(), &e.to_string()),
                };
                if wire::write_frame(&mut stream, &reply).is_err() {
                    return;
                }
            }
            Ok(None) => return,
            Err(e) => {
                // Torn, oversized or undecodable input leaves the stream
                // desynchronized: send the typed error (best effort) and
                // close. The accept loop is unaffected. Unauthenticated
                // peers get the uniform refusal instead of a frame-level
                // diagnosis.
                telemetry::metrics::global().inc("daemon.wire_errors");
                let body = if authed {
                    error_reply(e.code(), &e.to_string())
                } else {
                    telemetry::metrics::global().inc(names::AUTH_FAILURES);
                    unauthorized()
                };
                let _ = wire::write_frame(&mut stream, &body);
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::write_frame;
    use std::io::Write;

    fn sock_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("matilda-daemon-{tag}-{}.sock", std::process::id()))
    }

    #[test]
    fn ping_answered_inline_and_garbage_gets_typed_error() {
        let path = sock_path("ping");
        let queue = Arc::new(CommandQueue::new());
        let server = WireServer::bind(&path, Arc::clone(&queue)).unwrap();

        let mut client = UnixStream::connect(&path).unwrap();
        write_frame(&mut client, "{\"op\":\"ping\"}").unwrap();
        let reply = wire::read_frame(&mut client).unwrap().unwrap();
        assert!(reply.contains("\"pong\":true"), "{reply}");

        // Bad JSON on the same connection: typed error, connection stays.
        write_frame(&mut client, "not json").unwrap();
        let reply = wire::read_frame(&mut client).unwrap().unwrap();
        assert!(reply.contains("bad_request"), "{reply}");

        // An oversized length prefix: typed error, then close — and the
        // accept loop still serves fresh connections.
        let mut rogue = UnixStream::connect(&path).unwrap();
        rogue.write_all(&u32::MAX.to_be_bytes()).unwrap();
        rogue.flush().unwrap();
        let reply = wire::read_frame(&mut rogue).unwrap().unwrap();
        assert!(reply.contains("frame_too_large"), "{reply}");
        let mut fresh = UnixStream::connect(&path).unwrap();
        write_frame(&mut fresh, "{\"op\":\"ping\"}").unwrap();
        let reply = wire::read_frame(&mut fresh).unwrap().unwrap();
        assert!(reply.contains("\"pong\":true"), "{reply}");

        server.shutdown();
        assert!(!path.exists(), "socket file removed on shutdown");
    }

    #[test]
    fn closed_queue_means_typed_shutting_down() {
        let path = sock_path("closedq");
        let queue = Arc::new(CommandQueue::new());
        queue.close();
        let server = WireServer::bind(&path, Arc::clone(&queue)).unwrap();
        let mut client = UnixStream::connect(&path).unwrap();
        write_frame(&mut client, "{\"op\":\"sessions\"}").unwrap();
        let reply = wire::read_frame(&mut client).unwrap().unwrap();
        assert!(reply.contains("shutting_down"), "{reply}");
        server.shutdown();
    }

    #[test]
    fn full_queue_means_typed_overloaded_with_retry_hint() {
        let path = sock_path("fullq");
        let queue = Arc::new(CommandQueue::with_capacity(1));
        // Pre-fill the queue; no scheduler is draining it.
        let (tx, _rx) = channel();
        queue.push(Command::turn("s", "x", tx)).ok().unwrap();
        let server = WireServer::bind(&path, Arc::clone(&queue)).unwrap();
        let mut client = UnixStream::connect(&path).unwrap();
        write_frame(
            &mut client,
            "{\"op\":\"turn\",\"session\":\"s\",\"text\":\"y\"}",
        )
        .unwrap();
        let reply = wire::read_frame(&mut client).unwrap().unwrap();
        assert!(reply.contains("\"code\":\"overloaded\""), "{reply}");
        assert!(reply.contains("\"retry_after_ms\":500"), "{reply}");
        server.shutdown();
    }

    #[test]
    fn connection_cap_sheds_new_arrivals_not_established_ones() {
        let path = sock_path("cap");
        let queue = Arc::new(CommandQueue::new());
        let limits = ConnLimits::new(1, 1000);
        let server = WireServer::bind_with(&path, Arc::clone(&queue), limits).unwrap();
        // First client occupies the single slot (the ping round-trip
        // proves its handler thread is live).
        let mut held = UnixStream::connect(&path).unwrap();
        write_frame(&mut held, "{\"op\":\"ping\"}").unwrap();
        let reply = wire::read_frame(&mut held).unwrap().unwrap();
        assert!(reply.contains("\"pong\":true"), "{reply}");
        // Second client is shed with a typed frame, then closed.
        let mut shed = UnixStream::connect(&path).unwrap();
        let frame = wire::read_frame(&mut shed).unwrap().unwrap();
        assert!(frame.contains("\"code\":\"overloaded\""), "{frame}");
        // The established client still works.
        write_frame(&mut held, "{\"op\":\"ping\"}").unwrap();
        let reply = wire::read_frame(&mut held).unwrap().unwrap();
        assert!(reply.contains("\"pong\":true"), "{reply}");
        server.shutdown();
    }

    #[test]
    fn frame_rate_limit_bounces_then_closes() {
        let path = sock_path("rate");
        let queue = Arc::new(CommandQueue::new());
        // Burst of 2, then every further instant frame is over-rate.
        let limits = ConnLimits::new(8, 2);
        let server = WireServer::bind_with(&path, Arc::clone(&queue), limits).unwrap();
        let mut client = UnixStream::connect(&path).unwrap();
        let mut bounced = 0;
        for _ in 0..2 + RATE_LIMIT_STRIKES {
            write_frame(&mut client, "{\"op\":\"ping\"}").unwrap();
            let reply = wire::read_frame(&mut client).unwrap().unwrap();
            if reply.contains("\"code\":\"overloaded\"") {
                bounced += 1;
            }
        }
        assert_eq!(bounced, RATE_LIMIT_STRIKES, "over-rate frames bounce typed");
        // Third strike closed the stream.
        assert!(
            write_frame(&mut client, "{\"op\":\"ping\"}").is_err()
                || wire::read_frame(&mut client)
                    .map(|f| f.is_none())
                    .unwrap_or(true),
            "connection closes after repeated over-rate frames"
        );
        server.shutdown();
    }

    #[test]
    fn tcp_requires_auth_and_never_leaks_why() {
        let queue = Arc::new(CommandQueue::new());
        let limits = ConnLimits::new(8, 1000);
        let token = Arc::new("s3cret".to_string());
        let server = TcpWireServer::bind("127.0.0.1:0", Arc::clone(&queue), token, limits).unwrap();
        let addr = server.addr();

        // Wrong token and wrong op earn byte-identical refusals.
        let mut probe = TcpStream::connect(addr).unwrap();
        probe
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        write_frame(&mut probe, "{\"op\":\"auth\",\"token\":\"wrong\"}").unwrap();
        let wrong_token = wire::read_frame(&mut probe).unwrap().unwrap();
        write_frame(&mut probe, "{\"op\":\"ping\"}").unwrap();
        let wrong_op = wire::read_frame(&mut probe).unwrap().unwrap();
        assert_eq!(wrong_token, wrong_op, "refusals must be indistinguishable");
        assert!(wrong_token.contains("unauthorized"), "{wrong_token}");
        drop(probe);

        // The right token grants the session; ping works afterwards.
        let mut client = TcpStream::connect(addr).unwrap();
        client
            .set_read_timeout(Some(Duration::from_secs(5)))
            .unwrap();
        write_frame(&mut client, "{\"op\":\"auth\",\"token\":\"s3cret\"}").unwrap();
        let reply = wire::read_frame(&mut client).unwrap().unwrap();
        assert!(reply.contains("\"authenticated\":true"), "{reply}");
        write_frame(&mut client, "{\"op\":\"ping\"}").unwrap();
        let reply = wire::read_frame(&mut client).unwrap().unwrap();
        assert!(reply.contains("\"pong\":true"), "{reply}");

        server.shutdown();
    }

    #[test]
    fn tcp_refuses_to_bind_without_a_token() {
        let queue = Arc::new(CommandQueue::new());
        let limits = ConnLimits::new(8, 1000);
        let err = match TcpWireServer::bind("127.0.0.1:0", queue, Arc::new(String::new()), limits) {
            Err(err) => err,
            Ok(_) => panic!("tokenless TCP bind must be refused"),
        };
        assert!(err.to_string().contains("without a token"), "{err}");
    }

    #[test]
    fn constant_time_eq_handles_lengths_and_content() {
        assert!(constant_time_eq("abc", "abc"));
        assert!(!constant_time_eq("abc", "abd"));
        assert!(!constant_time_eq("abc", "ab"));
        assert!(!constant_time_eq("", "x"));
        assert!(constant_time_eq("", ""));
    }
}
