//! The Unix-socket front door: accept loop and per-connection handlers.
//!
//! Each connection gets its own thread speaking the length-prefixed frame
//! protocol from [`crate::wire`]. Handlers never touch sessions — they
//! parse requests, enqueue [`Command`]s, and relay the scheduler's reply,
//! so a slow turn blocks exactly one client and never the accept loop.
//! Every protocol failure maps to a typed error reply (and, where the
//! stream is desynchronized, a close) — a misbehaving peer cannot panic or
//! hang the daemon.

use std::io::ErrorKind;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::channel;
use std::sync::{Arc, Mutex};
use std::time::Duration;

use matilda_telemetry as telemetry;

use crate::scheduler::{Command, CommandQueue};
use crate::wire::{self, error_reply, Request};

/// How often an idle connection wakes up to check the stop flag.
const IDLE_POLL: Duration = Duration::from_millis(250);
/// Once a frame has started arriving, how long a stall may last.
const FRAME_TIMEOUT: Duration = Duration::from_secs(5);
/// How long a handler waits for the scheduler's reply before giving the
/// client a typed `timeout` error. Generous: a turn may run a full
/// creative search under a real clock.
const REPLY_TIMEOUT: Duration = Duration::from_secs(60);

/// A listening wire server; accepts until shut down.
pub struct WireServer {
    path: PathBuf,
    stop: Arc<AtomicBool>,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl WireServer {
    /// Bind `path` (removing any stale socket file first) and start
    /// accepting connections that feed `queue`.
    pub fn bind(path: &Path, queue: Arc<CommandQueue>) -> std::io::Result<Self> {
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let accept_path = path.to_path_buf();
        let accept = std::thread::Builder::new()
            .name("matilda-daemon-accept".to_string())
            .spawn(move || {
                accept_loop(listener, accept_stop, queue);
                let _ = std::fs::remove_file(&accept_path);
            })?;
        telemetry::log::info("daemon.server", "wire server listening")
            .field("socket", path.display().to_string())
            .emit();
        Ok(Self {
            path: path.to_path_buf(),
            stop,
            accept: Some(accept),
        })
    }

    /// The socket path this server listens on.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Stop accepting, wake the accept loop, and join every connection.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Nudge the blocking accept() awake.
        let _ = UnixStream::connect(&self.path);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = UnixStream::connect(&self.path);
        if let Some(handle) = self.accept.take() {
            let _ = handle.join();
        }
    }
}

fn accept_loop(listener: UnixListener, stop: Arc<AtomicBool>, queue: Arc<CommandQueue>) {
    let connections: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> =
        Arc::new(Mutex::new(Vec::new()));
    for incoming in listener.incoming() {
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let stream = match incoming {
            Ok(stream) => stream,
            Err(_) => continue,
        };
        let conn_stop = Arc::clone(&stop);
        let conn_queue = Arc::clone(&queue);
        let handle = std::thread::Builder::new()
            .name("matilda-daemon-conn".to_string())
            .spawn(move || handle_connection(stream, conn_stop, conn_queue));
        if let Ok(handle) = handle {
            let mut pool = connections.lock().unwrap();
            // Opportunistically reap finished handlers so the pool does
            // not grow with every connection the daemon ever served.
            pool.retain(|h| !h.is_finished());
            pool.push(handle);
        }
    }
    let handles: Vec<_> = connections.lock().unwrap().drain(..).collect();
    for handle in handles {
        let _ = handle.join();
    }
}

// Dispatch one parsed request; returns the JSON reply to frame back.
fn dispatch(request: Request, queue: &CommandQueue) -> String {
    let (tx, rx) = channel();
    let command = match request {
        Request::Ping => return "{\"ok\":true,\"pong\":true}".to_string(),
        Request::Open {
            session,
            question,
            user_name,
            expertise,
            domain,
            openness,
            dataset,
        } => {
            let level = match expertise.as_str() {
                "analyst" => matilda_conversation::Expertise::Analyst,
                "data_scientist" => matilda_conversation::Expertise::DataScientist,
                // Unknown labels degrade to novice, matching the session
                // store's meta parser.
                _ => matilda_conversation::Expertise::Novice,
            };
            Command::Open {
                session,
                question,
                user: matilda_conversation::UserProfile::new(user_name, level, domain, openness),
                dataset,
                reply: tx,
            }
        }
        Request::Turn { session, text } => Command::Turn {
            session,
            text,
            reply: tx,
        },
        Request::Inspect { session } => Command::Inspect { session, reply: tx },
        Request::Sessions => Command::Sessions { reply: tx },
        Request::Drain => Command::Drain { reply: tx },
    };
    if queue.push(command).is_err() {
        return error_reply("shutting_down", "daemon has drained");
    }
    match rx.recv_timeout(REPLY_TIMEOUT) {
        Ok(body) => body,
        Err(_) => error_reply("timeout", "scheduler did not reply in time"),
    }
}

fn handle_connection(mut stream: UnixStream, stop: Arc<AtomicBool>, queue: Arc<CommandQueue>) {
    use std::io::Read;
    let _ = stream.set_write_timeout(Some(FRAME_TIMEOUT));
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        // Idle wait: read the first byte of the next frame with a short
        // timeout so a silent client never pins this thread past shutdown.
        let _ = stream.set_read_timeout(Some(IDLE_POLL));
        let mut first = [0u8; 1];
        match stream.read(&mut first) {
            Ok(0) => return, // clean disconnect
            Ok(_) => {}
            Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => continue,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => return,
        }
        // A frame has started: stalls from here are protocol errors, not
        // idleness. The consumed byte is chained back in front.
        let _ = stream.set_read_timeout(Some(FRAME_TIMEOUT));
        let mut reader = (&first[..]).chain(&mut stream);
        match wire::read_frame(&mut reader) {
            Ok(Some(payload)) => {
                let reply = match Request::parse(&payload) {
                    Ok(request) => dispatch(request, &queue),
                    Err(e) => error_reply(e.code(), &e.to_string()),
                };
                if wire::write_frame(&mut stream, &reply).is_err() {
                    return;
                }
            }
            Ok(None) => return,
            Err(e) => {
                // Torn, oversized or undecodable input leaves the stream
                // desynchronized: send the typed error (best effort) and
                // close. The accept loop is unaffected.
                telemetry::metrics::global().inc("daemon.wire_errors");
                let _ = wire::write_frame(&mut stream, &error_reply(e.code(), &e.to_string()));
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wire::write_frame;
    use std::io::Write;

    fn sock_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("matilda-daemon-{tag}-{}.sock", std::process::id()))
    }

    #[test]
    fn ping_answered_inline_and_garbage_gets_typed_error() {
        let path = sock_path("ping");
        let queue = Arc::new(CommandQueue::new());
        let server = WireServer::bind(&path, Arc::clone(&queue)).unwrap();

        let mut client = UnixStream::connect(&path).unwrap();
        write_frame(&mut client, "{\"op\":\"ping\"}").unwrap();
        let reply = wire::read_frame(&mut client).unwrap().unwrap();
        assert!(reply.contains("\"pong\":true"), "{reply}");

        // Bad JSON on the same connection: typed error, connection stays.
        write_frame(&mut client, "not json").unwrap();
        let reply = wire::read_frame(&mut client).unwrap().unwrap();
        assert!(reply.contains("bad_request"), "{reply}");

        // An oversized length prefix: typed error, then close — and the
        // accept loop still serves fresh connections.
        let mut rogue = UnixStream::connect(&path).unwrap();
        rogue.write_all(&u32::MAX.to_be_bytes()).unwrap();
        rogue.flush().unwrap();
        let reply = wire::read_frame(&mut rogue).unwrap().unwrap();
        assert!(reply.contains("frame_too_large"), "{reply}");
        let mut fresh = UnixStream::connect(&path).unwrap();
        write_frame(&mut fresh, "{\"op\":\"ping\"}").unwrap();
        let reply = wire::read_frame(&mut fresh).unwrap().unwrap();
        assert!(reply.contains("\"pong\":true"), "{reply}");

        server.shutdown();
        assert!(!path.exists(), "socket file removed on shutdown");
    }

    #[test]
    fn closed_queue_means_typed_shutting_down() {
        let path = sock_path("closedq");
        let queue = Arc::new(CommandQueue::new());
        queue.close();
        let server = WireServer::bind(&path, Arc::clone(&queue)).unwrap();
        let mut client = UnixStream::connect(&path).unwrap();
        write_frame(&mut client, "{\"op\":\"sessions\"}").unwrap();
        let reply = wire::read_frame(&mut client).unwrap().unwrap();
        assert!(reply.contains("shutting_down"), "{reply}");
        server.shutdown();
    }
}
