//! The daemon's wire protocol: length-prefixed JSON frames.
//!
//! A frame is a 4-byte big-endian length followed by that many bytes of
//! UTF-8 JSON. The framing layer is deliberately tiny and dependency-free,
//! and every way a peer can misbehave maps to a typed [`WireError`] — a
//! torn frame, an oversized length prefix, a mid-frame disconnect, invalid
//! UTF-8 — never a panic and never an unbounded read:
//!
//! ```text
//! +----------------+---------------------------+
//! | len: u32 (BE)  | payload: len bytes, UTF-8 |
//! +----------------+---------------------------+
//! ```
//!
//! Requests are flat JSON objects (`{"op":"turn","session":"s1",...}`)
//! parsed with the provenance crate's flat-object parser — the same dialect
//! the session store journals speak. Responses are built by the scheduler;
//! the framing layer treats them as opaque payloads.

use matilda_provenance::json::{escape, parse_flat_object, FlatValue};
use std::io::{Read, Write};

/// Hard ceiling on a frame's payload, in bytes. A length prefix above this
/// is rejected *before* any allocation, so a hostile or corrupt prefix
/// (e.g. `0xffff_ffff`) cannot make the server reserve gigabytes.
pub const MAX_FRAME_BYTES: usize = 1 << 20;

/// Everything that can go wrong on the wire, typed.
#[derive(Debug)]
pub enum WireError {
    /// The underlying transport failed (includes read/write timeouts).
    Io(std::io::Error),
    /// The peer disconnected mid-frame: `got` of `expected` bytes arrived.
    Torn {
        /// Bytes the frame (or its length prefix) still owed.
        expected: usize,
        /// Bytes actually received before EOF.
        got: usize,
    },
    /// The length prefix exceeds [`MAX_FRAME_BYTES`].
    FrameTooLarge {
        /// The advertised payload length.
        len: usize,
        /// The ceiling it violated.
        max: usize,
    },
    /// The payload is not valid UTF-8.
    BadUtf8,
    /// The payload is not a request this daemon understands.
    BadRequest(String),
}

impl WireError {
    /// Stable lowercase code for error replies and metrics.
    pub fn code(&self) -> &'static str {
        match self {
            WireError::Io(_) => "io",
            WireError::Torn { .. } => "torn_frame",
            WireError::FrameTooLarge { .. } => "frame_too_large",
            WireError::BadUtf8 => "bad_utf8",
            WireError::BadRequest(_) => "bad_request",
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "wire i/o failed: {e}"),
            WireError::Torn { expected, got } => {
                write!(f, "torn frame: got {got} of {expected} bytes before EOF")
            }
            WireError::FrameTooLarge { len, max } => {
                write!(f, "frame of {len} bytes exceeds the {max}-byte limit")
            }
            WireError::BadUtf8 => write!(f, "frame payload is not valid UTF-8"),
            WireError::BadRequest(detail) => write!(f, "bad request: {detail}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e)
    }
}

// Fill `buf` from `r`, mapping EOF-before-full to a typed torn-frame error.
// `already` biases the `got` count so payload reads report frame-relative
// progress.
fn read_exact_or_torn(r: &mut impl Read, buf: &mut [u8]) -> Result<(), WireError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(WireError::Torn {
                    expected: buf.len(),
                    got: filled,
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    Ok(())
}

/// Write one frame. Fails with [`WireError::FrameTooLarge`] before touching
/// the transport when `payload` exceeds [`MAX_FRAME_BYTES`].
pub fn write_frame(w: &mut impl Write, payload: &str) -> Result<(), WireError> {
    let bytes = payload.as_bytes();
    if bytes.len() > MAX_FRAME_BYTES {
        return Err(WireError::FrameTooLarge {
            len: bytes.len(),
            max: MAX_FRAME_BYTES,
        });
    }
    w.write_all(&(bytes.len() as u32).to_be_bytes())?;
    w.write_all(bytes)?;
    w.flush()?;
    Ok(())
}

/// Read one frame. `Ok(None)` is a clean disconnect (EOF exactly on a frame
/// boundary); EOF anywhere else is [`WireError::Torn`]. An oversized length
/// prefix is rejected without reading or allocating the payload.
pub fn read_frame(r: &mut impl Read) -> Result<Option<String>, WireError> {
    let mut len_buf = [0u8; 4];
    // The first byte decides clean-EOF vs torn prefix.
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut len_buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(WireError::Torn {
                    expected: 4,
                    got: filled,
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(WireError::Io(e)),
        }
    }
    let len = u32::from_be_bytes(len_buf) as usize;
    if len > MAX_FRAME_BYTES {
        return Err(WireError::FrameTooLarge {
            len,
            max: MAX_FRAME_BYTES,
        });
    }
    let mut payload = vec![0u8; len];
    read_exact_or_torn(r, &mut payload)?;
    String::from_utf8(payload)
        .map(Some)
        .map_err(|_| WireError::BadUtf8)
}

// ---------------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------------

/// Everything a client can ask the daemon to do.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe; answered by the connection thread, not the scheduler.
    Ping,
    /// Open a fresh session.
    Open {
        /// Session name (and store id, after sanitization).
        session: String,
        /// The research question the session opens with.
        question: String,
        /// User display name.
        user_name: String,
        /// User expertise: `novice`, `analyst` or `data_scientist`
        /// (unknown labels degrade to novice, matching the session store).
        expertise: String,
        /// User discipline.
        domain: String,
        /// User openness in `[0, 1]`.
        openness: f64,
        /// Catalog dataset to design over; `None` uses the daemon default.
        dataset: Option<String>,
    },
    /// Feed one conversational turn to an open session.
    Turn {
        /// Target session name.
        session: String,
        /// The user utterance.
        text: String,
    },
    /// Introspect one session: turn count, provenance digest, trace
    /// coherence — the isolation probe the e2e harness gates on.
    Inspect {
        /// Target session name.
        session: String,
    },
    /// The live + durable session listing (same body as HTTP `/sessions`).
    Sessions,
    /// Begin a graceful drain; the reply arrives once the fleet is
    /// suspended and flushed.
    Drain,
    /// Authenticate a TCP connection with the daemon's shared secret.
    /// Unix-socket connections are pre-authenticated by filesystem
    /// permissions and never need to send this.
    Auth {
        /// The shared secret (`MATILDA_DAEMON_TOKEN`).
        token: String,
    },
}

fn field<'a>(fields: &'a [(String, FlatValue)], key: &str) -> Option<&'a FlatValue> {
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn str_field(fields: &[(String, FlatValue)], key: &str) -> Result<String, WireError> {
    match field(fields, key) {
        Some(FlatValue::Str(s)) => Ok(s.clone()),
        Some(_) => Err(WireError::BadRequest(format!(
            "field `{key}` is not a string"
        ))),
        None => Err(WireError::BadRequest(format!("missing field `{key}`"))),
    }
}

fn opt_str_field(fields: &[(String, FlatValue)], key: &str) -> Option<String> {
    match field(fields, key) {
        Some(FlatValue::Str(s)) => Some(s.clone()),
        _ => None,
    }
}

fn f64_field_or(fields: &[(String, FlatValue)], key: &str, default: f64) -> f64 {
    match field(fields, key) {
        Some(FlatValue::Num(raw)) => raw.parse().unwrap_or(default),
        _ => default,
    }
}

impl Request {
    /// Parse one request payload. Anything that is not a flat JSON object
    /// with a known `op` is a typed [`WireError::BadRequest`].
    pub fn parse(payload: &str) -> Result<Self, WireError> {
        let fields = parse_flat_object(payload)
            .ok_or_else(|| WireError::BadRequest("not a flat JSON object".to_string()))?;
        let op = str_field(&fields, "op")?;
        match op.as_str() {
            "ping" => Ok(Request::Ping),
            "open" => Ok(Request::Open {
                session: str_field(&fields, "session")?,
                question: str_field(&fields, "question")?,
                user_name: opt_str_field(&fields, "user_name").unwrap_or_else(|| "user".into()),
                expertise: opt_str_field(&fields, "expertise").unwrap_or_else(|| "novice".into()),
                domain: opt_str_field(&fields, "domain").unwrap_or_else(|| "general".into()),
                openness: f64_field_or(&fields, "openness", 0.3),
                dataset: opt_str_field(&fields, "dataset"),
            }),
            "turn" => Ok(Request::Turn {
                session: str_field(&fields, "session")?,
                text: str_field(&fields, "text")?,
            }),
            "inspect" => Ok(Request::Inspect {
                session: str_field(&fields, "session")?,
            }),
            "sessions" => Ok(Request::Sessions),
            "drain" => Ok(Request::Drain),
            "auth" => Ok(Request::Auth {
                token: str_field(&fields, "token")?,
            }),
            other => Err(WireError::BadRequest(format!("unknown op `{other}`"))),
        }
    }

    /// Serialize as the flat JSON object [`Request::parse`] reads back.
    pub fn to_json(&self) -> String {
        match self {
            Request::Ping => "{\"op\":\"ping\"}".to_string(),
            Request::Open {
                session,
                question,
                user_name,
                expertise,
                domain,
                openness,
                dataset,
            } => {
                let mut out = format!(
                    "{{\"op\":\"open\",\"session\":\"{}\",\"question\":\"{}\",\
                     \"user_name\":\"{}\",\"expertise\":\"{}\",\"domain\":\"{}\",\
                     \"openness\":{openness}",
                    escape(session),
                    escape(question),
                    escape(user_name),
                    escape(expertise),
                    escape(domain),
                );
                if let Some(dataset) = dataset {
                    out.push_str(&format!(",\"dataset\":\"{}\"", escape(dataset)));
                }
                out.push('}');
                out
            }
            Request::Turn { session, text } => format!(
                "{{\"op\":\"turn\",\"session\":\"{}\",\"text\":\"{}\"}}",
                escape(session),
                escape(text)
            ),
            Request::Inspect { session } => {
                format!("{{\"op\":\"inspect\",\"session\":\"{}\"}}", escape(session))
            }
            Request::Sessions => "{\"op\":\"sessions\"}".to_string(),
            Request::Drain => "{\"op\":\"drain\"}".to_string(),
            Request::Auth { token } => {
                format!("{{\"op\":\"auth\",\"token\":\"{}\"}}", escape(token))
            }
        }
    }
}

/// Build a typed error reply body.
pub fn error_reply(code: &str, detail: &str) -> String {
    format!(
        "{{\"ok\":false,\"code\":\"{}\",\"error\":\"{}\"}}",
        escape(code),
        escape(detail)
    )
}

/// Bounds on the `retry_after_ms` hint carried by [`overloaded_reply`]:
/// never zero (a zero hint invites an instant retry storm) and never more
/// than a minute (the daemon re-assesses load every tick; stale hints
/// should not park clients indefinitely).
pub const RETRY_AFTER_MS_MIN: u64 = 1;
/// See [`RETRY_AFTER_MS_MIN`].
pub const RETRY_AFTER_MS_MAX: u64 = 60_000;

/// Build the typed `overloaded` reply: admission control bounced this
/// request and the client should back off for `retry_after_ms` before
/// retrying. The hint is clamped to `[RETRY_AFTER_MS_MIN,
/// RETRY_AFTER_MS_MAX]` so a confused (or hostile) load computation cannot
/// emit a zero or multi-hour hint.
pub fn overloaded_reply(detail: &str, retry_after_ms: u64) -> String {
    let hint = retry_after_ms.clamp(RETRY_AFTER_MS_MIN, RETRY_AFTER_MS_MAX);
    format!(
        "{{\"ok\":false,\"code\":\"overloaded\",\"error\":\"{}\",\"retry_after_ms\":{hint}}}",
        escape(detail)
    )
}

/// Sanitize a client-supplied field before echoing it inside an error
/// reply: keep ASCII alphanumerics plus ` `, `.`, `_`, `-`; replace
/// anything else with `_`; cap at 64 chars. JSON escaping already prevents
/// injection into the reply itself — this bound keeps hostile bytes and
/// unbounded lengths out of logs, incident capsules and terminal output
/// that render the echoed field downstream.
pub fn sanitize_field(raw: &str) -> String {
    raw.chars()
        .take(64)
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, ' ' | '.' | '_' | '-') {
                c
            } else {
                '_'
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frame_round_trips() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "{\"op\":\"ping\"}").unwrap();
        let mut cursor = Cursor::new(buf);
        assert_eq!(
            read_frame(&mut cursor).unwrap().as_deref(),
            Some("{\"op\":\"ping\"}")
        );
        // Clean EOF on the frame boundary.
        assert!(read_frame(&mut cursor).unwrap().is_none());
    }

    #[test]
    fn oversized_prefix_rejected_without_allocation() {
        let mut buf = u32::MAX.to_be_bytes().to_vec();
        buf.extend_from_slice(b"junk");
        let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
        assert!(matches!(err, WireError::FrameTooLarge { .. }), "{err}");
        assert_eq!(err.code(), "frame_too_large");
    }

    #[test]
    fn torn_prefix_and_payload_are_typed() {
        // Two of four length bytes.
        let err = read_frame(&mut Cursor::new(vec![0u8, 0])).unwrap_err();
        assert!(
            matches!(
                err,
                WireError::Torn {
                    expected: 4,
                    got: 2
                }
            ),
            "{err}"
        );
        // Prefix promises 10 bytes, 3 arrive.
        let mut buf = 10u32.to_be_bytes().to_vec();
        buf.extend_from_slice(b"abc");
        let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
        assert!(
            matches!(
                err,
                WireError::Torn {
                    expected: 10,
                    got: 3
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn invalid_utf8_is_typed() {
        let mut buf = 2u32.to_be_bytes().to_vec();
        buf.extend_from_slice(&[0xff, 0xfe]);
        let err = read_frame(&mut Cursor::new(buf)).unwrap_err();
        assert!(matches!(err, WireError::BadUtf8), "{err}");
    }

    #[test]
    fn requests_round_trip() {
        let requests = vec![
            Request::Ping,
            Request::Open {
                session: "city \"quotes\"".into(),
                question: "does x\ndrive y?".into(),
                user_name: "Ada".into(),
                expertise: "novice".into(),
                domain: "urbanism".into(),
                openness: 0.3,
                dataset: Some("demo".into()),
            },
            Request::Turn {
                session: "s1".into(),
                text: "run it".into(),
            },
            Request::Inspect {
                session: "s1".into(),
            },
            Request::Sessions,
            Request::Drain,
            Request::Auth {
                token: "s3cr3t \"quoted\"".into(),
            },
        ];
        for request in requests {
            let parsed = Request::parse(&request.to_json()).unwrap();
            assert_eq!(parsed, request);
        }
    }

    #[test]
    fn foreign_clients_may_space_their_json() {
        // `json.dumps` and friends put spaces after `:` and `,`; the wire
        // protocol must accept any standard flat JSON, not just the compact
        // dialect this workspace emits.
        let parsed =
            Request::parse("{\"op\": \"turn\", \"session\": \"s1\", \"text\": \"run it\"}")
                .unwrap();
        assert_eq!(
            parsed,
            Request::Turn {
                session: "s1".into(),
                text: "run it".into(),
            }
        );
    }

    #[test]
    fn bad_requests_are_typed_not_panics() {
        for payload in [
            "",
            "{",
            "[1,2]",
            "{\"op\":\"warp\"}",
            "{\"op\":\"turn\"}",
            "{\"op\":\"turn\",\"session\":7,\"text\":\"x\"}",
            "{\"no_op\":true}",
            "{\"op\":\"auth\"}",
        ] {
            let err = Request::parse(payload).unwrap_err();
            assert_eq!(err.code(), "bad_request", "payload: {payload}");
        }
    }

    #[test]
    fn overloaded_reply_clamps_the_retry_hint() {
        let reply = overloaded_reply("mailbox full", 500);
        assert!(reply.contains("\"code\":\"overloaded\""), "{reply}");
        assert!(reply.contains("\"retry_after_ms\":500"), "{reply}");
        // A zero hint would invite an instant retry storm.
        assert!(
            overloaded_reply("x", 0).contains("\"retry_after_ms\":1"),
            "zero hint must clamp up"
        );
        // A runaway hint must not park clients for hours.
        assert!(
            overloaded_reply("x", u64::MAX).contains("\"retry_after_ms\":60000"),
            "huge hint must clamp down"
        );
    }

    #[test]
    fn sanitize_field_bounds_and_filters() {
        assert_eq!(sanitize_field("calm-1"), "calm-1");
        assert_eq!(sanitize_field("a.b_c d"), "a.b_c d");
        // Control bytes, quotes and non-ASCII become underscores.
        assert_eq!(sanitize_field("s\u{7}1\"x\u{1F600}"), "s_1_x_");
        // Length is capped at 64 chars.
        let long = "x".repeat(500);
        assert_eq!(sanitize_field(&long).len(), 64);
    }
}
