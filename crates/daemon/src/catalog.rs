//! Named deterministic datasets the daemon can open sessions over.
//!
//! The session store deliberately records the design conversation, not the
//! data (PR 8); a resident daemon therefore needs a way to turn a *name*
//! back into a `DataFrame`, both when a client opens a session and when
//! startup recovery resurrects one. The catalog is that mapping: every
//! entry is generated, seed-stable, and identical across restarts, which is
//! what makes drain → restart → replay reproduce provenance digests.

use matilda_data::{Column, DataFrame};
use matilda_datagen::UrbanConfig;

/// The dataset name used when a client's `open` does not pick one.
pub const DEFAULT_DATASET: &str = "demo";

/// Names the catalog resolves, for error messages and docs.
pub const DATASETS: [&str; 2] = ["demo", "urban"];

/// A small, fully deterministic frame: a linear `x`, a periodic `noise`
/// column and a categorical `label` splitting the rows in half. Sixty rows
/// keeps full conversational turns (including pipeline runs) fast enough
/// that a 16-session e2e harness finishes in CI time.
fn demo_frame() -> DataFrame {
    DataFrame::from_columns(vec![
        ("x", Column::from_f64((0..60).map(f64::from).collect())),
        (
            "noise",
            Column::from_f64((0..60).map(|i| ((i * 7) % 5) as f64).collect()),
        ),
        (
            "label",
            Column::from_categorical(
                &(0..60)
                    .map(|i| if i < 30 { "a" } else { "b" })
                    .collect::<Vec<_>>(),
            ),
        ),
    ])
    .expect("demo frame columns are well-formed")
}

/// A compact urban-policy panel from the datagen crate (fixed seed, so it
/// is byte-identical on every resolve).
fn urban_frame() -> DataFrame {
    matilda_datagen::urban_panel(&UrbanConfig {
        n_districts: 8,
        n_weeks: 6,
        ..UrbanConfig::default()
    })
}

/// Resolve `name` to its frame, or `None` for names outside the catalog.
pub fn resolve(name: &str) -> Option<DataFrame> {
    match name {
        "demo" => Some(demo_frame()),
        "urban" => Some(urban_frame()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_listed_dataset_resolves_deterministically() {
        for name in DATASETS {
            let a = resolve(name).unwrap_or_else(|| panic!("{name} missing"));
            let b = resolve(name).unwrap();
            assert_eq!(a.n_rows(), b.n_rows(), "{name}");
            assert_eq!(a.n_cols(), b.n_cols(), "{name}");
        }
        assert!(resolve("nope").is_none());
    }

    #[test]
    fn default_is_listed() {
        assert!(DATASETS.contains(&DEFAULT_DATASET));
    }
}
