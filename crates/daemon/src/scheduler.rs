//! The tick scheduler: fair, preemptible, overload-hardened turn admission
//! for the fleet.
//!
//! Connection threads never touch a session. They enqueue [`Command`]s on
//! the [`CommandQueue`] and block on a per-request reply channel; the
//! scheduler thread drains the queue, routes turns into per-session
//! mailboxes, and admits **at most one turn per tick**, round-robining the
//! runnable sessions. Turns execute serially on the scheduler thread, so
//! the at-most-one-in-flight-turn-per-session invariant is structural —
//! and fairness comes from two mechanisms working together:
//!
//! 1. round-robin admission: a session with a deep mailbox cannot be
//!    admitted twice before every other runnable session got a turn;
//! 2. the per-turn `DeadlineBudget` (`PlatformConfig::turn_deadline`):
//!    each admitted turn is charged against its own latency allowance and
//!    preempts at the next cancellation checkpoint when it expires, so one
//!    slow creative search cannot starve the tick loop.
//!
//! **Admission control** bounds every buffer a client can fill. The
//! command queue ([`CommandQueue::with_capacity`]) rejects work commands
//! once full; per-session mailboxes hold at most
//! [`SchedulerTuning::mailbox_depth`] turns and bounce overflow — in
//! arrival order, so earlier requests keep their place — with the typed
//! `overloaded` reply and a retry-after hint. Memory under flood is
//! therefore O(sessions × depth + capacity), not O(requests received).
//!
//! **Brownout degradation** runs on the [`OverloadGovernor`]: each tick
//! the scheduler samples queue fill, mailbox fill, turn-latency p95 vs
//! the SLO, open breakers and allocator churn, and on a level transition
//! it scales per-turn deadline budgets, caps creative-search generations,
//! bounces `open`s (Saturated), sheds least-recently-active sessions
//! (Critical — suspended, not lost: their durable logs stay `in_flight`),
//! emits an incident capsule, and queues an expertise-calibrated notice
//! onto every session's next reply.
//!
//! Drain is a state machine, not a flag check scattered around:
//!
//! ```text
//! Running --drain--> Draining --fleet suspended--> Drained (queue closed)
//! ```
//!
//! On drain the scheduler stops admitting turns, bounces everything queued
//! with a typed `draining` error, suspends the fleet (drop without close —
//! durable logs stay `in_flight` so a restarted daemon resurrects them),
//! answers the drain waiters, and closes the queue so later pushes fail
//! fast with `shutting_down`.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Sender;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use matilda_provenance::json::escape;
use matilda_resilience::{incident, LoadLevel, OverloadGovernor, OverloadPolicy, OverloadSignals};
use matilda_telemetry as telemetry;

use crate::manager::{OpenError, SessionManager, TurnError};
use crate::wire::{error_reply, overloaded_reply, sanitize_field};

/// Daemon metric names (same registry as the rest of the platform).
pub mod names {
    /// Scheduler ticks taken.
    pub const TICKS: &str = "daemon.ticks";
    /// Turns admitted to a session.
    pub const TURNS_ADMITTED: &str = "daemon.turns_admitted";
    /// Turns refused, aggregate. Per-reason breakdowns append the reason
    /// (`daemon.turns_bounced.overloaded`, `.draining`, `.unknown_session`,
    /// `.session_closed`, `.shedding`).
    pub const TURNS_BOUNCED: &str = "daemon.turns_bounced";
    /// `open` requests bounced by the load level (Saturated and above).
    pub const OPENS_BOUNCED: &str = "daemon.opens_bounced";
    /// End-to-end turn latency (enqueue to reply) in seconds, on the
    /// daemon clock.
    pub const TURN_SECONDS: &str = "daemon.turn_seconds";
    /// Live sessions resident in the fleet.
    pub const SESSIONS_OPEN: &str = "daemon.sessions_open";
    /// Graceful drains performed.
    pub const DRAINS: &str = "daemon.drains";
    /// Command-queue depth sampled at each tick's start.
    pub const QUEUE_DEPTH: &str = "daemon.queue_depth";
    /// Deepest per-session mailbox sampled each tick (never exceeds the
    /// configured bound — the E12 overload gate checks exactly that).
    pub const MAILBOX_DEPTH: &str = "daemon.mailbox_depth";
    /// Turns whose waiter timed out before admission; the scheduler
    /// skipped executing them instead of burning a turn nobody reads.
    pub const REPLIES_ABANDONED: &str = "daemon.replies_abandoned";
    /// Connections refused at the accept loop by the connection cap.
    pub const CONNS_SHED: &str = "daemon.conns_shed";
    /// Failed TCP authentication attempts.
    pub const AUTH_FAILURES: &str = "daemon.auth_failures";
    /// Sessions suspended by critical-overload shedding.
    pub const SESSIONS_SHED: &str = "daemon.sessions_shed";
    /// The current load level (0 nominal .. 3 critical). Shared with
    /// `/healthz`, hence defined in the telemetry crate.
    pub const LOAD_LEVEL: &str = matilda_telemetry::metrics::names::DAEMON_LOAD_LEVEL;
}

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// One request routed from a connection thread to the scheduler. Every
/// variant carries the channel its JSON reply must be sent down.
pub enum Command {
    /// Open a fresh session.
    Open {
        /// Requested session name (sanitized by the manager).
        session: String,
        /// Opening research question.
        question: String,
        /// Who is talking.
        user: matilda_conversation::UserProfile,
        /// Catalog dataset, `None` for the daemon default.
        dataset: Option<String>,
        /// Where the reply goes.
        reply: Sender<String>,
    },
    /// One conversational turn.
    Turn {
        /// Target session id.
        session: String,
        /// The utterance.
        text: String,
        /// Where the reply goes.
        reply: Sender<String>,
        /// Set by the waiter when it gave up (reply timeout). The
        /// scheduler skips executing abandoned turns — the client already
        /// got a `timeout` error, so running the turn anyway would mutate
        /// the session behind a reply nobody reads.
        abandoned: Arc<AtomicBool>,
    },
    /// Introspect one session.
    Inspect {
        /// Target session id.
        session: String,
        /// Where the reply goes.
        reply: Sender<String>,
    },
    /// The fleet + store listing.
    Sessions {
        /// Where the reply goes.
        reply: Sender<String>,
    },
    /// Begin a graceful drain; replied to once the fleet is suspended.
    Drain {
        /// Where the drain summary goes.
        reply: Sender<String>,
    },
}

impl Command {
    /// A turn command with a fresh (never-abandoned) tracking flag.
    pub fn turn(
        session: impl Into<String>,
        text: impl Into<String>,
        reply: Sender<String>,
    ) -> Self {
        Command::Turn {
            session: session.into(),
            text: text.into(),
            reply,
            abandoned: Arc::new(AtomicBool::new(false)),
        }
    }

    /// A turn command plus the handle its waiter flips if it stops
    /// waiting for the reply.
    pub fn turn_tracked(
        session: impl Into<String>,
        text: impl Into<String>,
        reply: Sender<String>,
    ) -> (Self, Arc<AtomicBool>) {
        let abandoned = Arc::new(AtomicBool::new(false));
        let command = Command::Turn {
            session: session.into(),
            text: text.into(),
            reply,
            abandoned: Arc::clone(&abandoned),
        };
        (command, abandoned)
    }

    /// Whether this command admits work into the fleet (and is therefore
    /// subject to the queue's capacity bound). Control commands — inspect,
    /// listings, drain — always pass, so a flooded queue can still be
    /// observed and drained.
    fn is_work(&self) -> bool {
        matches!(self, Command::Open { .. } | Command::Turn { .. })
    }
}

/// Why [`CommandQueue::push`] refused a command. Both variants hand the
/// command back (boxed — it is a wide enum) so the caller can answer its
/// reply channel itself.
pub enum PushError {
    /// The queue is at capacity and the command was work (open/turn).
    /// Admission control: the caller should reply `overloaded`.
    Full(Box<Command>),
    /// The scheduler drained and closed the queue: reply `shutting_down`.
    Closed(Box<Command>),
}

struct QueueState {
    commands: VecDeque<Command>,
    closed: bool,
}

/// The multi-producer command queue between connection threads and the
/// scheduler. `std::sync` primitives on purpose: the vendored parking_lot
/// has no `Condvar`, and the queue is nowhere near hot enough to care.
///
/// The queue is **bounded** for work commands (open/turn):
/// once `capacity` commands are waiting, opens and turns bounce with
/// [`PushError::Full`] instead of queueing without limit — connection
/// threads turn that into the typed `overloaded` reply.
pub struct CommandQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
    capacity: usize,
}

impl Default for CommandQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl CommandQueue {
    /// A new, open queue with the capacity from `MATILDA_DAEMON_QUEUE_DEPTH`
    /// (default 256).
    pub fn new() -> Self {
        Self::with_capacity(env_u64("MATILDA_DAEMON_QUEUE_DEPTH", 256) as usize)
    }

    /// A new, open queue bounding work commands at `capacity` (min 1).
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            state: Mutex::new(QueueState {
                commands: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The work-command bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Commands currently waiting.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().commands.len()
    }

    /// Whether nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueue a command. Closed queues refuse everything; full queues
    /// refuse work commands (admission control) but always accept control
    /// commands, so drain and inspection cannot be starved by a flood.
    pub fn push(&self, command: Command) -> Result<(), PushError> {
        let mut state = self.state.lock().unwrap();
        if state.closed {
            return Err(PushError::Closed(Box::new(command)));
        }
        if command.is_work() && state.commands.len() >= self.capacity {
            return Err(PushError::Full(Box::new(command)));
        }
        state.commands.push_back(command);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Dequeue without blocking.
    pub fn try_pop(&self) -> Option<Command> {
        self.state.lock().unwrap().commands.pop_front()
    }

    /// Block up to `timeout` for a command to arrive. `None` on timeout or
    /// when the queue closed while waiting.
    pub fn pop_timeout(&self, timeout: Duration) -> Option<Command> {
        let mut state = self.state.lock().unwrap();
        if state.commands.is_empty() && !state.closed {
            let (next, _timed_out) = self.ready.wait_timeout(state, timeout).unwrap();
            state = next;
        }
        state.commands.pop_front()
    }

    /// Close the queue: later pushes bounce; already-queued commands stay
    /// poppable so a draining scheduler can flush them.
    pub fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.ready.notify_all();
    }

    /// Whether the queue has been closed.
    pub fn is_closed(&self) -> bool {
        self.state.lock().unwrap().closed
    }
}

/// Scheduler knobs: the mailbox bound and the overload policy. The
/// `Default` reads the deployment environment:
///
/// - `MATILDA_DAEMON_MAILBOX_DEPTH` — queued turns per session (default 8);
/// - `MATILDA_TURN_SLO_MS` — the turn-latency SLO the p95 signal is
///   measured against (default 250);
/// - `MATILDA_DAEMON_ALLOC_BUDGET` — per-tick allocator-churn budget in
///   bytes for the memory-pressure signal (default 0 = disabled).
#[derive(Clone, Debug)]
pub struct SchedulerTuning {
    /// Max queued turns per session before overflow bounces.
    pub mailbox_depth: usize,
    /// Thresholds and hysteresis for the overload governor.
    pub policy: OverloadPolicy,
    /// The turn-latency SLO the p95 signal is normalized by.
    pub turn_slo: Duration,
    /// Per-tick scheduler-thread allocation budget in bytes (0 disables).
    pub alloc_budget: u64,
}

impl Default for SchedulerTuning {
    fn default() -> Self {
        Self {
            mailbox_depth: env_u64("MATILDA_DAEMON_MAILBOX_DEPTH", 8).max(1) as usize,
            policy: OverloadPolicy::default(),
            turn_slo: Duration::from_millis(env_u64("MATILDA_TURN_SLO_MS", 250).max(1)),
            alloc_budget: env_u64("MATILDA_DAEMON_ALLOC_BUDGET", 0),
        }
    }
}

/// What one [`TickScheduler::tick`] accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TickOutcome {
    /// No commands arrived and no mailbox had a runnable turn.
    Idle,
    /// Commands were routed and/or one turn executed.
    Worked,
    /// A drain completed; the scheduler is done and the queue is closed.
    Drained,
}

/// How a drain ended, for the drain reply and the daemon's logs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DrainSummary {
    /// Session ids suspended (dropped without close, logs left in-flight).
    pub suspended: Vec<String>,
    /// Queued-but-unadmitted turns bounced with a `draining` error.
    pub bounced: usize,
}

/// A turn waiting in a session's mailbox.
struct QueuedTurn {
    text: String,
    reply: Sender<String>,
    abandoned: Arc<AtomicBool>,
    /// Enqueue stamp on the daemon clock, for end-to-end latency.
    enqueued: Duration,
}

/// Recent turn latencies kept for the p95 signal.
const LATENCY_WINDOW: usize = 64;

/// The scheduler itself. Single-threaded by design: construct it, then
/// either call [`TickScheduler::tick`] in a loop you own (tests drive it
/// this way on a `TestClock`) or hand it to [`TickScheduler::run`] on a
/// dedicated thread.
pub struct TickScheduler {
    manager: SessionManager,
    queue: std::sync::Arc<CommandQueue>,
    mailboxes: HashMap<String, VecDeque<QueuedTurn>>,
    /// Round-robin cursor: session ids in admission order.
    rotation: VecDeque<String>,
    clock: std::sync::Arc<dyn matilda_resilience::Clock>,
    tuning: SchedulerTuning,
    governor: OverloadGovernor,
    /// Sliding window of end-to-end turn latencies for the p95 signal.
    latencies: VecDeque<Duration>,
    /// Last admitted-turn stamp per session, for recency-based shedding.
    last_active: HashMap<String, Duration>,
    /// Brownout notices pending delivery on each session's next reply.
    notices: HashMap<String, String>,
    /// Per-tick allocator-churn window (scheduler thread only; reads zero
    /// when no `CountingAlloc` is installed).
    alloc: Option<telemetry::AllocScope>,
    draining: bool,
    drain_summary: Option<DrainSummary>,
    ticks: u64,
}

impl TickScheduler {
    /// Build a scheduler over `manager` with tuning from the environment
    /// (see [`SchedulerTuning`]).
    pub fn new(manager: SessionManager, queue: std::sync::Arc<CommandQueue>) -> Self {
        Self::with_tuning(manager, queue, SchedulerTuning::default())
    }

    /// Build a scheduler with explicit tuning. Sessions already resident
    /// in the manager (the recovered fleet) get mailboxes and rotation
    /// slots up front, so turns land on them exactly as on freshly opened
    /// ones. The latency clock is the thread's resilience clock, so chaos
    /// tests that activate a `TestClock` measure virtual time.
    pub fn with_tuning(
        manager: SessionManager,
        queue: std::sync::Arc<CommandQueue>,
        tuning: SchedulerTuning,
    ) -> Self {
        let mut mailboxes: HashMap<String, VecDeque<QueuedTurn>> = HashMap::new();
        let mut rotation = VecDeque::new();
        for id in manager.ids() {
            mailboxes.entry(id.clone()).or_default();
            rotation.push_back(id);
        }
        let governor = OverloadGovernor::new(tuning.policy.clone());
        telemetry::metrics::global().set_gauge(names::LOAD_LEVEL, governor.level().gauge());
        Self {
            manager,
            queue,
            mailboxes,
            rotation,
            clock: matilda_resilience::fault::clock(),
            tuning,
            governor,
            latencies: VecDeque::new(),
            last_active: HashMap::new(),
            notices: HashMap::new(),
            alloc: Some(telemetry::AllocScope::begin()),
            draining: false,
            drain_summary: None,
            ticks: 0,
        }
    }

    /// The fleet, for startup recovery adoption.
    pub fn manager_mut(&mut self) -> &mut SessionManager {
        &mut self.manager
    }

    /// Ticks taken so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// The governor's current load level.
    pub fn load_level(&self) -> LoadLevel {
        self.governor.level()
    }

    fn send(reply: &Sender<String>, body: String) {
        // A caller that gave up on its reply is not the scheduler's
        // problem; the turn still committed.
        let _ = reply.send(body);
    }

    // A typed refusal: count the aggregate, the per-reason breakdown, and
    // answer the waiter.
    fn bounce(reason: &str, reply: &Sender<String>, body: String) {
        let metrics = telemetry::metrics::global();
        metrics.inc(names::TURNS_BOUNCED);
        metrics.inc(&format!("{}.{reason}", names::TURNS_BOUNCED));
        Self::send(reply, body);
    }

    fn route(&mut self, command: Command) {
        match command {
            Command::Open {
                session,
                question,
                user,
                dataset,
                reply,
            } => {
                // Brownout: at Saturated and above, new sessions bounce
                // before any queued turn does — existing conversations
                // keep priority over new arrivals.
                let level = self.governor.level();
                if !level.accepts_opens() && !self.draining {
                    telemetry::metrics::global().inc(names::OPENS_BOUNCED);
                    Self::send(
                        &reply,
                        overloaded_reply(
                            "daemon is saturated; not accepting new sessions",
                            level.retry_after_ms(),
                        ),
                    );
                    return;
                }
                let body = match self
                    .manager
                    .open(&session, &question, user, dataset.as_deref())
                {
                    Ok((id, opening, trace)) => {
                        self.mailboxes.entry(id.clone()).or_default();
                        self.rotation.push_back(id.clone());
                        self.last_active.insert(id.clone(), self.clock.now());
                        format!(
                            "{{\"ok\":true,\"session\":\"{}\",\"trace\":{trace},\"opening\":\"{}\"}}",
                            escape(&id),
                            escape(&opening)
                        )
                    }
                    Err(OpenError::Exists) => error_reply("session_exists", "id already in use"),
                    Err(OpenError::UnknownDataset(name)) => error_reply(
                        "bad_request",
                        &format!("dataset `{}` is not in the catalog", sanitize_field(&name)),
                    ),
                    Err(OpenError::Store(detail)) => error_reply("store", &detail),
                };
                Self::send(&reply, body);
            }
            Command::Turn {
                session,
                text,
                reply,
                abandoned,
            } => {
                if self.draining {
                    Self::bounce(
                        "draining",
                        &reply,
                        error_reply("draining", "daemon is draining"),
                    );
                } else if let Some(mailbox) = self.mailboxes.get_mut(&session) {
                    if mailbox.len() >= self.tuning.mailbox_depth {
                        // FIFO-fair overflow: the turns already queued keep
                        // their place; the *new* arrival bounces.
                        let level = self.governor.level();
                        Self::bounce(
                            "overloaded",
                            &reply,
                            overloaded_reply(
                                &format!("mailbox for `{}` is full", sanitize_field(&session)),
                                level.retry_after_ms(),
                            ),
                        );
                    } else {
                        mailbox.push_back(QueuedTurn {
                            text,
                            reply,
                            abandoned,
                            enqueued: self.clock.now(),
                        });
                    }
                } else {
                    Self::bounce(
                        "unknown_session",
                        &reply,
                        error_reply("unknown_session", &sanitize_field(&session)),
                    );
                }
            }
            Command::Inspect { session, reply } => {
                let body = match self.manager.inspect(&session) {
                    Some(report) => format!(
                        "{{\"ok\":true,\"session\":\"{}\",\"turns\":{},\"digest\":{},\
                         \"trace\":{},\"trace_coherent\":{},\"closed\":{},\"events\":{}}}",
                        escape(&session),
                        report.turns,
                        report.digest,
                        report.trace_id,
                        report.trace_coherent,
                        report.closed,
                        report.events
                    ),
                    None => error_reply("unknown_session", &sanitize_field(&session)),
                };
                Self::send(&reply, body);
            }
            Command::Sessions { reply } => {
                let body = self.manager.listing_json_with_load(
                    self.draining,
                    self.governor.level().name(),
                    self.queue.len(),
                );
                Self::send(&reply, body);
            }
            Command::Drain { reply } => {
                self.draining = true;
                self.drain_waiters_push(reply);
            }
        }
    }

    fn drain_waiters_push(&mut self, reply: Sender<String>) {
        // Stored in a mailbox under a reserved key no sanitized session id
        // can collide with (sanitize_id never emits `#`).
        self.mailboxes
            .entry("#drain".to_string())
            .or_default()
            .push_back(QueuedTurn {
                text: String::new(),
                reply,
                abandoned: Arc::new(AtomicBool::new(false)),
                enqueued: self.clock.now(),
            });
    }

    /// Complete a drain: bounce queued turns, suspend the fleet, answer
    /// the waiters, close the queue. The summary is also stashed for
    /// [`TickScheduler::run`] to return.
    fn finish_drain(&mut self) -> DrainSummary {
        let waiters = self.mailboxes.remove("#drain").unwrap_or_default();
        let mut bounced = 0;
        for (_, mailbox) in self.mailboxes.drain() {
            for turn in mailbox {
                bounced += 1;
                Self::send(&turn.reply, error_reply("draining", "daemon is draining"));
            }
        }
        let suspended = self.manager.suspend_all();
        let metrics = telemetry::metrics::global();
        metrics.inc(names::DRAINS);
        metrics.add(names::TURNS_BOUNCED, bounced as u64);
        metrics.add(
            &format!("{}.draining", names::TURNS_BOUNCED),
            bounced as u64,
        );
        metrics.set_gauge(names::SESSIONS_OPEN, 0.0);
        self.queue.close();
        let mut ids = String::new();
        for id in &suspended {
            if !ids.is_empty() {
                ids.push(',');
            }
            ids.push_str(&format!("\"{}\"", escape(id)));
        }
        let body = format!(
            "{{\"ok\":true,\"drained\":true,\"suspended\":{},\"bounced\":{bounced},\"sessions\":[{ids}]}}",
            suspended.len()
        );
        for waiter in waiters {
            Self::send(&waiter.reply, body.clone());
        }
        telemetry::log::info("daemon.scheduler", "drain complete")
            .field("suspended", suspended.len() as u64)
            .field("bounced", bounced as u64)
            .emit();
        let summary = DrainSummary { suspended, bounced };
        self.drain_summary = Some(summary.clone());
        summary
    }

    // The next session (round-robin) holding a runnable turn. Closed or
    // vanished sessions bounce their mail and leave the rotation.
    fn next_runnable(&mut self) -> Option<String> {
        for _ in 0..self.rotation.len() {
            let id = self.rotation.pop_front()?;
            let has_mail = self
                .mailboxes
                .get(&id)
                .map(|m| !m.is_empty())
                .unwrap_or(false);
            if !has_mail {
                self.rotation.push_back(id);
                continue;
            }
            if !self.manager.is_open(&id) {
                // Bounce everything queued on a closed session, typed.
                if let Some(mailbox) = self.mailboxes.get_mut(&id) {
                    for turn in mailbox.drain(..) {
                        Self::bounce(
                            "session_closed",
                            &turn.reply,
                            error_reply("session_closed", &id),
                        );
                    }
                }
                self.rotation.push_back(id);
                continue;
            }
            // Runnable: goes to the back *after* its turn, in tick().
            return Some(id);
        }
        None
    }

    fn execute_turn(&mut self, id: String) {
        let Some(turn) = self.mailboxes.get_mut(&id).and_then(|m| m.pop_front()) else {
            self.rotation.push_back(id);
            return;
        };
        if turn.abandoned.load(Ordering::SeqCst) {
            // The waiter already took a `timeout` error; executing the
            // turn anyway would mutate the session behind a reply nobody
            // reads. Skip it, counted.
            telemetry::metrics::global().inc(names::REPLIES_ABANDONED);
            self.rotation.push_back(id);
            return;
        }
        let metrics = telemetry::metrics::global();
        metrics.inc(names::TURNS_ADMITTED);
        let mut body = match self.manager.turn(&id, &turn.text) {
            Ok((outcome, index)) => {
                let digest = self
                    .manager
                    .inspect(&id)
                    .map(|r| r.digest)
                    .unwrap_or_default();
                format!(
                    "{{\"ok\":true,\"session\":\"{}\",\"turn\":{index},\"closed\":{},\
                     \"executed\":{},\"digest\":{digest},\"latency_s\":{},\"reply\":\"{}\"}}",
                    escape(&id),
                    outcome.closed,
                    outcome.executed.is_some(),
                    self.clock.now().saturating_sub(turn.enqueued).as_secs_f64(),
                    escape(&outcome.reply)
                )
            }
            Err(TurnError::Unknown) => error_reply("unknown_session", &id),
            Err(TurnError::Closed) => error_reply("session_closed", &id),
            Err(TurnError::Step(e)) => error_reply("turn_failed", &e.to_string()),
        };
        if body.starts_with("{\"ok\":true") {
            // A pending brownout notice rides the next successful reply,
            // so the user hears about degradation in the conversation
            // instead of discovering shorter answers silently.
            if let Some(notice) = self.notices.remove(&id) {
                let field = format!(",\"notice\":\"{}\"", escape(&notice));
                body.insert_str(body.len() - 1, &field);
            }
        }
        let latency = self.clock.now().saturating_sub(turn.enqueued);
        metrics.observe_duration(names::TURN_SECONDS, latency);
        self.latencies.push_back(latency);
        if self.latencies.len() > LATENCY_WINDOW {
            self.latencies.pop_front();
        }
        self.last_active.insert(id.clone(), self.clock.now());
        Self::send(&turn.reply, body);
        self.rotation.push_back(id);
    }

    fn latency_p95(&self) -> Duration {
        if self.latencies.is_empty() {
            return Duration::ZERO;
        }
        let mut sorted: Vec<Duration> = self.latencies.iter().copied().collect();
        sorted.sort_unstable();
        let rank = (sorted.len() * 95).div_ceil(100);
        sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
    }

    // Sample the pressure signals, feed the governor, and apply whatever
    // level transition (and critical shedding) falls out.
    fn assess_overload(&mut self, queue_depth: usize) {
        let metrics = telemetry::metrics::global();
        let deepest = self
            .mailboxes
            .iter()
            .filter(|(id, _)| id.as_str() != "#drain")
            .map(|(_, m)| m.len())
            .max()
            .unwrap_or(0);
        metrics.set_gauge(names::MAILBOX_DEPTH, deepest as f64);
        let alloc_bytes = self.alloc.as_ref().map(|s| s.delta().bytes).unwrap_or(0);
        self.alloc = Some(telemetry::AllocScope::begin());
        let signals = OverloadSignals {
            queue_fill: queue_depth as f64 / self.queue.capacity() as f64,
            mailbox_fill: deepest as f64 / self.tuning.mailbox_depth as f64,
            p95_ratio: self.latency_p95().as_secs_f64() / self.tuning.turn_slo.as_secs_f64(),
            open_breakers: self.manager.open_breakers(),
            alloc_bytes,
            alloc_budget: self.tuning.alloc_budget,
        };
        // Shedding is gated on *instantaneous* pressure as well as the
        // governor's (hysteresis-held) level: once the backlog drains, the
        // hold keeps the level at critical for a while, but no further
        // sessions should pay for pressure that is already gone.
        let instantaneous = self.governor.policy().classify(&signals);
        if let Some(transition) = self.governor.observe(self.clock.as_ref(), &signals) {
            let to = transition.to;
            metrics.set_gauge(names::LOAD_LEVEL, to.gauge());
            incident::report(
                "overload_transition",
                "daemon.scheduler",
                &format!(
                    "load level {} -> {} (queue {:.0}%, mailbox {:.0}%, p95 {:.2}x SLO, {} open breakers)",
                    transition.from.name(),
                    to.name(),
                    signals.queue_fill * 100.0,
                    signals.mailbox_fill * 100.0,
                    signals.p95_ratio,
                    signals.open_breakers,
                ),
            );
            telemetry::log::warn("daemon.scheduler", "load level changed")
                .field("from", transition.from.name())
                .field("to", to.name())
                .emit();
            self.manager
                .apply_brownout(to.budget_scale(), to.generation_cap());
            for id in self.manager.ids() {
                if let Some(user) = self.manager.user(&id) {
                    let notice = matilda_conversation::degrade::narrate_overload(to.name(), user);
                    self.notices.insert(id, notice);
                }
            }
        }
        if self.governor.level().sheds_sessions() && instantaneous.sheds_sessions() {
            self.shed_least_recent();
        }
    }

    // Critical-load shedding: suspend the least-recently-active session
    // (its durable log stays `in_flight`, so nothing is lost) and bounce
    // its queued turns. One per tick — shedding is a pressure valve, not a
    // massacre.
    fn shed_least_recent(&mut self) {
        let ids = self.manager.ids();
        // Shedding exists to protect the *rest* of the fleet. A lone
        // session has nobody else to protect — its mailbox bound already
        // caps the damage — and suspending it would leave the daemon
        // empty, so critical load with one tenant browns out but never
        // sheds.
        if ids.len() <= 1 {
            return;
        }
        let Some(victim) = ids
            .into_iter()
            .min_by_key(|id| self.last_active.get(id).copied().unwrap_or(Duration::ZERO))
        else {
            return;
        };
        self.manager.suspend(&victim);
        if let Some(mailbox) = self.mailboxes.remove(&victim) {
            for turn in mailbox {
                Self::bounce(
                    "shedding",
                    &turn.reply,
                    overloaded_reply(
                        "session suspended under critical load; it will resume on recovery",
                        LoadLevel::Critical.retry_after_ms(),
                    ),
                );
            }
        }
        self.rotation.retain(|id| id != &victim);
        self.last_active.remove(&victim);
        self.notices.remove(&victim);
        telemetry::metrics::global().inc(names::SESSIONS_SHED);
        incident::report(
            "session_shed",
            "daemon.scheduler",
            &format!(
                "session `{}` suspended under critical load",
                sanitize_field(&victim)
            ),
        );
        telemetry::log::warn("daemon.scheduler", "session shed under critical load")
            .field("session", victim)
            .emit();
    }

    /// One scheduler tick: drain the command queue, assess load, then —
    /// unless a drain settled — admit at most one turn from the
    /// round-robin rotation.
    pub fn tick(&mut self) -> TickOutcome {
        self.ticks += 1;
        let metrics = telemetry::metrics::global();
        metrics.inc(names::TICKS);
        // Sampled before draining: the governor should see the backlog
        // connection threads built up, not the post-drain emptiness.
        let queue_depth = self.queue.len();
        metrics.set_gauge(names::QUEUE_DEPTH, queue_depth as f64);
        let mut routed = false;
        while let Some(command) = self.queue.try_pop() {
            routed = true;
            self.route(command);
        }
        if self.draining {
            self.finish_drain();
            return TickOutcome::Drained;
        }
        // Assess *before* admitting, so a transition's brownout applies to
        // the very turn this tick is about to run.
        self.assess_overload(queue_depth);
        metrics.set_gauge(names::SESSIONS_OPEN, self.manager.len() as f64);
        match self.next_runnable() {
            Some(id) => {
                self.execute_turn(id);
                TickOutcome::Worked
            }
            None if routed => TickOutcome::Worked,
            None => TickOutcome::Idle,
        }
    }

    /// Drive ticks until a drain completes, returning its summary. Idle
    /// ticks block briefly on the queue's condvar instead of spinning.
    pub fn run(mut self) -> DrainSummary {
        loop {
            match self.tick() {
                TickOutcome::Drained => {
                    return self.drain_summary.take().unwrap_or(DrainSummary {
                        suspended: Vec::new(),
                        bounced: 0,
                    });
                }
                TickOutcome::Worked => {}
                TickOutcome::Idle => {
                    // A queue closed without a drain command (the daemon
                    // was dropped, not drained) still suspends the fleet —
                    // logs stay in-flight and the thread exits instead of
                    // spinning on a dead queue.
                    if self.queue.is_closed() {
                        self.draining = true;
                        continue;
                    }
                    // Park until a command lands (or briefly, to re-check);
                    // the next tick's try_pop loop will consume it.
                    if let Some(command) = self.queue.pop_timeout(Duration::from_millis(25)) {
                        self.route(command);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use matilda_core::config::PlatformConfig;
    use std::sync::mpsc::channel;
    use std::sync::Arc;

    fn scheduler() -> (TickScheduler, Arc<CommandQueue>) {
        let manager = SessionManager::new(PlatformConfig::quick(), None, catalog::DEFAULT_DATASET);
        let queue = Arc::new(CommandQueue::new());
        (TickScheduler::new(manager, Arc::clone(&queue)), queue)
    }

    fn ada() -> matilda_conversation::UserProfile {
        matilda_conversation::UserProfile::novice("Ada", "urbanism")
    }

    #[test]
    fn open_then_turn_through_ticks() {
        let (mut sched, queue) = scheduler();
        let (tx, rx) = channel();
        queue
            .push(Command::Open {
                session: "s1".into(),
                question: "what drives label?".into(),
                user: ada(),
                dataset: None,
                reply: tx,
            })
            .ok()
            .unwrap();
        assert_eq!(sched.tick(), TickOutcome::Worked);
        let body = rx.recv().unwrap();
        assert!(body.contains("\"ok\":true"), "{body}");
        let (tx, rx) = channel();
        queue
            .push(Command::turn("s1", "I want to predict 'label'", tx))
            .ok()
            .unwrap();
        assert_eq!(sched.tick(), TickOutcome::Worked);
        let body = rx.recv().unwrap();
        assert!(body.contains("\"turn\":1"), "{body}");
        assert!(body.contains("\"latency_s\":"), "{body}");
        // Nothing queued: idle.
        assert_eq!(sched.tick(), TickOutcome::Idle);
    }

    #[test]
    fn unknown_session_turn_bounces_typed() {
        let (mut sched, queue) = scheduler();
        let (tx, rx) = channel();
        queue.push(Command::turn("ghost", "hi", tx)).ok().unwrap();
        sched.tick();
        let body = rx.recv().unwrap();
        assert!(body.contains("unknown_session"), "{body}");
    }

    #[test]
    fn hostile_session_ids_are_sanitized_in_error_replies() {
        let (mut sched, queue) = scheduler();
        let (tx, rx) = channel();
        queue
            .push(Command::turn("gh\u{7}ost\"\u{1F600}", "hi", tx))
            .ok()
            .unwrap();
        sched.tick();
        let body = rx.recv().unwrap();
        assert!(body.contains("unknown_session"), "{body}");
        assert!(body.contains("gh_ost"), "{body}");
        assert!(
            !body.contains('\u{7}'),
            "control bytes must not echo: {body}"
        );
    }

    #[test]
    fn full_mailbox_bounces_overflow_in_arrival_order() {
        let (mut sched, queue) = scheduler();
        let (tx, rx) = channel();
        queue
            .push(Command::Open {
                session: "s1".into(),
                question: "q".into(),
                user: ada(),
                dataset: None,
                reply: tx,
            })
            .ok()
            .unwrap();
        sched.tick();
        rx.recv().unwrap();
        let depth = sched.tuning.mailbox_depth;
        // Fill the mailbox exactly, then two more: the extras bounce with
        // the typed overloaded reply; the first `depth` stay queued.
        let mut kept = Vec::new();
        for i in 0..depth {
            let (tx, rx) = channel();
            queue
                .push(Command::turn("s1", format!("turn {i}"), tx))
                .ok()
                .unwrap();
            kept.push(rx);
        }
        let mut bounced = Vec::new();
        for i in 0..2 {
            let (tx, rx) = channel();
            queue
                .push(Command::turn("s1", format!("overflow {i}"), tx))
                .ok()
                .unwrap();
            bounced.push(rx);
        }
        sched.tick(); // routes everything; admits one turn
        for rx in &bounced {
            let body = rx.recv().unwrap();
            assert!(body.contains("\"code\":\"overloaded\""), "{body}");
            assert!(body.contains("\"retry_after_ms\":"), "{body}");
        }
        // The kept turns were not bounced: drive the scheduler until each
        // gets a real reply. (The reply may *narrate* the overload in its
        // notice — only the typed bounce code counts as a bounce.)
        for rx in kept {
            for _ in 0..depth + 2 {
                sched.tick();
                if let Ok(body) = rx.try_recv() {
                    assert!(body.starts_with("{\"ok\":true"), "{body}");
                    assert!(!body.contains("\"code\":\"overloaded\""), "{body}");
                    break;
                }
            }
        }
    }

    #[test]
    fn full_queue_refuses_work_but_accepts_control() {
        let queue = CommandQueue::with_capacity(2);
        let (tx, _rx) = channel();
        queue
            .push(Command::turn("s", "a", tx.clone()))
            .ok()
            .unwrap();
        queue
            .push(Command::turn("s", "b", tx.clone()))
            .ok()
            .unwrap();
        // Third work command: Full, command handed back.
        match queue.push(Command::turn("s", "c", tx.clone())) {
            Err(PushError::Full(_)) => {}
            _ => panic!("expected Full"),
        }
        // Control commands bypass the bound so drain cannot be starved.
        queue
            .push(Command::Sessions { reply: tx.clone() })
            .ok()
            .unwrap();
        queue.push(Command::Drain { reply: tx }).ok().unwrap();
        assert_eq!(queue.len(), 4);
        // After close, everything is refused as Closed.
        queue.close();
        let (tx2, _rx2) = channel();
        match queue.push(Command::Sessions { reply: tx2 }) {
            Err(PushError::Closed(_)) => {}
            _ => panic!("expected Closed"),
        }
    }

    #[test]
    fn abandoned_turns_are_skipped_not_executed() {
        let (mut sched, queue) = scheduler();
        let (tx, rx) = channel();
        queue
            .push(Command::Open {
                session: "s1".into(),
                question: "q".into(),
                user: ada(),
                dataset: None,
                reply: tx,
            })
            .ok()
            .unwrap();
        sched.tick();
        rx.recv().unwrap();
        let (tx, _rx) = channel();
        let (command, abandoned) = Command::turn_tracked("s1", "I want to predict 'label'", tx);
        queue.push(command).ok().unwrap();
        // The waiter gives up before the scheduler admits the turn.
        abandoned.store(true, Ordering::SeqCst);
        sched.tick();
        // The turn must not have mutated the session.
        let (tx, rx) = channel();
        queue
            .push(Command::Inspect {
                session: "s1".into(),
                reply: tx,
            })
            .ok()
            .unwrap();
        sched.tick();
        let body = rx.recv().unwrap();
        assert!(body.contains("\"turns\":0"), "{body}");
    }

    #[test]
    fn drain_bounces_queued_turns_and_closes_the_queue() {
        let (mut sched, queue) = scheduler();
        let (tx, rx) = channel();
        queue
            .push(Command::Open {
                session: "s1".into(),
                question: "q".into(),
                user: ada(),
                dataset: None,
                reply: tx,
            })
            .ok()
            .unwrap();
        sched.tick();
        rx.recv().unwrap();
        // Queue one turn, then a drain *behind* it in the same tick: the
        // turn is unadmitted when the drain lands, so it bounces.
        let (turn_tx, turn_rx) = channel();
        let (drain_tx, drain_rx) = channel();
        queue
            .push(Command::turn("s1", "hello", turn_tx))
            .ok()
            .unwrap();
        queue.push(Command::Drain { reply: drain_tx }).ok().unwrap();
        assert_eq!(sched.tick(), TickOutcome::Drained);
        let bounced = turn_rx.recv().unwrap();
        assert!(bounced.contains("draining"), "{bounced}");
        let summary = drain_rx.recv().unwrap();
        assert!(summary.contains("\"drained\":true"), "{summary}");
        assert!(summary.contains("\"suspended\":1"), "{summary}");
        // The queue is closed: later pushes come straight back.
        let (tx, _rx) = channel();
        assert!(queue.push(Command::Sessions { reply: tx }).is_err());
        assert!(queue.is_closed());
    }

    #[test]
    fn sessions_listing_carries_load_level_and_queue_depth() {
        let (mut sched, queue) = scheduler();
        let (tx, rx) = channel();
        queue.push(Command::Sessions { reply: tx }).ok().unwrap();
        sched.tick();
        let body = rx.recv().unwrap();
        assert!(body.contains("\"load_level\":\"nominal\""), "{body}");
        assert!(body.contains("\"queue_depth\":"), "{body}");
    }
}
