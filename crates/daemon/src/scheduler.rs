//! The tick scheduler: fair, preemptible turn admission for the fleet.
//!
//! Connection threads never touch a session. They enqueue [`Command`]s on
//! the [`CommandQueue`] and block on a per-request reply channel; the
//! scheduler thread drains the queue, routes turns into per-session
//! mailboxes, and admits **at most one turn per tick**, round-robining the
//! runnable sessions. Turns execute serially on the scheduler thread, so
//! the at-most-one-in-flight-turn-per-session invariant is structural —
//! and fairness comes from two mechanisms working together:
//!
//! 1. round-robin admission: a session with a deep mailbox cannot be
//!    admitted twice before every other runnable session got a turn;
//! 2. the per-turn `DeadlineBudget` (`PlatformConfig::turn_deadline`):
//!    each admitted turn is charged against its own latency allowance and
//!    preempts at the next cancellation checkpoint when it expires, so one
//!    slow creative search cannot starve the tick loop.
//!
//! Drain is a state machine, not a flag check scattered around:
//!
//! ```text
//! Running --drain--> Draining --fleet suspended--> Drained (queue closed)
//! ```
//!
//! On drain the scheduler stops admitting turns, bounces everything queued
//! with a typed `draining` error, suspends the fleet (drop without close —
//! durable logs stay `in_flight` so a restarted daemon resurrects them),
//! answers the drain waiters, and closes the queue so later pushes fail
//! fast with `shutting_down`.

use std::collections::{HashMap, VecDeque};
use std::sync::mpsc::Sender;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use matilda_provenance::json::escape;
use matilda_telemetry as telemetry;

use crate::manager::{OpenError, SessionManager, TurnError};
use crate::wire::error_reply;

/// Daemon metric names (same registry as the rest of the platform).
pub mod names {
    /// Scheduler ticks taken.
    pub const TICKS: &str = "daemon.ticks";
    /// Turns admitted to a session.
    pub const TURNS_ADMITTED: &str = "daemon.turns_admitted";
    /// Turns refused (unknown session, closed session, draining, ...).
    pub const TURNS_BOUNCED: &str = "daemon.turns_bounced";
    /// End-to-end turn latency (enqueue to reply) in seconds, on the
    /// daemon clock.
    pub const TURN_SECONDS: &str = "daemon.turn_seconds";
    /// Live sessions resident in the fleet.
    pub const SESSIONS_OPEN: &str = "daemon.sessions_open";
    /// Graceful drains performed.
    pub const DRAINS: &str = "daemon.drains";
}

/// One request routed from a connection thread to the scheduler. Every
/// variant carries the channel its JSON reply must be sent down.
pub enum Command {
    /// Open a fresh session.
    Open {
        /// Requested session name (sanitized by the manager).
        session: String,
        /// Opening research question.
        question: String,
        /// Who is talking.
        user: matilda_conversation::UserProfile,
        /// Catalog dataset, `None` for the daemon default.
        dataset: Option<String>,
        /// Where the reply goes.
        reply: Sender<String>,
    },
    /// One conversational turn.
    Turn {
        /// Target session id.
        session: String,
        /// The utterance.
        text: String,
        /// Where the reply goes.
        reply: Sender<String>,
    },
    /// Introspect one session.
    Inspect {
        /// Target session id.
        session: String,
        /// Where the reply goes.
        reply: Sender<String>,
    },
    /// The fleet + store listing.
    Sessions {
        /// Where the reply goes.
        reply: Sender<String>,
    },
    /// Begin a graceful drain; replied to once the fleet is suspended.
    Drain {
        /// Where the drain summary goes.
        reply: Sender<String>,
    },
}

struct QueueState {
    commands: VecDeque<Command>,
    closed: bool,
}

/// The multi-producer command queue between connection threads and the
/// scheduler. `std::sync` primitives on purpose: the vendored parking_lot
/// has no `Condvar`, and the queue is nowhere near hot enough to care.
pub struct CommandQueue {
    state: Mutex<QueueState>,
    ready: Condvar,
}

impl Default for CommandQueue {
    fn default() -> Self {
        Self::new()
    }
}

impl CommandQueue {
    /// A new, open queue.
    pub fn new() -> Self {
        Self {
            state: Mutex::new(QueueState {
                commands: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    /// Enqueue a command. After the scheduler drained and closed the queue
    /// the command comes straight back (boxed — it is a wide enum) so the
    /// caller can reply `shutting_down` itself.
    pub fn push(&self, command: Command) -> Result<(), Box<Command>> {
        let mut state = self.state.lock().unwrap();
        if state.closed {
            return Err(Box::new(command));
        }
        state.commands.push_back(command);
        drop(state);
        self.ready.notify_one();
        Ok(())
    }

    /// Dequeue without blocking.
    pub fn try_pop(&self) -> Option<Command> {
        self.state.lock().unwrap().commands.pop_front()
    }

    /// Block up to `timeout` for a command to arrive. `None` on timeout or
    /// when the queue closed while waiting.
    pub fn pop_timeout(&self, timeout: Duration) -> Option<Command> {
        let mut state = self.state.lock().unwrap();
        if state.commands.is_empty() && !state.closed {
            let (next, _timed_out) = self.ready.wait_timeout(state, timeout).unwrap();
            state = next;
        }
        state.commands.pop_front()
    }

    /// Close the queue: later pushes bounce; already-queued commands stay
    /// poppable so a draining scheduler can flush them.
    pub fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.ready.notify_all();
    }

    /// Whether the queue has been closed.
    pub fn is_closed(&self) -> bool {
        self.state.lock().unwrap().closed
    }
}

/// What one [`TickScheduler::tick`] accomplished.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TickOutcome {
    /// No commands arrived and no mailbox had a runnable turn.
    Idle,
    /// Commands were routed and/or one turn executed.
    Worked,
    /// A drain completed; the scheduler is done and the queue is closed.
    Drained,
}

/// How a drain ended, for the drain reply and the daemon's logs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DrainSummary {
    /// Session ids suspended (dropped without close, logs left in-flight).
    pub suspended: Vec<String>,
    /// Queued-but-unadmitted turns bounced with a `draining` error.
    pub bounced: usize,
}

/// A turn waiting in a session's mailbox.
struct QueuedTurn {
    text: String,
    reply: Sender<String>,
    /// Enqueue stamp on the daemon clock, for end-to-end latency.
    enqueued: Duration,
}

/// The scheduler itself. Single-threaded by design: construct it, then
/// either call [`TickScheduler::tick`] in a loop you own (tests drive it
/// this way on a `TestClock`) or hand it to [`TickScheduler::run`] on a
/// dedicated thread.
pub struct TickScheduler {
    manager: SessionManager,
    queue: std::sync::Arc<CommandQueue>,
    mailboxes: HashMap<String, VecDeque<QueuedTurn>>,
    /// Round-robin cursor: session ids in admission order.
    rotation: VecDeque<String>,
    clock: std::sync::Arc<dyn matilda_resilience::Clock>,
    draining: bool,
    drain_summary: Option<DrainSummary>,
    ticks: u64,
}

impl TickScheduler {
    /// Build a scheduler over `manager`, reading commands from `queue`.
    /// Sessions already resident in the manager (the recovered fleet) get
    /// mailboxes and rotation slots up front, so turns land on them exactly
    /// as on freshly opened ones. The latency clock is the thread's
    /// resilience clock, so chaos tests that activate a `TestClock` measure
    /// virtual time.
    pub fn new(manager: SessionManager, queue: std::sync::Arc<CommandQueue>) -> Self {
        let mut mailboxes: HashMap<String, VecDeque<QueuedTurn>> = HashMap::new();
        let mut rotation = VecDeque::new();
        for id in manager.ids() {
            mailboxes.entry(id.clone()).or_default();
            rotation.push_back(id);
        }
        Self {
            manager,
            queue,
            mailboxes,
            rotation,
            clock: matilda_resilience::fault::clock(),
            draining: false,
            drain_summary: None,
            ticks: 0,
        }
    }

    /// The fleet, for startup recovery adoption.
    pub fn manager_mut(&mut self) -> &mut SessionManager {
        &mut self.manager
    }

    /// Ticks taken so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    fn send(reply: &Sender<String>, body: String) {
        // A caller that gave up on its reply is not the scheduler's
        // problem; the turn still committed.
        let _ = reply.send(body);
    }

    fn route(&mut self, command: Command) {
        match command {
            Command::Open {
                session,
                question,
                user,
                dataset,
                reply,
            } => {
                let body = match self
                    .manager
                    .open(&session, &question, user, dataset.as_deref())
                {
                    Ok((id, opening, trace)) => {
                        self.mailboxes.entry(id.clone()).or_default();
                        self.rotation.push_back(id.clone());
                        format!(
                            "{{\"ok\":true,\"session\":\"{}\",\"trace\":{trace},\"opening\":\"{}\"}}",
                            escape(&id),
                            escape(&opening)
                        )
                    }
                    Err(OpenError::Exists) => error_reply("session_exists", "id already in use"),
                    Err(OpenError::UnknownDataset(name)) => error_reply(
                        "bad_request",
                        &format!("dataset `{name}` is not in the catalog"),
                    ),
                    Err(OpenError::Store(detail)) => error_reply("store", &detail),
                };
                Self::send(&reply, body);
            }
            Command::Turn {
                session,
                text,
                reply,
            } => {
                if self.draining {
                    telemetry::metrics::global().inc(names::TURNS_BOUNCED);
                    Self::send(&reply, error_reply("draining", "daemon is draining"));
                } else if let Some(mailbox) = self.mailboxes.get_mut(&session) {
                    mailbox.push_back(QueuedTurn {
                        text,
                        reply,
                        enqueued: self.clock.now(),
                    });
                } else {
                    telemetry::metrics::global().inc(names::TURNS_BOUNCED);
                    Self::send(&reply, error_reply("unknown_session", &session));
                }
            }
            Command::Inspect { session, reply } => {
                let body = match self.manager.inspect(&session) {
                    Some(report) => format!(
                        "{{\"ok\":true,\"session\":\"{}\",\"turns\":{},\"digest\":{},\
                         \"trace\":{},\"trace_coherent\":{},\"closed\":{},\"events\":{}}}",
                        escape(&session),
                        report.turns,
                        report.digest,
                        report.trace_id,
                        report.trace_coherent,
                        report.closed,
                        report.events
                    ),
                    None => error_reply("unknown_session", &session),
                };
                Self::send(&reply, body);
            }
            Command::Sessions { reply } => {
                let body = self.manager.listing_json(self.draining);
                Self::send(&reply, body);
            }
            Command::Drain { reply } => {
                self.draining = true;
                self.drain_waiters_push(reply);
            }
        }
    }

    fn drain_waiters_push(&mut self, reply: Sender<String>) {
        // Stored in a mailbox under a reserved key no sanitized session id
        // can collide with (sanitize_id never emits `#`).
        self.mailboxes
            .entry("#drain".to_string())
            .or_default()
            .push_back(QueuedTurn {
                text: String::new(),
                reply,
                enqueued: self.clock.now(),
            });
    }

    /// Complete a drain: bounce queued turns, suspend the fleet, answer
    /// the waiters, close the queue. The summary is also stashed for
    /// [`TickScheduler::run`] to return.
    fn finish_drain(&mut self) -> DrainSummary {
        let waiters = self.mailboxes.remove("#drain").unwrap_or_default();
        let mut bounced = 0;
        for (_, mailbox) in self.mailboxes.drain() {
            for turn in mailbox {
                bounced += 1;
                Self::send(&turn.reply, error_reply("draining", "daemon is draining"));
            }
        }
        let suspended = self.manager.suspend_all();
        let metrics = telemetry::metrics::global();
        metrics.inc(names::DRAINS);
        metrics.add(names::TURNS_BOUNCED, bounced as u64);
        metrics.set_gauge(names::SESSIONS_OPEN, 0.0);
        self.queue.close();
        let mut ids = String::new();
        for id in &suspended {
            if !ids.is_empty() {
                ids.push(',');
            }
            ids.push_str(&format!("\"{}\"", escape(id)));
        }
        let body = format!(
            "{{\"ok\":true,\"drained\":true,\"suspended\":{},\"bounced\":{bounced},\"sessions\":[{ids}]}}",
            suspended.len()
        );
        for waiter in waiters {
            Self::send(&waiter.reply, body.clone());
        }
        telemetry::log::info("daemon.scheduler", "drain complete")
            .field("suspended", suspended.len() as u64)
            .field("bounced", bounced as u64)
            .emit();
        let summary = DrainSummary { suspended, bounced };
        self.drain_summary = Some(summary.clone());
        summary
    }

    // The next session (round-robin) holding a runnable turn. Closed or
    // vanished sessions bounce their mail and leave the rotation.
    fn next_runnable(&mut self) -> Option<String> {
        for _ in 0..self.rotation.len() {
            let id = self.rotation.pop_front()?;
            let has_mail = self
                .mailboxes
                .get(&id)
                .map(|m| !m.is_empty())
                .unwrap_or(false);
            if !has_mail {
                self.rotation.push_back(id);
                continue;
            }
            if !self.manager.is_open(&id) {
                // Bounce everything queued on a closed session, typed.
                if let Some(mailbox) = self.mailboxes.get_mut(&id) {
                    for turn in mailbox.drain(..) {
                        telemetry::metrics::global().inc(names::TURNS_BOUNCED);
                        Self::send(&turn.reply, error_reply("session_closed", &id));
                    }
                }
                self.rotation.push_back(id);
                continue;
            }
            // Runnable: goes to the back *after* its turn, in tick().
            return Some(id);
        }
        None
    }

    fn execute_turn(&mut self, id: String) {
        let Some(turn) = self.mailboxes.get_mut(&id).and_then(|m| m.pop_front()) else {
            self.rotation.push_back(id);
            return;
        };
        let metrics = telemetry::metrics::global();
        metrics.inc(names::TURNS_ADMITTED);
        let body = match self.manager.turn(&id, &turn.text) {
            Ok((outcome, index)) => {
                let digest = self
                    .manager
                    .inspect(&id)
                    .map(|r| r.digest)
                    .unwrap_or_default();
                format!(
                    "{{\"ok\":true,\"session\":\"{}\",\"turn\":{index},\"closed\":{},\
                     \"executed\":{},\"digest\":{digest},\"latency_s\":{},\"reply\":\"{}\"}}",
                    escape(&id),
                    outcome.closed,
                    outcome.executed.is_some(),
                    self.clock.now().saturating_sub(turn.enqueued).as_secs_f64(),
                    escape(&outcome.reply)
                )
            }
            Err(TurnError::Unknown) => error_reply("unknown_session", &id),
            Err(TurnError::Closed) => error_reply("session_closed", &id),
            Err(TurnError::Step(e)) => error_reply("turn_failed", &e.to_string()),
        };
        let latency = self.clock.now().saturating_sub(turn.enqueued);
        metrics.observe_duration(names::TURN_SECONDS, latency);
        Self::send(&turn.reply, body);
        self.rotation.push_back(id);
    }

    /// One scheduler tick: drain the command queue, then — unless a drain
    /// settled — admit at most one turn from the round-robin rotation.
    pub fn tick(&mut self) -> TickOutcome {
        self.ticks += 1;
        let metrics = telemetry::metrics::global();
        metrics.inc(names::TICKS);
        let mut routed = false;
        while let Some(command) = self.queue.try_pop() {
            routed = true;
            self.route(command);
        }
        if self.draining {
            self.finish_drain();
            return TickOutcome::Drained;
        }
        metrics.set_gauge(names::SESSIONS_OPEN, self.manager.len() as f64);
        match self.next_runnable() {
            Some(id) => {
                self.execute_turn(id);
                TickOutcome::Worked
            }
            None if routed => TickOutcome::Worked,
            None => TickOutcome::Idle,
        }
    }

    /// Drive ticks until a drain completes, returning its summary. Idle
    /// ticks block briefly on the queue's condvar instead of spinning.
    pub fn run(mut self) -> DrainSummary {
        loop {
            match self.tick() {
                TickOutcome::Drained => {
                    return self.drain_summary.take().unwrap_or(DrainSummary {
                        suspended: Vec::new(),
                        bounced: 0,
                    });
                }
                TickOutcome::Worked => {}
                TickOutcome::Idle => {
                    // A queue closed without a drain command (the daemon
                    // was dropped, not drained) still suspends the fleet —
                    // logs stay in-flight and the thread exits instead of
                    // spinning on a dead queue.
                    if self.queue.is_closed() {
                        self.draining = true;
                        continue;
                    }
                    // Park until a command lands (or briefly, to re-check);
                    // the next tick's try_pop loop will consume it.
                    if let Some(command) = self.queue.pop_timeout(Duration::from_millis(25)) {
                        self.route(command);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;
    use matilda_core::config::PlatformConfig;
    use std::sync::mpsc::channel;
    use std::sync::Arc;

    fn scheduler() -> (TickScheduler, Arc<CommandQueue>) {
        let manager = SessionManager::new(PlatformConfig::quick(), None, catalog::DEFAULT_DATASET);
        let queue = Arc::new(CommandQueue::new());
        (TickScheduler::new(manager, Arc::clone(&queue)), queue)
    }

    fn ada() -> matilda_conversation::UserProfile {
        matilda_conversation::UserProfile::novice("Ada", "urbanism")
    }

    #[test]
    fn open_then_turn_through_ticks() {
        let (mut sched, queue) = scheduler();
        let (tx, rx) = channel();
        queue
            .push(Command::Open {
                session: "s1".into(),
                question: "what drives label?".into(),
                user: ada(),
                dataset: None,
                reply: tx,
            })
            .ok()
            .unwrap();
        assert_eq!(sched.tick(), TickOutcome::Worked);
        let body = rx.recv().unwrap();
        assert!(body.contains("\"ok\":true"), "{body}");
        let (tx, rx) = channel();
        queue
            .push(Command::Turn {
                session: "s1".into(),
                text: "I want to predict 'label'".into(),
                reply: tx,
            })
            .ok()
            .unwrap();
        assert_eq!(sched.tick(), TickOutcome::Worked);
        let body = rx.recv().unwrap();
        assert!(body.contains("\"turn\":1"), "{body}");
        assert!(body.contains("\"latency_s\":"), "{body}");
        // Nothing queued: idle.
        assert_eq!(sched.tick(), TickOutcome::Idle);
    }

    #[test]
    fn unknown_session_turn_bounces_typed() {
        let (mut sched, queue) = scheduler();
        let (tx, rx) = channel();
        queue
            .push(Command::Turn {
                session: "ghost".into(),
                text: "hi".into(),
                reply: tx,
            })
            .ok()
            .unwrap();
        sched.tick();
        let body = rx.recv().unwrap();
        assert!(body.contains("unknown_session"), "{body}");
    }

    #[test]
    fn drain_bounces_queued_turns_and_closes_the_queue() {
        let (mut sched, queue) = scheduler();
        let (tx, rx) = channel();
        queue
            .push(Command::Open {
                session: "s1".into(),
                question: "q".into(),
                user: ada(),
                dataset: None,
                reply: tx,
            })
            .ok()
            .unwrap();
        sched.tick();
        rx.recv().unwrap();
        // Queue one turn, then a drain *behind* it in the same tick: the
        // turn is unadmitted when the drain lands, so it bounces.
        let (turn_tx, turn_rx) = channel();
        let (drain_tx, drain_rx) = channel();
        queue
            .push(Command::Turn {
                session: "s1".into(),
                text: "hello".into(),
                reply: turn_tx,
            })
            .ok()
            .unwrap();
        queue.push(Command::Drain { reply: drain_tx }).ok().unwrap();
        assert_eq!(sched.tick(), TickOutcome::Drained);
        let bounced = turn_rx.recv().unwrap();
        assert!(bounced.contains("draining"), "{bounced}");
        let summary = drain_rx.recv().unwrap();
        assert!(summary.contains("\"drained\":true"), "{summary}");
        assert!(summary.contains("\"suspended\":1"), "{summary}");
        // The queue is closed: later pushes come straight back.
        let (tx, _rx) = channel();
        assert!(queue.push(Command::Sessions { reply: tx }).is_err());
        assert!(queue.is_closed());
    }
}
