//! matilda-daemon: the resident multi-session MATILDA service.
//!
//! The paper frames MATILDA as a conversational service many non-expert
//! users talk to *concurrently*; until now every `DesignSession` lived and
//! died inside one process invocation. This crate is the serving shape on
//! top of eight PRs of platform work:
//!
//! - [`wire`] — a dependency-free length-prefixed JSON protocol over a
//!   Unix socket, every peer misbehaviour a typed error;
//! - [`manager`] — the fleet: many `DesignSession`s keyed by id, durable
//!   through `core::sessionstore`;
//! - [`scheduler`] — a tick loop admitting at most one in-flight turn per
//!   session, round-robining runnable sessions, each turn charged against
//!   the per-turn `DeadlineBudget` so a slow creative search preempts
//!   instead of starving its neighbours;
//! - [`server`] — the accept loops (Unix, and optionally token-gated TCP)
//!   and per-connection handlers, with a global connection cap and
//!   per-connection frame-rate limiting;
//! - [`catalog`] — named deterministic datasets, so restarts can resolve
//!   a session's data again;
//! - [`daemon`] — assembly: startup recovery, the HTTP `/sessions` and
//!   `/drain` routes, graceful drain;
//! - [`client`] — a thin blocking client for tests and scripting.
//!
//! Graceful drain **suspends** the fleet (drop without conversational
//! close), leaving every durable log classified `in_flight`, so the next
//! daemon's recovery pass resurrects the fleet by deterministic replay —
//! the same kill-and-resurrect contract PR 8 established, now for a whole
//! service.
//!
//! Overload never crashes the daemon and never silently queues without
//! bound: the command queue and per-session mailboxes are bounded (typed
//! `overloaded` bounces with retry-after hints), and an
//! [`matilda_resilience::OverloadGovernor`] in the scheduler degrades
//! gracefully — halved deadline budgets at `elevated`, capped search and
//! bounced `open`s at `saturated`, least-recently-active session shedding
//! at `critical` — with every transition narrated to each session's user
//! at their expertise level.

pub mod catalog;
pub mod client;
pub mod daemon;
pub mod manager;
pub mod scheduler;
pub mod server;
pub mod wire;

/// Everything a harness or binary usually needs.
pub mod prelude {
    pub use crate::catalog::{self, DEFAULT_DATASET};
    pub use crate::client::{reply_field, reply_ok, DaemonClient};
    pub use crate::daemon::{Daemon, DaemonConfig};
    pub use crate::manager::{InspectReport, OpenError, SessionManager, TurnError};
    pub use crate::scheduler::{
        Command, CommandQueue, DrainSummary, PushError, SchedulerTuning, TickOutcome, TickScheduler,
    };
    pub use crate::server::{constant_time_eq, ConnAuth, ConnLimits, TcpWireServer, WireServer};
    pub use crate::wire::{
        overloaded_reply, read_frame, sanitize_field, write_frame, Request, WireError,
        MAX_FRAME_BYTES,
    };
}

pub use daemon::{Daemon, DaemonConfig};
