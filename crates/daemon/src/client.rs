//! A thin blocking client for the daemon's wire protocol.
//!
//! Used by the test harnesses and by anyone scripting the daemon from
//! Rust. One client wraps one connection — Unix socket or authenticated
//! TCP; replies come back as raw JSON strings (flat objects — parse them
//! with [`matilda_provenance::json::parse_flat_object`] when fields
//! matter).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::Path;

use matilda_provenance::json::{parse_flat_object, FlatValue};

use crate::wire::{read_frame, write_frame, Request, WireError};

// The two transports a client can speak over, unified so every request
// method works on either.
enum ClientStream {
    Unix(UnixStream),
    Tcp(TcpStream),
}

impl Read for ClientStream {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        match self {
            ClientStream::Unix(s) => s.read(buf),
            ClientStream::Tcp(s) => s.read(buf),
        }
    }
}

impl Write for ClientStream {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        match self {
            ClientStream::Unix(s) => s.write(buf),
            ClientStream::Tcp(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> std::io::Result<()> {
        match self {
            ClientStream::Unix(s) => s.flush(),
            ClientStream::Tcp(s) => s.flush(),
        }
    }
}

/// One connection to a resident daemon.
pub struct DaemonClient {
    stream: ClientStream,
}

impl DaemonClient {
    /// Connect to the daemon socket at `path`.
    pub fn connect(path: &Path) -> std::io::Result<Self> {
        Ok(Self {
            stream: ClientStream::Unix(UnixStream::connect(path)?),
        })
    }

    /// Connect to the daemon's TCP door at `addr` (e.g. `127.0.0.1:7333`).
    /// The connection is useless until [`DaemonClient::auth`] succeeds.
    pub fn connect_tcp(addr: &str) -> std::io::Result<Self> {
        Ok(Self {
            stream: ClientStream::Tcp(TcpStream::connect(addr)?),
        })
    }

    /// Present the shared secret. Must be the first request on a TCP
    /// connection; a no-op ok on a Unix one.
    pub fn auth(&mut self, token: &str) -> Result<String, WireError> {
        self.request(&Request::Auth {
            token: token.to_string(),
        })
    }

    /// Send one request and wait for its reply frame.
    pub fn request(&mut self, request: &Request) -> Result<String, WireError> {
        write_frame(&mut self.stream, &request.to_json())?;
        read_frame(&mut self.stream)?.ok_or(WireError::Torn {
            expected: 4,
            got: 0,
        })
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<String, WireError> {
        self.request(&Request::Ping)
    }

    /// Open a session for a novice user over the daemon's default dataset.
    pub fn open(&mut self, session: &str, question: &str) -> Result<String, WireError> {
        self.request(&Request::Open {
            session: session.to_string(),
            question: question.to_string(),
            user_name: "user".to_string(),
            expertise: "novice".to_string(),
            domain: "general".to_string(),
            openness: 0.3,
            dataset: None,
        })
    }

    /// One conversational turn.
    pub fn turn(&mut self, session: &str, text: &str) -> Result<String, WireError> {
        self.request(&Request::Turn {
            session: session.to_string(),
            text: text.to_string(),
        })
    }

    /// Introspect one session.
    pub fn inspect(&mut self, session: &str) -> Result<String, WireError> {
        self.request(&Request::Inspect {
            session: session.to_string(),
        })
    }

    /// The fleet + store listing.
    pub fn sessions(&mut self) -> Result<String, WireError> {
        self.request(&Request::Sessions)
    }

    /// Trigger a graceful drain; blocks until the fleet is suspended.
    pub fn drain(&mut self) -> Result<String, WireError> {
        self.request(&Request::Drain)
    }
}

/// Pull a field out of a flat JSON reply: `Str` comes back verbatim,
/// numbers and booleans as their literal text. `None` when the reply is
/// not flat JSON or lacks the field.
pub fn reply_field(reply: &str, key: &str) -> Option<String> {
    let fields = parse_flat_object(reply)?;
    fields
        .into_iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| match v {
            FlatValue::Str(s) => s,
            FlatValue::Num(raw) => raw,
            FlatValue::Bool(b) => b.to_string(),
            FlatValue::Null => "null".to_string(),
        })
}

/// Whether a reply carries `"ok":true`.
pub fn reply_ok(reply: &str) -> bool {
    reply_field(reply, "ok").as_deref() == Some("true")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reply_fields_parse() {
        let reply = "{\"ok\":true,\"turn\":3,\"reply\":\"hi\",\"closed\":false}";
        assert!(reply_ok(reply));
        assert_eq!(reply_field(reply, "turn").as_deref(), Some("3"));
        assert_eq!(reply_field(reply, "reply").as_deref(), Some("hi"));
        assert_eq!(reply_field(reply, "closed").as_deref(), Some("false"));
        assert_eq!(reply_field(reply, "missing"), None);
        assert!(!reply_ok("{\"ok\":false}"));
        assert!(!reply_ok("garbage"));
    }
}
