//! The `matilda-daemon` binary: a resident MATILDA service.
//!
//! ```text
//! matilda-daemon [--socket PATH] [--serve HOST:PORT] [--dataset NAME]
//!                [--store DIR] [--turn-deadline-ms N] [--seed N]
//!                [--tcp HOST:PORT] [--token SECRET]
//! ```
//!
//! - `--socket` — Unix socket for the wire protocol
//!   (default `/tmp/matilda-daemon.sock`);
//! - `--serve` — also bind the HTTP observability listener
//!   (`/metrics`, `/sessions`, `/drain`, ...);
//! - `--dataset` — default catalog dataset (`demo` or `urban`);
//! - `--store` — durable session store root (falls back to the
//!   `MATILDA_SESSION_DIR` environment variable; omit both for an
//!   in-memory fleet);
//! - `--turn-deadline-ms` — per-turn latency allowance; slow turns preempt
//!   at this deadline instead of starving the tick loop;
//! - `--seed` — base seed per-session seeds derive from;
//! - `--tcp` — also expose the wire protocol over TCP (falls back to
//!   `MATILDA_DAEMON_TCP_ADDR`). **Requires a token**: the daemon refuses
//!   to bind TCP without one;
//! - `--token` — shared secret TCP clients must present in an `auth` op
//!   first (falls back to `MATILDA_DAEMON_TOKEN`; prefer the environment
//!   variable — argv is visible in the process listing).
//!
//! The container has no signal-handling dependency, so shutdown is an
//! explicit drain: `{"op":"drain"}` on the socket, or `GET /drain` on the
//! HTTP listener. The process exits once the fleet is suspended; a later
//! start with the same `--store` resurrects it.

use std::path::PathBuf;
use std::time::Duration;

use matilda_core::sessionstore;
use matilda_daemon::{Daemon, DaemonConfig};

fn usage() -> ! {
    eprintln!(
        "usage: matilda-daemon [--socket PATH] [--serve HOST:PORT] [--dataset NAME] \
         [--store DIR] [--turn-deadline-ms N] [--seed N] [--tcp HOST:PORT] [--token SECRET]"
    );
    std::process::exit(2);
}

fn parse_args() -> DaemonConfig {
    let mut config = DaemonConfig::new("/tmp/matilda-daemon.sock");
    config.store_dir = std::env::var(sessionstore::DIR_ENV).ok().map(PathBuf::from);
    config.tcp = std::env::var("MATILDA_DAEMON_TCP_ADDR").ok();
    config.token = std::env::var("MATILDA_DAEMON_TOKEN").ok();
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = |flag: &str| match args.next() {
            Some(v) => v,
            None => {
                eprintln!("missing value for {flag}");
                usage();
            }
        };
        match flag.as_str() {
            "--socket" => config.socket = PathBuf::from(value("--socket")),
            "--serve" => config.http = Some(value("--serve")),
            "--dataset" => config.dataset = value("--dataset"),
            "--store" => config.store_dir = Some(PathBuf::from(value("--store"))),
            "--turn-deadline-ms" => match value("--turn-deadline-ms").parse::<u64>() {
                Ok(ms) => config.platform.turn_deadline = Some(Duration::from_millis(ms)),
                Err(_) => usage(),
            },
            "--seed" => match value("--seed").parse::<u64>() {
                Ok(seed) => config.platform.seed = seed,
                Err(_) => usage(),
            },
            "--tcp" => config.tcp = Some(value("--tcp")),
            "--token" => config.token = Some(value("--token")),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    if matilda_daemon::catalog::resolve(&config.dataset).is_none() {
        eprintln!(
            "unknown dataset `{}`; catalog: {:?}",
            config.dataset,
            matilda_daemon::catalog::DATASETS
        );
        std::process::exit(2);
    }
    config
}

fn main() {
    let config = parse_args();
    let socket = config.socket.clone();
    let daemon = match Daemon::start(config) {
        Ok(daemon) => daemon,
        Err(e) => {
            eprintln!("matilda-daemon failed to start: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "matilda-daemon resident on {} ({} session(s) recovered){}{}",
        socket.display(),
        daemon.recovered().len(),
        match daemon.http_addr() {
            Some(addr) => format!(", observability on http://{addr}"),
            None => String::new(),
        },
        match daemon.tcp_addr() {
            Some(addr) => format!(", authenticated tcp on {addr}"),
            None => String::new(),
        }
    );
    // No libc, no signal handlers: wait for a drain to arrive over the
    // wire or HTTP, then exit cleanly.
    while !daemon.is_drained() {
        std::thread::sleep(Duration::from_millis(200));
    }
    let summary = daemon.shutdown();
    eprintln!(
        "matilda-daemon drained: {} session(s) suspended, {} turn(s) bounced",
        summary.suspended.len(),
        summary.bounced
    );
}
