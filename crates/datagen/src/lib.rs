//! # matilda-datagen
//!
//! Synthetic workload and scenario generators for the MATILDA platform's
//! evaluation, all deterministic given a seed:
//!
//! - [`mod@urban`]: the paper's running public-policy scenario (districts,
//!   pedestrianization intervention, ground-truth effects);
//! - [`mod@behaviour`]: the video-derived behavioural-pattern substitute;
//! - [`mod@questionnaire`]: Likert-scale survey responses with a latent target;
//! - [`mod@blobs`] / [`mod@moons`]: classic classification benchmarks;
//! - [`mod@regression`]: linear and Friedman-style regression benchmarks;
//! - [`mod@imbalance`]: skewed binary classification;
//! - [`mod@missing`]: MCAR null injection onto any frame;
//! - [`mod@rng`]: seeded normal sampling shared by the generators.

pub mod behaviour;
pub mod blobs;
pub mod imbalance;
pub mod missing;
pub mod moons;
pub mod questionnaire;
pub mod regression;
pub mod rng;
pub mod urban;

/// Convenient re-exports of the most used items.
pub mod prelude {
    pub use crate::behaviour::{behaviour_patterns, BehaviourConfig};
    pub use crate::blobs::{blobs, blobs_with_noise, BlobsConfig};
    pub use crate::imbalance::{imbalanced, ImbalanceConfig};
    pub use crate::missing::inject_mcar;
    pub use crate::moons::{moons, MoonsConfig};
    pub use crate::questionnaire::{questionnaire, QuestionnaireConfig};
    pub use crate::regression::{friedman, linear, RegressionConfig};
    pub use crate::urban::{is_treated, urban_panel, UrbanConfig};
}

pub use prelude::*;
