//! Behavioural-pattern features — the substitute for the paper's
//! video-based pedestrian observation (perceptron behaviour extraction from
//! surveillance footage).
//!
//! Instead of video, we simulate the *output* of such an extraction: one
//! row per observed individual with aggregated movement features (dwell
//! time, visits, zone entropy, transit time) and a `period` column.
//! Individuals observed after a pedestrianization dwell longer in the
//! intervention zone and transit less by car, with configurable drift —
//! the classifier's job (detecting before/after change) is preserved.

use crate::rng::{normal_with, rng};
use matilda_data::{Column, DataFrame};
use rand::Rng;

/// Configuration of the behavioural feature generator.
#[derive(Debug, Clone)]
pub struct BehaviourConfig {
    /// Individuals observed per period.
    pub n_individuals: usize,
    /// Drift of the behavioural pattern after the intervention, in
    /// standard deviations (0 = no change).
    pub drift: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BehaviourConfig {
    fn default() -> Self {
        Self {
            n_individuals: 200,
            drift: 1.0,
            seed: 42,
        }
    }
}

/// Generate behavioural observations: `dwell_minutes`, `n_zone_visits`,
/// `zone_entropy`, `car_transit_minutes`, `group_size` features plus the
/// `period` target (`before` / `after`).
pub fn behaviour_patterns(config: &BehaviourConfig) -> DataFrame {
    let mut r = rng(config.seed);
    let n = config.n_individuals * 2;
    let mut dwell = Vec::with_capacity(n);
    let mut visits = Vec::with_capacity(n);
    let mut entropy = Vec::with_capacity(n);
    let mut car = Vec::with_capacity(n);
    let mut group = Vec::with_capacity(n);
    let mut period: Vec<&str> = Vec::with_capacity(n);
    for (is_after, label) in [(false, "before"), (true, "after")] {
        let shift = if is_after { config.drift } else { 0.0 };
        for _ in 0..config.n_individuals {
            // After the intervention: longer dwell, more visits, richer
            // zone mixing, less car transit.
            dwell.push(normal_with(&mut r, 12.0 + 6.0 * shift, 4.0).max(0.0));
            visits.push(normal_with(&mut r, 3.0 + 1.5 * shift, 1.2).max(0.0).round());
            entropy.push(normal_with(&mut r, 0.8 + 0.3 * shift, 0.25).clamp(0.0, 3.0));
            car.push(normal_with(&mut r, 18.0 - 5.0 * shift, 5.0).max(0.0));
            group.push(r.gen_range(1..5) as f64);
            period.push(label);
        }
    }
    DataFrame::from_columns(vec![
        ("dwell_minutes", Column::from_f64(dwell)),
        ("n_zone_visits", Column::from_f64(visits)),
        ("zone_entropy", Column::from_f64(entropy)),
        ("car_transit_minutes", Column::from_f64(car)),
        ("group_size", Column::from_f64(group)),
        ("period", Column::from_categorical(&period)),
    ])
    .expect("unique names")
}

#[cfg(test)]
mod tests {
    use super::*;
    use matilda_ml::prelude::*;

    fn auc_for_drift(drift: f64) -> f64 {
        let df = behaviour_patterns(&BehaviourConfig {
            n_individuals: 150,
            drift,
            seed: 9,
        });
        let data = Dataset::classification(
            &df,
            &[
                "dwell_minutes",
                "n_zone_visits",
                "zone_entropy",
                "car_transit_minutes",
            ],
            "period",
        )
        .unwrap();
        // Use CV accuracy as a monotone proxy for separability.
        cross_validate(
            &ModelSpec::Logistic {
                learning_rate: 0.3,
                epochs: 150,
                l2: 1e-3,
            },
            &data,
            4,
            Scoring::Accuracy,
            0,
        )
        .unwrap()
        .mean
    }

    #[test]
    fn shape() {
        let df = behaviour_patterns(&BehaviourConfig::default());
        assert_eq!(df.n_rows(), 400);
        assert_eq!(df.n_cols(), 6);
    }

    #[test]
    fn deterministic() {
        let c = BehaviourConfig::default();
        assert_eq!(behaviour_patterns(&c), behaviour_patterns(&c));
    }

    #[test]
    fn detectability_grows_with_drift() {
        let none = auc_for_drift(0.0);
        let strong = auc_for_drift(2.0);
        assert!(none < 0.62, "no drift should be near chance, got {none}");
        assert!(
            strong > 0.9,
            "strong drift should be detectable, got {strong}"
        );
    }

    #[test]
    fn group_size_uninformative() {
        let df = behaviour_patterns(&BehaviourConfig {
            drift: 2.0,
            ..Default::default()
        });
        let before = df
            .filter_column("period", |v| v.as_str() == Some("before"))
            .unwrap();
        let after = df
            .filter_column("period", |v| v.as_str() == Some("after"))
            .unwrap();
        let mean = |d: &DataFrame| {
            matilda_data::stats::mean(&d.column("group_size").unwrap().to_f64_dense().unwrap())
                .unwrap()
        };
        assert!((mean(&before) - mean(&after)).abs() < 0.4);
    }

    #[test]
    fn features_physical() {
        let df = behaviour_patterns(&BehaviourConfig::default());
        for name in ["dwell_minutes", "n_zone_visits", "car_transit_minutes"] {
            for v in df.column(name).unwrap().to_f64_dense().unwrap() {
                assert!(v >= 0.0, "{name} must be non-negative, got {v}");
            }
        }
    }
}
