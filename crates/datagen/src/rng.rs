//! Seeded randomness helpers shared by the generators.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A deterministic RNG from a seed.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Standard normal draw via the Box-Muller transform (avoids an extra
/// distribution dependency).
pub fn normal(rng: &mut impl Rng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Normal draw with explicit mean and standard deviation.
pub fn normal_with(rng: &mut impl Rng, mean: f64, std: f64) -> f64 {
    mean + std * normal(rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a: Vec<f64> = {
            let mut r = rng(7);
            (0..5).map(|_| normal(&mut r)).collect()
        };
        let b: Vec<f64> = {
            let mut r = rng(7);
            (0..5).map(|_| normal(&mut r)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn normal_moments() {
        let mut r = rng(42);
        let xs: Vec<f64> = (0..20_000).map(|_| normal(&mut r)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn normal_with_scales() {
        let mut r = rng(1);
        let xs: Vec<f64> = (0..10_000).map(|_| normal_with(&mut r, 5.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        assert!((mean - 5.0).abs() < 0.1);
    }

    #[test]
    fn values_finite() {
        let mut r = rng(3);
        for _ in 0..10_000 {
            assert!(normal(&mut r).is_finite());
        }
    }
}
