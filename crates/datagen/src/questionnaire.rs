//! Questionnaire generator — the paper's alternative data-collection
//! technique: "run other data collection techniques like questionnaires to
//! describe urban civilians' behaviour through quantitative variables".
//!
//! Respondents carry a latent satisfaction driven by their commute mode;
//! Likert items load on the latent with noise, and the analysis target is
//! the satisfaction tercile.

use crate::rng::{normal_with, rng};
use matilda_data::{Column, DataFrame};
use rand::Rng;

/// Configuration of the questionnaire generator.
#[derive(Debug, Clone)]
pub struct QuestionnaireConfig {
    /// Number of respondents.
    pub n_respondents: usize,
    /// Number of Likert items (questions), each scored 1..=5.
    pub n_items: usize,
    /// Noise added to each item before rounding.
    pub noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for QuestionnaireConfig {
    fn default() -> Self {
        Self {
            n_respondents: 300,
            n_items: 8,
            noise: 0.5,
            seed: 42,
        }
    }
}

const COMMUTES: [(&str, f64); 3] = [("walk", 0.8), ("bike", 0.3), ("car", -0.8)];

/// Generate questionnaire responses: `age`, `commute` (categorical),
/// `q1..qN` Likert items (integers 1..=5) and the `satisfaction` target
/// (`low` / `medium` / `high`).
pub fn questionnaire(config: &QuestionnaireConfig) -> DataFrame {
    let mut r = rng(config.seed);
    let mut age = Vec::with_capacity(config.n_respondents);
    let mut commute: Vec<&str> = Vec::with_capacity(config.n_respondents);
    let mut items: Vec<Vec<i64>> = vec![Vec::with_capacity(config.n_respondents); config.n_items];
    let mut latents = Vec::with_capacity(config.n_respondents);
    for i in 0..config.n_respondents {
        let (mode, mode_effect) = COMMUTES[i % COMMUTES.len()];
        commute.push(mode);
        age.push(r.gen_range(18.0..80.0));
        let latent = normal_with(&mut r, mode_effect, 0.6);
        latents.push(latent);
        for (j, item) in items.iter_mut().enumerate() {
            // Alternate item polarity, as real instruments do.
            let loading = if j % 2 == 0 { 1.0 } else { -1.0 };
            let raw = 3.0 + loading * latent + normal_with(&mut r, 0.0, config.noise);
            item.push(raw.round().clamp(1.0, 5.0) as i64);
        }
    }
    // Terciles of the latent define the target label.
    let mut sorted = latents.clone();
    sorted.sort_by(f64::total_cmp);
    let lo = sorted[config.n_respondents / 3];
    let hi = sorted[2 * config.n_respondents / 3];
    let labels: Vec<&str> = latents
        .iter()
        .map(|&l| {
            if l < lo {
                "low"
            } else if l < hi {
                "medium"
            } else {
                "high"
            }
        })
        .collect();

    let mut df = DataFrame::new();
    df.add_column("age", Column::from_f64(age)).expect("unique");
    df.add_column("commute", Column::from_categorical(&commute))
        .expect("unique");
    for (j, item) in items.into_iter().enumerate() {
        df.add_column(format!("q{}", j + 1), Column::from_i64(item))
            .expect("unique");
    }
    df.add_column("satisfaction", Column::from_categorical(&labels))
        .expect("unique");
    df
}

#[cfg(test)]
mod tests {
    use super::*;
    use matilda_ml::prelude::*;

    #[test]
    fn shape_and_ranges() {
        let df = questionnaire(&QuestionnaireConfig::default());
        assert_eq!(df.n_rows(), 300);
        assert_eq!(df.n_cols(), 2 + 8 + 1);
        for j in 1..=8 {
            let col = df.column(&format!("q{j}")).unwrap();
            for v in col.to_f64_dense().unwrap() {
                assert!((1.0..=5.0).contains(&v), "likert out of range: {v}");
            }
        }
    }

    #[test]
    fn deterministic() {
        let c = QuestionnaireConfig::default();
        assert_eq!(questionnaire(&c), questionnaire(&c));
    }

    #[test]
    fn terciles_roughly_balanced() {
        let df = questionnaire(&QuestionnaireConfig::default());
        let counts = df.column("satisfaction").unwrap().value_counts();
        assert_eq!(counts.len(), 3);
        for (_, n) in counts {
            assert!((80..=120).contains(&n), "tercile size {n}");
        }
    }

    #[test]
    fn items_predict_satisfaction() {
        let df = questionnaire(&QuestionnaireConfig {
            n_respondents: 400,
            ..Default::default()
        });
        let features: Vec<String> = (1..=8).map(|j| format!("q{j}")).collect();
        let refs: Vec<&str> = features.iter().map(String::as_str).collect();
        let data = Dataset::classification(&df, &refs, "satisfaction").unwrap();
        let cv = cross_validate(
            &ModelSpec::Forest {
                n_trees: 20,
                max_depth: 6,
                feature_fraction: 0.8,
                seed: 1,
            },
            &data,
            4,
            Scoring::Accuracy,
            0,
        )
        .unwrap();
        assert!(
            cv.mean > 0.6,
            "items carry the latent, accuracy {}",
            cv.mean
        );
    }

    #[test]
    fn commute_mode_correlates_with_satisfaction() {
        let df = questionnaire(&QuestionnaireConfig::default());
        let walkers = df
            .filter_column("commute", |v| v.as_str() == Some("walk"))
            .unwrap();
        let drivers = df
            .filter_column("commute", |v| v.as_str() == Some("car"))
            .unwrap();
        let high_share = |d: &DataFrame| {
            d.column("satisfaction")
                .unwrap()
                .iter()
                .filter(|v| v.as_str() == Some("high"))
                .count() as f64
                / d.n_rows() as f64
        };
        assert!(high_share(&walkers) > high_share(&drivers) + 0.2);
    }
}
