//! Imbalanced binary classification generator — exercises stratified
//! splitting and macro-F1 versus accuracy trade-offs.

use crate::rng::{normal_with, rng};
use matilda_data::{Column, DataFrame};

/// Configuration for [`imbalanced`].
#[derive(Debug, Clone)]
pub struct ImbalanceConfig {
    /// Total rows.
    pub n_rows: usize,
    /// Fraction of rows in the minority class, in (0, 0.5].
    pub minority_fraction: f64,
    /// Distance between class means (in standard deviations).
    pub separation: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ImbalanceConfig {
    fn default() -> Self {
        Self {
            n_rows: 400,
            minority_fraction: 0.1,
            separation: 3.0,
            seed: 42,
        }
    }
}

/// Generate an imbalanced dataset: `f0`, `f1` features and `outcome`
/// (`common` / `rare`). The first `minority_fraction * n_rows` rows are
/// rare, interleaved deterministically through the frame.
pub fn imbalanced(config: &ImbalanceConfig) -> DataFrame {
    assert!(
        config.minority_fraction > 0.0 && config.minority_fraction <= 0.5,
        "minority_fraction must be in (0, 0.5]"
    );
    let mut r = rng(config.seed);
    let n_rare = ((config.n_rows as f64) * config.minority_fraction)
        .round()
        .max(1.0) as usize;
    let every = config.n_rows / n_rare.max(1);
    let mut f0 = Vec::with_capacity(config.n_rows);
    let mut f1 = Vec::with_capacity(config.n_rows);
    let mut labels: Vec<&str> = Vec::with_capacity(config.n_rows);
    let mut rare_emitted = 0;
    for i in 0..config.n_rows {
        let rare = rare_emitted < n_rare && i % every.max(1) == 0;
        if rare {
            rare_emitted += 1;
            f0.push(normal_with(&mut r, config.separation, 1.0));
            f1.push(normal_with(&mut r, config.separation, 1.0));
            labels.push("rare");
        } else {
            f0.push(normal_with(&mut r, 0.0, 1.0));
            f1.push(normal_with(&mut r, 0.0, 1.0));
            labels.push("common");
        }
    }
    DataFrame::from_columns(vec![
        ("f0", Column::from_f64(f0)),
        ("f1", Column::from_f64(f1)),
        ("outcome", Column::from_categorical(&labels)),
    ])
    .expect("unique names")
}

#[cfg(test)]
mod tests {
    use super::*;
    use matilda_ml::prelude::*;

    #[test]
    fn minority_fraction_respected() {
        let df = imbalanced(&ImbalanceConfig {
            n_rows: 200,
            minority_fraction: 0.1,
            ..Default::default()
        });
        let rare = df
            .column("outcome")
            .unwrap()
            .iter()
            .filter(|v| v.as_str() == Some("rare"))
            .count();
        assert_eq!(rare, 20);
    }

    #[test]
    fn deterministic() {
        let c = ImbalanceConfig::default();
        assert_eq!(imbalanced(&c), imbalanced(&c));
    }

    #[test]
    #[should_panic(expected = "minority_fraction")]
    fn zero_fraction_panics() {
        imbalanced(&ImbalanceConfig {
            minority_fraction: 0.0,
            ..Default::default()
        });
    }

    #[test]
    fn accuracy_overstates_on_imbalance() {
        // A majority-vote-ish model scores high accuracy but poor macro-F1.
        let df = imbalanced(&ImbalanceConfig {
            n_rows: 300,
            minority_fraction: 0.08,
            separation: 1.0, // weak signal
            seed: 3,
        });
        let data = Dataset::classification(&df, &["f0", "f1"], "outcome").unwrap();
        let spec = ModelSpec::Tree {
            max_depth: 1,
            min_samples_split: 2,
        };
        let acc = cross_validate(&spec, &data, 4, Scoring::Accuracy, 0)
            .unwrap()
            .mean;
        let f1 = cross_validate(&spec, &data, 4, Scoring::MacroF1, 0)
            .unwrap()
            .mean;
        assert!(
            acc > f1 + 0.1,
            "accuracy {acc} should flatter macro-f1 {f1}"
        );
    }

    #[test]
    fn separable_minority_learnable() {
        let df = imbalanced(&ImbalanceConfig {
            n_rows: 300,
            minority_fraction: 0.2,
            separation: 5.0,
            seed: 1,
        });
        let data = Dataset::classification(&df, &["f0", "f1"], "outcome").unwrap();
        let spec = ModelSpec::Forest {
            n_trees: 15,
            max_depth: 5,
            feature_fraction: 1.0,
            seed: 0,
        };
        let f1 = cross_validate(&spec, &data, 4, Scoring::MacroF1, 0)
            .unwrap()
            .mean;
        assert!(
            f1 > 0.85,
            "well-separated minority should be caught, macro-f1 {f1}"
        );
    }
}
