//! Gaussian-blob classification datasets.

use crate::rng::{normal_with, rng};
use matilda_data::{Column, DataFrame};
use rand::Rng;

/// Configuration for [`blobs`].
#[derive(Debug, Clone)]
pub struct BlobsConfig {
    /// Total rows.
    pub n_rows: usize,
    /// Number of classes (one blob each).
    pub n_classes: usize,
    /// Feature dimensionality.
    pub n_features: usize,
    /// Distance between adjacent blob centres.
    pub separation: f64,
    /// Within-blob standard deviation.
    pub spread: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BlobsConfig {
    fn default() -> Self {
        Self {
            n_rows: 300,
            n_classes: 3,
            n_features: 2,
            separation: 5.0,
            spread: 1.0,
            seed: 42,
        }
    }
}

/// Generate a blob dataset: numeric features `f0..fN` plus a categorical
/// `label` column (`class0`, `class1`, ...). Rows cycle through classes so
/// classes are balanced to within one row.
pub fn blobs(config: &BlobsConfig) -> DataFrame {
    let mut r = rng(config.seed);
    // Blob centres on a shuffled lattice direction per feature.
    let centres: Vec<Vec<f64>> = (0..config.n_classes)
        .map(|c| {
            (0..config.n_features)
                .map(|f| config.separation * ((c + f) % config.n_classes) as f64)
                .collect()
        })
        .collect();
    let mut features: Vec<Vec<f64>> = vec![Vec::with_capacity(config.n_rows); config.n_features];
    let mut labels: Vec<String> = Vec::with_capacity(config.n_rows);
    for i in 0..config.n_rows {
        let class = i % config.n_classes;
        for (f, column) in features.iter_mut().enumerate() {
            column.push(normal_with(&mut r, centres[class][f], config.spread));
        }
        labels.push(format!("class{class}"));
    }
    let mut df = DataFrame::new();
    for (f, column) in features.into_iter().enumerate() {
        df.add_column(format!("f{f}"), Column::from_f64(column))
            .expect("unique names");
    }
    let label_refs: Vec<&str> = labels.iter().map(String::as_str).collect();
    df.add_column("label", Column::from_categorical(&label_refs))
        .expect("unique names");
    df
}

/// A noisy variant: `noise_features` additional uninformative columns.
pub fn blobs_with_noise(config: &BlobsConfig, noise_features: usize) -> DataFrame {
    let mut df = blobs(config);
    let mut r = rng(config.seed.wrapping_add(1));
    for j in 0..noise_features {
        let col: Vec<f64> = (0..config.n_rows).map(|_| r.gen_range(-1.0..1.0)).collect();
        df.add_column(format!("noise{j}"), Column::from_f64(col))
            .expect("unique names");
    }
    // Keep the label last for readability.
    let label = df.drop_column("label").expect("label exists");
    df.add_column("label", label).expect("unique names");
    df
}

#[cfg(test)]
mod tests {
    use super::*;
    use matilda_ml::prelude::*;

    #[test]
    fn shape_and_balance() {
        let df = blobs(&BlobsConfig {
            n_rows: 90,
            n_classes: 3,
            ..BlobsConfig::default()
        });
        assert_eq!(df.n_rows(), 90);
        assert_eq!(df.names(), vec!["f0", "f1", "label"]);
        let counts = df.column("label").unwrap().value_counts();
        assert_eq!(counts.len(), 3);
        assert!(counts.iter().all(|(_, n)| *n == 30));
    }

    #[test]
    fn deterministic() {
        let config = BlobsConfig::default();
        assert_eq!(blobs(&config), blobs(&config));
    }

    #[test]
    fn separable_blobs_are_learnable() {
        let df = blobs(&BlobsConfig {
            n_rows: 150,
            separation: 8.0,
            spread: 0.5,
            ..Default::default()
        });
        let data = Dataset::classification(&df, &["f0", "f1"], "label").unwrap();
        let spec = ModelSpec::GaussianNb;
        let cv = cross_validate(&spec, &data, 5, Scoring::Accuracy, 0).unwrap();
        assert!(
            cv.mean > 0.95,
            "separable blobs should be easy, got {}",
            cv.mean
        );
    }

    #[test]
    fn overlapping_blobs_are_hard() {
        let df = blobs(&BlobsConfig {
            n_rows: 150,
            separation: 0.1,
            spread: 2.0,
            ..Default::default()
        });
        let data = Dataset::classification(&df, &["f0", "f1"], "label").unwrap();
        let cv = cross_validate(&ModelSpec::GaussianNb, &data, 5, Scoring::Accuracy, 0).unwrap();
        assert!(
            cv.mean < 0.6,
            "overlapping blobs should be hard, got {}",
            cv.mean
        );
    }

    #[test]
    fn noise_features_added() {
        let df = blobs_with_noise(&BlobsConfig::default(), 3);
        assert!(df.names().contains(&"noise0"));
        assert!(df.names().contains(&"noise2"));
        assert_eq!(df.names().last(), Some(&"label"));
    }
}
