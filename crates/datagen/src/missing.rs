//! Missing-data injection: degrade a clean frame with MCAR
//! (missing-completely-at-random) nulls so imputation operators have work
//! to do.

use crate::rng::rng;
use matilda_data::{Column, DataFrame, Value};
use rand::Rng;

/// Replace a fraction of cells with nulls in every column except those in
/// `protect` (typically the target). Null positions are MCAR and seeded.
pub fn inject_mcar(df: &DataFrame, fraction: f64, protect: &[&str], seed: u64) -> DataFrame {
    assert!((0.0..1.0).contains(&fraction), "fraction must be in [0, 1)");
    let mut r = rng(seed);
    let mut out = DataFrame::new();
    for (name, col) in df.iter_columns() {
        if protect.contains(&name) {
            out.add_column(name, col.clone()).expect("unique names");
            continue;
        }
        let mut degraded = Column::empty(col.dtype());
        for v in col.iter() {
            let value = if r.gen::<f64>() < fraction {
                Value::Null
            } else {
                v
            };
            degraded.push(value).expect("same dtype");
        }
        out.add_column(name, degraded).expect("unique names");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame() -> DataFrame {
        DataFrame::from_columns(vec![
            ("a", Column::from_f64((0..200).map(f64::from).collect())),
            ("b", Column::from_i64((0..200).collect())),
            (
                "y",
                Column::from_categorical(
                    &(0..200)
                        .map(|i| if i % 2 == 0 { "p" } else { "q" })
                        .collect::<Vec<_>>(),
                ),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn fraction_approximately_respected() {
        let out = inject_mcar(&frame(), 0.25, &["y"], 7);
        let nulls_a = out.column("a").unwrap().null_count();
        // 200 cells at 25%: expect ~50, allow generous slack.
        assert!((30..=70).contains(&nulls_a), "got {nulls_a}");
    }

    #[test]
    fn protected_columns_untouched() {
        let out = inject_mcar(&frame(), 0.5, &["y"], 7);
        assert_eq!(out.column("y").unwrap().null_count(), 0);
    }

    #[test]
    fn zero_fraction_identity() {
        let df = frame();
        let out = inject_mcar(&df, 0.0, &[], 7);
        assert_eq!(out, df);
    }

    #[test]
    fn deterministic() {
        let df = frame();
        assert_eq!(
            inject_mcar(&df, 0.3, &["y"], 9),
            inject_mcar(&df, 0.3, &["y"], 9)
        );
        assert_ne!(
            inject_mcar(&df, 0.3, &["y"], 9),
            inject_mcar(&df, 0.3, &["y"], 10),
            "different seed, different holes"
        );
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn full_fraction_panics() {
        inject_mcar(&frame(), 1.0, &[], 0);
    }

    #[test]
    fn dtypes_preserved() {
        let out = inject_mcar(&frame(), 0.2, &[], 3);
        assert_eq!(out.schema(), frame().schema());
        assert_eq!(out.n_rows(), 200);
    }
}
