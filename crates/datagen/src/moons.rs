//! The two-moons dataset: two interleaving half-circles, a classic
//! non-linearly-separable benchmark.

use crate::rng::{normal_with, rng};
use matilda_data::{Column, DataFrame};
use rand::Rng;

/// Configuration for [`moons`].
#[derive(Debug, Clone)]
pub struct MoonsConfig {
    /// Total rows (split evenly between the moons).
    pub n_rows: usize,
    /// Gaussian noise added to each coordinate.
    pub noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for MoonsConfig {
    fn default() -> Self {
        Self {
            n_rows: 200,
            noise: 0.1,
            seed: 42,
        }
    }
}

/// Generate two moons: columns `x`, `y` and categorical `moon`
/// (`upper` / `lower`).
pub fn moons(config: &MoonsConfig) -> DataFrame {
    let mut r = rng(config.seed);
    let mut xs = Vec::with_capacity(config.n_rows);
    let mut ys = Vec::with_capacity(config.n_rows);
    let mut labels: Vec<&str> = Vec::with_capacity(config.n_rows);
    for i in 0..config.n_rows {
        let t: f64 = r.gen_range(0.0..std::f64::consts::PI);
        let (x, y, label) = if i % 2 == 0 {
            (t.cos(), t.sin(), "upper")
        } else {
            (1.0 - t.cos(), 0.5 - t.sin(), "lower")
        };
        xs.push(normal_with(&mut r, x, config.noise));
        ys.push(normal_with(&mut r, y, config.noise));
        labels.push(label);
    }
    DataFrame::from_columns(vec![
        ("x", Column::from_f64(xs)),
        ("y", Column::from_f64(ys)),
        ("moon", Column::from_categorical(&labels)),
    ])
    .expect("unique names")
}

#[cfg(test)]
mod tests {
    use super::*;
    use matilda_ml::prelude::*;

    #[test]
    fn shape_and_balance() {
        let df = moons(&MoonsConfig {
            n_rows: 100,
            ..MoonsConfig::default()
        });
        assert_eq!(df.n_rows(), 100);
        let counts = df.column("moon").unwrap().value_counts();
        assert_eq!(counts.len(), 2);
        assert_eq!(counts[0].1, 50);
    }

    #[test]
    fn deterministic() {
        let c = MoonsConfig::default();
        assert_eq!(moons(&c), moons(&c));
    }

    #[test]
    fn nonlinear_model_beats_linear_boundary() {
        let df = moons(&MoonsConfig {
            n_rows: 300,
            noise: 0.08,
            seed: 5,
        });
        let data = Dataset::classification(&df, &["x", "y"], "moon").unwrap();
        let knn = cross_validate(&ModelSpec::Knn { k: 5 }, &data, 5, Scoring::Accuracy, 0).unwrap();
        let nb = cross_validate(&ModelSpec::GaussianNb, &data, 5, Scoring::Accuracy, 0).unwrap();
        assert!(knn.mean > 0.9, "knn handles the moons, got {}", knn.mean);
        assert!(
            knn.mean > nb.mean,
            "local model should beat the axis-aligned Gaussian one ({} vs {})",
            knn.mean,
            nb.mean
        );
    }

    #[test]
    fn noise_controls_difficulty() {
        let clean = moons(&MoonsConfig {
            n_rows: 200,
            noise: 0.02,
            seed: 1,
        });
        let noisy = moons(&MoonsConfig {
            n_rows: 200,
            noise: 0.5,
            seed: 1,
        });
        let acc = |df: &DataFrame| {
            let data = Dataset::classification(df, &["x", "y"], "moon").unwrap();
            cross_validate(&ModelSpec::Knn { k: 5 }, &data, 4, Scoring::Accuracy, 0)
                .unwrap()
                .mean
        };
        assert!(acc(&clean) > acc(&noisy));
    }
}
