//! Regression benchmark generators: a linear target and a Friedman-style
//! non-linear target.

use crate::rng::{normal_with, rng};
use matilda_data::{Column, DataFrame};
use rand::Rng;

/// Configuration shared by the regression generators.
#[derive(Debug, Clone)]
pub struct RegressionConfig {
    /// Total rows.
    pub n_rows: usize,
    /// Informative feature count (the linear generator also honours this).
    pub n_features: usize,
    /// Standard deviation of target noise.
    pub noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RegressionConfig {
    fn default() -> Self {
        Self {
            n_rows: 200,
            n_features: 4,
            noise: 0.5,
            seed: 42,
        }
    }
}

/// Linear target: `y = Σ (j+1) * x_j + noise`, features uniform in [0, 1].
/// Columns `x0..xN` and `y`; the true coefficient of `x_j` is `j + 1`.
pub fn linear(config: &RegressionConfig) -> DataFrame {
    let mut r = rng(config.seed);
    let mut features: Vec<Vec<f64>> = vec![Vec::with_capacity(config.n_rows); config.n_features];
    let mut y = Vec::with_capacity(config.n_rows);
    for _ in 0..config.n_rows {
        let mut target = 0.0;
        for (j, column) in features.iter_mut().enumerate() {
            let v: f64 = r.gen_range(0.0..1.0);
            target += (j + 1) as f64 * v;
            column.push(v);
        }
        y.push(normal_with(&mut r, target, config.noise));
    }
    let mut df = DataFrame::new();
    for (j, column) in features.into_iter().enumerate() {
        df.add_column(format!("x{j}"), Column::from_f64(column))
            .expect("unique");
    }
    df.add_column("y", Column::from_f64(y)).expect("unique");
    df
}

/// Friedman #1-style non-linear target over five uniform features:
/// `y = 10 sin(pi x0 x1) + 20 (x2 - 0.5)^2 + 10 x3 + 5 x4 + noise`.
pub fn friedman(config: &RegressionConfig) -> DataFrame {
    let mut r = rng(config.seed);
    let d = 5usize;
    let mut features: Vec<Vec<f64>> = (0..d).map(|_| Vec::with_capacity(config.n_rows)).collect();
    let mut y = Vec::with_capacity(config.n_rows);
    for _ in 0..config.n_rows {
        let row: Vec<f64> = (0..d).map(|_| r.gen_range(0.0..1.0)).collect();
        let target = 10.0 * (std::f64::consts::PI * row[0] * row[1]).sin()
            + 20.0 * (row[2] - 0.5).powi(2)
            + 10.0 * row[3]
            + 5.0 * row[4];
        for (column, &v) in features.iter_mut().zip(&row) {
            column.push(v);
        }
        y.push(normal_with(&mut r, target, config.noise));
    }
    let mut df = DataFrame::new();
    for (j, column) in features.into_iter().enumerate() {
        df.add_column(format!("x{j}"), Column::from_f64(column))
            .expect("unique");
    }
    df.add_column("y", Column::from_f64(y)).expect("unique");
    df
}

#[cfg(test)]
mod tests {
    use super::*;
    use matilda_ml::prelude::*;

    #[test]
    fn linear_recoverable_by_ols() {
        let df = linear(&RegressionConfig {
            n_rows: 300,
            noise: 0.1,
            ..Default::default()
        });
        let data = Dataset::regression(&df, &["x0", "x1", "x2", "x3"], "y").unwrap();
        let cv =
            cross_validate(&ModelSpec::Linear { ridge: 0.0 }, &data, 5, Scoring::R2, 0).unwrap();
        assert!(cv.mean > 0.95, "linear data, linear model: r2 {}", cv.mean);
    }

    #[test]
    fn friedman_nonlinear_favours_trees() {
        let df = friedman(&RegressionConfig {
            n_rows: 400,
            noise: 0.5,
            ..Default::default()
        });
        let data = Dataset::regression(&df, &["x0", "x1", "x2", "x3", "x4"], "y").unwrap();
        let linear_cv =
            cross_validate(&ModelSpec::Linear { ridge: 0.0 }, &data, 4, Scoring::R2, 0).unwrap();
        let boost_cv = cross_validate(
            &ModelSpec::Boost {
                n_rounds: 60,
                learning_rate: 0.2,
                max_depth: 3,
            },
            &data,
            4,
            Scoring::R2,
            0,
        )
        .unwrap();
        assert!(
            boost_cv.mean > linear_cv.mean + 0.05,
            "boosting should beat OLS on Friedman ({} vs {})",
            boost_cv.mean,
            linear_cv.mean
        );
    }

    #[test]
    fn deterministic_and_shaped() {
        let c = RegressionConfig::default();
        assert_eq!(linear(&c), linear(&c));
        assert_eq!(friedman(&c).n_cols(), 6);
        assert_eq!(linear(&c).n_rows(), c.n_rows);
    }

    #[test]
    fn noise_degrades_fit() {
        let quiet = linear(&RegressionConfig {
            noise: 0.01,
            ..Default::default()
        });
        let loud = linear(&RegressionConfig {
            noise: 3.0,
            ..Default::default()
        });
        let r2 = |df: &DataFrame| {
            let data = Dataset::regression(df, &["x0", "x1", "x2", "x3"], "y").unwrap();
            cross_validate(&ModelSpec::Linear { ridge: 0.0 }, &data, 4, Scoring::R2, 0)
                .unwrap()
                .mean
        };
        assert!(r2(&quiet) > r2(&loud));
    }
}
