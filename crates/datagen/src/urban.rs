//! The paper's running scenario: urban public-policy design.
//!
//! Decision makers change the built environment (e.g. pedestrianize a
//! downtown area) and want quantitative evidence of the effects on
//! footfall, CO₂, restaurant activity and real-estate prices. The paper's
//! data sources (videos of civilians, questionnaires) are not available, so
//! this generator produces the *tabular behavioural panel* such a study
//! would extract, with known ground-truth intervention effects (see
//! DESIGN.md §5 for the substitution argument).

use crate::rng::{normal_with, rng};
use matilda_data::{Column, DataFrame};
use rand::Rng;

/// Configuration of the urban panel generator.
#[derive(Debug, Clone)]
pub struct UrbanConfig {
    /// Number of districts observed.
    pub n_districts: usize,
    /// Weeks observed per period (before and after the policy).
    pub n_weeks: usize,
    /// Fraction of districts receiving the intervention.
    pub treated_fraction: f64,
    /// Size of the pedestrian-area boost applied to treated districts in
    /// the after period (share of district area, e.g. 0.2).
    pub effect_size: f64,
    /// Observation noise standard deviation.
    pub noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for UrbanConfig {
    fn default() -> Self {
        Self {
            n_districts: 20,
            n_weeks: 26,
            treated_fraction: 0.5,
            effect_size: 0.2,
            noise: 2.0,
            seed: 42,
        }
    }
}

/// Ground-truth coefficients linking pedestrian area to outcomes; the
/// experiment harness checks recovered effects against these.
pub mod truth {
    /// Footfall gained per unit pedestrian-area share.
    pub const FOOTFALL_PER_PED: f64 = 30.0;
    /// CO₂ removed per unit pedestrian-area share.
    pub const CO2_PER_PED: f64 = -20.0;
    /// Real-estate index points per unit pedestrian-area share.
    pub const REAL_ESTATE_PER_PED: f64 = 15.0;
    /// Restaurant revenue per unit pedestrian area (foot traffic helps...).
    pub const REVENUE_PER_PED: f64 = 10.0;
    /// ...but lost parking hurts: revenue per parking slot (hundreds).
    pub const REVENUE_PER_PARKING: f64 = 2.0;
}

/// Whether district `d` is treated under `config`.
pub fn is_treated(d: usize, config: &UrbanConfig) -> bool {
    // Deterministic assignment: the first ceil(f * n) districts by a fixed
    // stride pattern, so tests can reason about it.
    let n_treated = ((config.n_districts as f64) * config.treated_fraction).round() as usize;
    d % config.n_districts < n_treated
}

/// Generate the urban observation panel.
///
/// One row per (district, period, week): district traits
/// (`pedestrian_area`, `parking_slots`, `restaurant_density`,
/// `transit_access`), the `period` (`before`/`after`), `treated`
/// (`yes`/`no`) and measured outcomes (`footfall`, `co2`,
/// `restaurant_revenue`, `real_estate_index`).
#[allow(clippy::needless_range_loop)] // district index feeds is_treated and labels
pub fn urban_panel(config: &UrbanConfig) -> DataFrame {
    let mut r = rng(config.seed);
    let n = config.n_districts * config.n_weeks * 2;
    let mut district: Vec<String> = Vec::with_capacity(n);
    let mut period: Vec<&str> = Vec::with_capacity(n);
    let mut treated: Vec<&str> = Vec::with_capacity(n);
    let mut week: Vec<i64> = Vec::with_capacity(n);
    let mut pedestrian_area = Vec::with_capacity(n);
    let mut parking_slots = Vec::with_capacity(n);
    let mut restaurant_density = Vec::with_capacity(n);
    let mut transit_access = Vec::with_capacity(n);
    let mut footfall = Vec::with_capacity(n);
    let mut co2 = Vec::with_capacity(n);
    let mut revenue = Vec::with_capacity(n);
    let mut real_estate = Vec::with_capacity(n);

    // Stable per-district base traits.
    let traits: Vec<(f64, f64, f64, f64)> = (0..config.n_districts)
        .map(|_| {
            (
                r.gen_range(0.05..0.3),   // pedestrian share
                r.gen_range(20.0..120.0), // parking slots
                r.gen_range(0.1..1.0),    // restaurant density
                r.gen_range(0.0..1.0),    // transit access
            )
        })
        .collect();

    for (is_after, period_name) in [(false, "before"), (true, "after")] {
        for d in 0..config.n_districts {
            let treat = is_treated(d, config);
            let (base_ped, base_parking, density, transit) = traits[d];
            // The policy: more pedestrian area, fewer parking slots.
            let ped = if is_after && treat {
                base_ped + config.effect_size
            } else {
                base_ped
            };
            let parking = if is_after && treat {
                (base_parking - 40.0 * config.effect_size).max(0.0)
            } else {
                base_parking
            };
            for w in 0..config.n_weeks {
                district.push(format!("district{d:02}"));
                period.push(period_name);
                treated.push(if treat { "yes" } else { "no" });
                week.push(w as i64);
                pedestrian_area.push(ped);
                parking_slots.push(parking);
                restaurant_density.push(density);
                transit_access.push(transit);
                let season = (w as f64 / config.n_weeks as f64 * std::f64::consts::TAU).sin();
                footfall.push(normal_with(
                    &mut r,
                    50.0 + truth::FOOTFALL_PER_PED * ped + 5.0 * transit + 3.0 * season,
                    config.noise,
                ));
                co2.push(normal_with(
                    &mut r,
                    40.0 + truth::CO2_PER_PED * ped + 0.05 * parking,
                    config.noise,
                ));
                revenue.push(normal_with(
                    &mut r,
                    20.0 * density
                        + truth::REVENUE_PER_PED * ped
                        + truth::REVENUE_PER_PARKING * parking / 10.0,
                    config.noise,
                ));
                real_estate.push(normal_with(
                    &mut r,
                    100.0 + truth::REAL_ESTATE_PER_PED * ped + 8.0 * transit,
                    config.noise,
                ));
            }
        }
    }

    let district_refs: Vec<&str> = district.iter().map(String::as_str).collect();
    DataFrame::from_columns(vec![
        ("district", Column::from_categorical(&district_refs)),
        ("period", Column::from_categorical(&period)),
        ("treated", Column::from_categorical(&treated)),
        ("week", Column::from_i64(week)),
        ("pedestrian_area", Column::from_f64(pedestrian_area)),
        ("parking_slots", Column::from_f64(parking_slots)),
        ("restaurant_density", Column::from_f64(restaurant_density)),
        ("transit_access", Column::from_f64(transit_access)),
        ("footfall", Column::from_f64(footfall)),
        ("co2", Column::from_f64(co2)),
        ("restaurant_revenue", Column::from_f64(revenue)),
        ("real_estate_index", Column::from_f64(real_estate)),
    ])
    .expect("unique names")
}

#[cfg(test)]
mod tests {
    use super::*;
    use matilda_data::prelude::*;

    #[test]
    fn panel_shape() {
        let config = UrbanConfig {
            n_districts: 4,
            n_weeks: 3,
            ..Default::default()
        };
        let df = urban_panel(&config);
        assert_eq!(df.n_rows(), 4 * 3 * 2);
        assert_eq!(df.n_cols(), 12);
        assert_eq!(df.column("period").unwrap().n_unique(), 2);
    }

    #[test]
    fn deterministic() {
        let c = UrbanConfig::default();
        assert_eq!(urban_panel(&c), urban_panel(&c));
    }

    #[test]
    fn treatment_assignment_fraction() {
        let config = UrbanConfig {
            n_districts: 10,
            treated_fraction: 0.3,
            ..Default::default()
        };
        let treated = (0..10).filter(|&d| is_treated(d, &config)).count();
        assert_eq!(treated, 3);
    }

    #[test]
    fn intervention_moves_footfall_up_and_co2_down() {
        let config = UrbanConfig {
            effect_size: 0.3,
            noise: 0.5,
            ..Default::default()
        };
        let df = urban_panel(&config);
        let treated_only = df
            .filter_column("treated", |v| v.as_str() == Some("yes"))
            .unwrap();
        let by_period = group_by(
            &treated_only,
            "period",
            &[("footfall", Agg::Mean), ("co2", Agg::Mean)],
        )
        .unwrap();
        // Row order follows first-seen: before, after.
        let before = by_period.row(0).unwrap();
        let after = by_period.row(1).unwrap();
        let footfall_delta = after[1].as_f64().unwrap() - before[1].as_f64().unwrap();
        let co2_delta = after[2].as_f64().unwrap() - before[2].as_f64().unwrap();
        assert!(
            (footfall_delta - truth::FOOTFALL_PER_PED * 0.3).abs() < 1.5,
            "footfall effect {footfall_delta}"
        );
        assert!(co2_delta < -3.0, "co2 should drop, got {co2_delta}");
    }

    #[test]
    fn untreated_districts_stable() {
        let config = UrbanConfig {
            effect_size: 0.3,
            noise: 0.5,
            ..Default::default()
        };
        let df = urban_panel(&config);
        let control = df
            .filter_column("treated", |v| v.as_str() == Some("no"))
            .unwrap();
        let by_period = group_by(&control, "period", &[("footfall", Agg::Mean)]).unwrap();
        let delta = by_period.row(1).unwrap()[1].as_f64().unwrap()
            - by_period.row(0).unwrap()[1].as_f64().unwrap();
        assert!(delta.abs() < 1.0, "control drift {delta}");
    }

    #[test]
    fn zero_effect_is_indistinguishable() {
        let config = UrbanConfig {
            effect_size: 0.0,
            noise: 1.0,
            ..Default::default()
        };
        let df = urban_panel(&config);
        let treated_only = df
            .filter_column("treated", |v| v.as_str() == Some("yes"))
            .unwrap();
        let by_period = group_by(&treated_only, "period", &[("footfall", Agg::Mean)]).unwrap();
        let delta = by_period.row(1).unwrap()[1].as_f64().unwrap()
            - by_period.row(0).unwrap()[1].as_f64().unwrap();
        assert!(delta.abs() < 1.0, "no intervention, no effect: {delta}");
    }

    #[test]
    fn parking_reduced_by_policy() {
        let config = UrbanConfig {
            effect_size: 0.25,
            ..Default::default()
        };
        let df = urban_panel(&config);
        let treated_after = df
            .filter_column("treated", |v| v.as_str() == Some("yes"))
            .unwrap()
            .filter_column("period", |v| v.as_str() == Some("after"))
            .unwrap();
        let treated_before = df
            .filter_column("treated", |v| v.as_str() == Some("yes"))
            .unwrap()
            .filter_column("period", |v| v.as_str() == Some("before"))
            .unwrap();
        let mean = |d: &DataFrame| {
            matilda_data::stats::mean(&d.column("parking_slots").unwrap().to_f64_dense().unwrap())
                .unwrap()
        };
        assert!(mean(&treated_after) < mean(&treated_before));
    }
}
