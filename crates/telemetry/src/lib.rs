//! Spans, metrics and run reports: the measurement substrate under every
//! MATILDA component.
//!
//! Ten layers, usable separately or together:
//!
//! - [`mod@span`] — RAII hierarchical tracing. A [`span::SpanGuard`] times a
//!   region of code, carries key/value fields, and links to its parent via
//!   a thread-local span stack. Closed spans land in a sharded, bounded
//!   [`span::Collector`] with a configurable sampling policy.
//! - [`metrics`] — a global sharded [`metrics::MetricsRegistry`] of
//!   counters, gauges and fixed-bucket histograms with p50/p95/p99
//!   summaries; [`metrics::scoped`] installs a thread-local registry for
//!   test isolation.
//! - [`trace`] — per-session trace identity: a [`trace::TraceId`] entered
//!   via a thread-local guard is stamped onto every span, log event and
//!   provenance event recorded while it is current.
//! - [`log`] — leveled structured events (trace→error) with key/value
//!   fields in a lock-sharded bounded ring buffer, auto-correlated to the
//!   current span and trace.
//! - [`export`] — JSONL trace dumps, a serializable
//!   [`export::RunTelemetry`] capture and a human-readable run report.
//! - [`expose`] — a dependency-free HTTP endpoint serving `/metrics`
//!   (Prometheus text exposition), `/healthz`, `/spans`, `/logs` and
//!   `/profile`.
//! - [`flame`] — folded-stack flamegraph export of any span capture, plus
//!   [`flame::diff`] between two captures.
//! - [`profile`] — runtime profiling hooks: an opt-in counting global
//!   allocator ([`profile::CountingAlloc`] + [`profile::AllocScope`]) and
//!   RAII phase timers ([`profile::phase`]) that attribute self vs child
//!   time on the span stack, aggregate into a process-wide registry, and
//!   surface `bench.*` histograms through [`metrics`].
//! - [`journal`] — the durable flight recorder: a rotating JSONL segment
//!   writer (`MATILDA_JOURNAL_DIR`) streaming closed spans, log events and
//!   provenance events to disk as they occur, with a crash-tolerant
//!   replaying reader ([`journal::replay`]).
//! - [`incident`] — trace-correlated incident capsules: failure triggers
//!   snapshot the last-N spans/logs/provenance plus metric deltas and the
//!   active chaos plan into self-contained post-mortem documents, served
//!   at `/incidents` and written under `MATILDA_INCIDENT_DIR`.
//!
//! ```
//! use matilda_telemetry as telemetry;
//!
//! {
//!     let mut span = telemetry::span("train");
//!     span.field("rows", 10_000u64);
//!     telemetry::metrics::global().inc("train.calls");
//! } // span closes here; duration recorded
//!
//! let run = telemetry::export::RunTelemetry::capture_global("demo");
//! assert!(run.spans.iter().any(|s| s.name == "train"));
//! println!("{}", run.report());
//! ```
//!
//! Instrumentation must never change program behaviour: collectors recover
//! from poisoned locks, metric kind conflicts are ignored rather than
//! panicking, and span close is tolerant of out-of-order drops.

pub mod export;
pub mod expose;
pub mod flame;
pub mod incident;
pub mod journal;
pub mod log;
pub mod metrics;
pub mod profile;
pub mod span;
pub mod trace;

pub use export::RunTelemetry;
pub use expose::ObservabilityServer;
pub use incident::{CapsuleMeta, IncidentContext};
pub use journal::{FsyncPolicy, Journal, JournalConfig, JournalRecord};
pub use log::{LogBuffer, LogEvent};
pub use metrics::{HistogramSummary, MetricsRegistry};
pub use profile::{phase, phase_keyed, AllocScope, CountingAlloc, PhaseGuard, PhaseStat};
pub use span::{current_span_id, span, Collector, SpanGuard, SpanId, SpanRecord, SpanSampling};
pub use trace::{current_trace_id, TraceId};

// The crate's own tests exercise the counting allocator, so the test
// harness installs it; downstream binaries opt in the same way.
#[cfg(test)]
#[global_allocator]
static TEST_ALLOC: profile::CountingAlloc = profile::CountingAlloc::new();

#[cfg(test)]
mod prop_tests {
    use crate::span::Collector;
    use proptest::prelude::*;
    use std::time::Duration;

    /// Open spans following `plan` depth-first: each entry is a number of
    /// children for the node at that position. Consumes the plan as a
    /// preorder walk, returning when its subtree is done.
    fn run_tree(collector: &Collector, plan: &mut Vec<u8>, depth: usize) {
        if depth > 6 {
            return;
        }
        let children = match plan.pop() {
            Some(n) => n % 4,
            None => return,
        };
        let _span = collector.span(format!("d{depth}"));
        std::thread::sleep(Duration::from_micros(50));
        for _ in 0..children {
            run_tree(collector, plan, depth + 1);
        }
    }

    proptest! {
        #[test]
        fn nested_spans_close_lifo_and_parents_cover_children(
            plan in prop::collection::vec(0u8..8, 1..12),
        ) {
            let collector = Collector::new();
            let mut plan = plan.clone();
            run_tree(&collector, &mut plan, 0);
            let spans = collector.snapshot();
            prop_assert!(!spans.is_empty());

            // LIFO closing: snapshot() orders by close time, and every
            // parent must close at or after each of its children.
            for span in &spans {
                if let Some(parent_id) = span.parent {
                    let parent = spans.iter().find(|s| s.id == parent_id);
                    prop_assert!(parent.is_some(), "parent {parent_id} missing");
                    let parent = parent.unwrap();
                    let child_close = span.start_ns + span.duration_ns;
                    let parent_close = parent.start_ns + parent.duration_ns;
                    prop_assert!(
                        parent_close >= child_close,
                        "parent {} closed before child {}",
                        parent.name,
                        span.name
                    );
                    prop_assert!(
                        parent.start_ns <= span.start_ns,
                        "parent started after child"
                    );
                }
            }

            // Parent wall time covers the sum of its direct children
            // (children run sequentially inside the parent).
            for parent in &spans {
                let child_sum: u64 = spans
                    .iter()
                    .filter(|s| s.parent == Some(parent.id))
                    .map(|s| s.duration_ns)
                    .sum();
                prop_assert!(
                    parent.duration_ns >= child_sum,
                    "span {} ({} ns) shorter than its children ({} ns)",
                    parent.name,
                    parent.duration_ns,
                    child_sum
                );
            }
        }
    }
}
