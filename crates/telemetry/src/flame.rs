//! Flamegraph export: collapse a span trace into folded-stack format.
//!
//! Folded stacks are the lingua franca of flamegraph tooling
//! (`inferno-flamegraph`, speedscope, Brendan Gregg's original scripts):
//! one line per unique call stack, frames joined by `;`, followed by a
//! count — here the *self* time of that stack in nanoseconds, so the sum
//! over a root's lines equals that root span's wall clock exactly.
//!
//! ```
//! use matilda_telemetry::{flame, span::Collector};
//!
//! let c = Collector::new();
//! {
//!     let _outer = c.span("request");
//!     let _inner = c.span("parse");
//! }
//! let folded = flame::folded_stacks(&c.snapshot());
//! assert!(folded.lines().any(|l| l.starts_with("request;parse ")));
//! ```

use crate::span::{SpanId, SpanRecord};
use std::collections::{BTreeMap, HashMap};

/// Collapse `spans` into folded-stack lines (`a;b;c <self_ns>`), sorted by
/// stack name for deterministic output.
///
/// Self time is a span's duration minus the sum of its direct children's
/// durations, clamped at zero (clock jitter can make children sum slightly
/// past the parent). Spans whose parent is absent from `spans` — roots,
/// spans from partial captures, or children of unsampled parents — start
/// new stacks. Stacks sharing a name aggregate.
pub fn folded_stacks(spans: &[SpanRecord]) -> String {
    let by_id: HashMap<SpanId, &SpanRecord> = spans.iter().map(|s| (s.id, s)).collect();
    let mut child_ns: HashMap<SpanId, u64> = HashMap::new();
    for span in spans {
        if let Some(parent) = span.parent {
            if by_id.contains_key(&parent) {
                *child_ns.entry(parent).or_default() += span.duration_ns;
            }
        }
    }

    let mut stacks: BTreeMap<String, u64> = BTreeMap::new();
    for span in spans {
        let children = child_ns.get(&span.id).copied().unwrap_or(0);
        let self_ns = span.duration_ns.saturating_sub(children);
        // Frame path: walk parents to the nearest root present in the
        // capture. Traces are shallow (session > turn > run > task), so the
        // walk is cheap; a cycle guard caps it anyway.
        let mut frames = vec![span.name.as_str()];
        let mut cursor = span.parent;
        let mut depth = 0;
        while let Some(parent_id) = cursor {
            let Some(parent) = by_id.get(&parent_id) else {
                break;
            };
            frames.push(parent.name.as_str());
            cursor = parent.parent;
            depth += 1;
            if depth > 128 {
                break;
            }
        }
        frames.reverse();
        *stacks.entry(frames.join(";")).or_default() += self_ns;
    }

    let mut out = String::new();
    for (stack, ns) in stacks {
        out.push_str(&stack);
        out.push(' ');
        out.push_str(&ns.to_string());
        out.push('\n');
    }
    out
}

/// Total folded time attributed under the root frame `root`, in
/// nanoseconds — i.e. the sum of every line whose stack starts at `root`.
pub fn root_total_ns(folded: &str, root: &str) -> u64 {
    folded
        .lines()
        .filter_map(|line| {
            let (stack, count) = line.rsplit_once(' ')?;
            let head = stack.split(';').next()?;
            (head == root).then(|| count.parse::<u64>().ok())?
        })
        .sum()
}

/// Subtract two folded-stack documents: `after` minus `before`, stack by
/// stack.
///
/// The output has one line per stack whose self time changed —
/// `a;b;c <signed-delta-ns>` — sorted by descending delta (regressions
/// first), ties by stack name. Stacks present on only one side count as
/// zero on the other; unchanged stacks are omitted. Lines that do not
/// parse as `stack count` are skipped on either side.
pub fn diff(before: &str, after: &str) -> String {
    fn parse(folded: &str) -> BTreeMap<&str, i128> {
        folded
            .lines()
            .filter_map(|line| {
                let (stack, count) = line.rsplit_once(' ')?;
                Some((stack, count.parse::<i128>().ok()?))
            })
            .collect()
    }
    let before = parse(before);
    let after = parse(after);
    let mut deltas: Vec<(&str, i128)> = before
        .keys()
        .chain(after.keys())
        .map(|&stack| {
            let b = before.get(stack).copied().unwrap_or(0);
            let a = after.get(stack).copied().unwrap_or(0);
            (stack, a - b)
        })
        .filter(|&(_, delta)| delta != 0)
        .collect();
    deltas.sort_by(|x, y| y.1.cmp(&x.1).then_with(|| x.0.cmp(y.0)));
    deltas.dedup();
    let mut out = String::new();
    for (stack, delta) in deltas {
        out.push_str(stack);
        out.push(' ');
        out.push_str(&format!("{delta:+}"));
        out.push('\n');
    }
    out
}

/// Write [`folded_stacks`] of `spans` to `path` (parent directories are
/// created).
pub fn write_folded(
    path: impl AsRef<std::path::Path>,
    spans: &[SpanRecord],
) -> std::io::Result<()> {
    let path = path.as_ref();
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir)?;
    }
    std::fs::write(path, folded_stacks(spans))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Collector;
    use std::time::Duration;

    fn record(
        id: u64,
        parent: Option<u64>,
        name: &str,
        start_ns: u64,
        duration_ns: u64,
    ) -> SpanRecord {
        SpanRecord {
            id,
            parent,
            trace_id: None,
            name: name.into(),
            start_ns,
            duration_ns,
            fields: Vec::new(),
        }
    }

    #[test]
    fn self_time_excludes_children() {
        let spans = vec![
            record(1, None, "root", 0, 100),
            record(2, Some(1), "child", 10, 30),
            record(3, Some(1), "child", 50, 20),
            record(4, Some(3), "leaf", 55, 5),
        ];
        let folded = folded_stacks(&spans);
        let lines: Vec<&str> = folded.lines().collect();
        assert_eq!(
            lines,
            vec![
                "root 50",       // 100 - (30 + 20)
                "root;child 45", // 30 + (20 - 5): same-name stacks merge
                "root;child;leaf 5",
            ]
        );
    }

    #[test]
    fn root_totals_equal_root_duration() {
        let spans = vec![
            record(1, None, "run", 0, 1_000),
            record(2, Some(1), "a", 0, 400),
            record(3, Some(2), "b", 0, 150),
            record(4, Some(1), "c", 500, 300),
        ];
        let folded = folded_stacks(&spans);
        assert_eq!(root_total_ns(&folded, "run"), 1_000);
        assert_eq!(root_total_ns(&folded, "absent"), 0);
    }

    #[test]
    fn overlong_children_clamp_to_zero_self() {
        let spans = vec![
            record(1, None, "p", 0, 10),
            record(2, Some(1), "c", 0, 15), // jitter: child "longer" than parent
        ];
        let folded = folded_stacks(&spans);
        assert!(folded.contains("p 0\n"), "{folded}");
        assert!(folded.contains("p;c 15\n"), "{folded}");
    }

    #[test]
    fn orphans_start_new_stacks() {
        let spans = vec![record(7, Some(999), "lonely", 0, 42)];
        assert_eq!(folded_stacks(&spans), "lonely 42\n");
    }

    #[test]
    fn live_collector_round_trip_matches_wall_clock() {
        let c = Collector::new();
        {
            let _outer = c.span("outer");
            {
                let _inner = c.span("inner");
                std::thread::sleep(Duration::from_millis(3));
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        let spans = c.snapshot();
        let outer_ns = spans
            .iter()
            .find(|s| s.name == "outer")
            .unwrap()
            .duration_ns;
        let folded = folded_stacks(&spans);
        // Every line parses as `stack count`.
        for line in folded.lines() {
            let (stack, count) = line.rsplit_once(' ').unwrap();
            assert!(!stack.is_empty());
            count.parse::<u64>().unwrap();
        }
        assert_eq!(root_total_ns(&folded, "outer"), outer_ns);
    }

    #[test]
    fn diff_signs_sorts_and_skips_unchanged() {
        let before = "a 100\na;b 50\nc 10\nsame 7\n";
        let after = "a 150\na;b 30\nd 5\nsame 7\n";
        let d = diff(before, after);
        // Regressions first (largest positive delta), unchanged omitted,
        // stacks unique to one side diffed against zero.
        assert_eq!(d, "a +50\nd +5\nc -10\na;b -20\n");
    }

    #[test]
    fn diff_of_identical_documents_is_empty() {
        let folded = folded_stacks(&[record(1, None, "r", 0, 42)]);
        assert_eq!(diff(&folded, &folded), "");
    }

    #[test]
    fn diff_tolerates_garbage_lines() {
        let before = "not-a-folded-line\na 10\n";
        let after = "a 12\nanother bad line x\n";
        assert_eq!(diff(before, after), "a +2\n");
    }

    #[test]
    fn write_folded_creates_parents() {
        let dir = std::env::temp_dir().join("matilda-flame-test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("nested").join("out.folded");
        write_folded(&path, &[record(1, None, "r", 0, 9)]).unwrap();
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "r 9\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
