//! Exporters: JSONL trace dumps, serializable run telemetry and
//! human-readable run reports.
//!
//! All JSON here is hand-rolled (same idiom as `matilda-provenance`): the
//! output is a small, fixed schema and keeping the writer explicit avoids
//! any serialization dependency.

use crate::metrics::{MetricValue, MetricsSnapshot};
use crate::span::{Collector, FieldValue, SpanRecord};
use std::fmt::Write as _;

/// Escape a string for embedding in a JSON document.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Render an `f64` as JSON (finite only; non-finite becomes `null`).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn field_value_json(v: &FieldValue) -> String {
    match v {
        FieldValue::I64(i) => format!("{i}"),
        FieldValue::U64(u) => format!("{u}"),
        FieldValue::F64(f) => json_f64(*f),
        FieldValue::Bool(b) => format!("{b}"),
        FieldValue::Str(s) => format!("\"{}\"", escape(s)),
    }
}

/// One span as a single JSON object (one JSONL line).
pub fn span_to_json(span: &SpanRecord) -> String {
    let mut out = String::with_capacity(128);
    out.push('{');
    let _ = write!(out, "\"id\":{}", span.id);
    match span.parent {
        Some(p) => {
            let _ = write!(out, ",\"parent\":{p}");
        }
        None => out.push_str(",\"parent\":null"),
    }
    match span.trace_id {
        Some(t) => {
            let _ = write!(out, ",\"trace_id\":{t}");
        }
        None => out.push_str(",\"trace_id\":null"),
    }
    let _ = write!(
        out,
        ",\"name\":\"{}\",\"start_ns\":{},\"duration_ns\":{}",
        escape(&span.name),
        span.start_ns,
        span.duration_ns
    );
    out.push_str(",\"fields\":{");
    for (i, (k, v)) in span.fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", escape(k), field_value_json(v));
    }
    out.push_str("}}");
    out
}

/// All spans of `collector` as JSONL, one span per line, ordered by close
/// time.
pub fn spans_to_jsonl(collector: &Collector) -> String {
    let mut out = String::new();
    for span in collector.snapshot() {
        out.push_str(&span_to_json(&span));
        out.push('\n');
    }
    out
}

fn metric_value_json(v: &MetricValue) -> String {
    match v {
        MetricValue::Counter(c) => format!("{{\"kind\":\"counter\",\"value\":{c}}}"),
        MetricValue::Gauge(g) => {
            format!("{{\"kind\":\"gauge\",\"value\":{}}}", json_f64(*g))
        }
        MetricValue::Histogram(h) => format!(
            "{{\"kind\":\"histogram\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
            h.count,
            json_f64(h.sum),
            json_f64(h.min),
            json_f64(h.max),
            json_f64(h.p50),
            json_f64(h.p95),
            json_f64(h.p99)
        ),
    }
}

/// One log event as a single JSON object (one JSONL line).
pub fn log_event_to_json(event: &crate::log::LogEvent) -> String {
    let mut out = String::with_capacity(128);
    out.push('{');
    let _ = write!(
        out,
        "\"seq\":{},\"ts_ns\":{},\"level\":\"{}\",\"target\":\"{}\",\"message\":\"{}\"",
        event.seq,
        event.ts_ns,
        event.level.name(),
        escape(&event.target),
        escape(&event.message)
    );
    match event.span_id {
        Some(id) => {
            let _ = write!(out, ",\"span_id\":{id}");
        }
        None => out.push_str(",\"span_id\":null"),
    }
    match event.trace_id {
        Some(id) => {
            let _ = write!(out, ",\"trace_id\":{id}");
        }
        None => out.push_str(",\"trace_id\":null"),
    }
    out.push_str(",\"fields\":{");
    for (i, (k, v)) in event.fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", escape(k), field_value_json(v));
    }
    out.push_str("}}");
    out
}

/// A metrics snapshot as one JSON object keyed by metric name.
pub fn metrics_to_json(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::from("{");
    for (i, (name, value)) in snapshot.metrics.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\"{}\":{}", escape(name), metric_value_json(value));
    }
    out.push('}');
    out
}

/// Everything measured during one run: spans plus metrics, ready for
/// export.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct RunTelemetry {
    /// Free-form run label (scenario name, experiment id, ...).
    pub run: String,
    /// Closed spans, ordered by close time.
    pub spans: Vec<SpanRecord>,
    /// Metric snapshot taken at capture time.
    pub metrics: MetricsSnapshot,
}

impl RunTelemetry {
    /// Capture the current state of `collector` and `metrics` under the
    /// label `run`.
    pub fn capture(
        run: impl Into<String>,
        collector: &Collector,
        metrics: &crate::metrics::MetricsRegistry,
    ) -> Self {
        Self {
            run: run.into(),
            spans: collector.snapshot(),
            metrics: metrics.snapshot(),
        }
    }

    /// Capture from the process-global collector and registry.
    pub fn capture_global(run: impl Into<String>) -> Self {
        Self::capture(run, crate::span::global(), crate::metrics::process_global())
    }

    /// The full telemetry as one JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push('{');
        let _ = write!(out, "\"run\":\"{}\"", escape(&self.run));
        out.push_str(",\"spans\":[");
        for (i, span) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&span_to_json(span));
        }
        out.push(']');
        let _ = write!(out, ",\"metrics\":{}", metrics_to_json(&self.metrics));
        out.push('}');
        out
    }

    /// A human-readable per-run report: a span tree with wall times plus a
    /// metrics table.
    pub fn report(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "=== run report: {} ===", self.run);
        let _ = writeln!(out, "spans: {}", self.spans.len());

        // Parent → children index; roots are spans whose parent is absent
        // from the capture (not just None), so partial captures still
        // render.
        let ids: std::collections::HashSet<u64> = self.spans.iter().map(|s| s.id).collect();
        let mut roots: Vec<&SpanRecord> = Vec::new();
        let mut children: std::collections::HashMap<u64, Vec<&SpanRecord>> =
            std::collections::HashMap::new();
        for span in &self.spans {
            match span.parent {
                Some(p) if ids.contains(&p) => children.entry(p).or_default().push(span),
                _ => roots.push(span),
            }
        }
        let by_start = |a: &&SpanRecord, b: &&SpanRecord| a.start_ns.cmp(&b.start_ns);
        roots.sort_by(by_start);
        for kids in children.values_mut() {
            kids.sort_by(by_start);
        }

        fn render(
            out: &mut String,
            span: &SpanRecord,
            children: &std::collections::HashMap<u64, Vec<&SpanRecord>>,
            depth: usize,
        ) {
            let ms = span.duration_ns as f64 / 1e6;
            let mut fields = String::new();
            for (k, v) in &span.fields {
                let _ = write!(fields, " {k}={}", field_value_json(v));
            }
            let _ = writeln!(
                out,
                "{}{}  {:.3} ms{}",
                "  ".repeat(depth + 1),
                span.name,
                ms,
                fields
            );
            if let Some(kids) = children.get(&span.id) {
                for kid in kids {
                    render(out, kid, children, depth + 1);
                }
            }
        }
        for root in roots {
            render(&mut out, root, &children, 0);
        }

        if !self.metrics.metrics.is_empty() {
            let _ = writeln!(out, "metrics:");
            for (name, value) in &self.metrics.metrics {
                match value {
                    MetricValue::Counter(c) => {
                        let _ = writeln!(out, "  {name} = {c}");
                    }
                    MetricValue::Gauge(g) => {
                        let _ = writeln!(out, "  {name} = {g:.6}");
                    }
                    MetricValue::Histogram(h) => {
                        let _ = writeln!(
                            out,
                            "  {name}: n={} mean={:.6} p50={:.6} p95={:.6} p99={:.6} max={:.6}",
                            h.count,
                            h.mean(),
                            h.p50,
                            h.p95,
                            h.p99,
                            h.max
                        );
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;
    use crate::span::Collector;

    fn sample_run() -> RunTelemetry {
        let collector = Collector::new();
        {
            let mut outer = collector.span("outer");
            outer.field("k", "v\"q");
            {
                let _inner = collector.span("inner");
            }
        }
        let metrics = MetricsRegistry::new();
        metrics.inc("hits");
        metrics.set_gauge("temp", 0.5);
        metrics.observe("lat", 0.001);
        RunTelemetry::capture("test-run", &collector, &metrics)
    }

    #[test]
    fn span_json_escapes_and_links() {
        let run = sample_run();
        let outer = run.spans.iter().find(|s| s.name == "outer").unwrap();
        let inner = run.spans.iter().find(|s| s.name == "inner").unwrap();
        let json = span_to_json(outer);
        assert!(json.contains("\"parent\":null"), "{json}");
        assert!(json.contains("\\\"q"), "quote must be escaped: {json}");
        let json = span_to_json(inner);
        assert!(json.contains(&format!("\"parent\":{}", outer.id)), "{json}");
    }

    #[test]
    fn jsonl_one_line_per_span() {
        let collector = Collector::new();
        for name in ["a", "b", "c"] {
            let _s = collector.span(name);
        }
        let jsonl = spans_to_jsonl(&collector);
        assert_eq!(jsonl.lines().count(), 3);
        for line in jsonl.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }

    #[test]
    fn run_json_contains_all_sections() {
        let json = sample_run().to_json();
        assert!(json.contains("\"run\":\"test-run\""));
        assert!(json.contains("\"spans\":["));
        assert!(json.contains("\"hits\":{\"kind\":\"counter\",\"value\":1}"));
        assert!(json.contains("\"temp\":{\"kind\":\"gauge\",\"value\":0.5}"));
        assert!(json.contains("\"lat\":{\"kind\":\"histogram\""));
    }

    #[test]
    fn report_renders_tree_and_metrics() {
        let report = sample_run().report();
        assert!(report.contains("run report: test-run"), "{report}");
        let outer_line = report.lines().find(|l| l.contains("outer")).unwrap();
        let inner_line = report.lines().find(|l| l.contains("inner")).unwrap();
        let indent = |l: &str| l.len() - l.trim_start().len();
        assert!(indent(inner_line) > indent(outer_line), "{report}");
        assert!(report.contains("hits = 1"), "{report}");
        assert!(report.contains("lat: n=1"), "{report}");
    }

    #[test]
    fn non_finite_gauge_serializes_as_null() {
        let metrics = MetricsRegistry::new();
        metrics.set_gauge("bad", f64::NAN);
        let json = metrics_to_json(&metrics.snapshot());
        assert!(json.contains("\"bad\":{\"kind\":\"gauge\",\"value\":null}"));
    }

    #[test]
    fn span_json_carries_trace_id() {
        let collector = Collector::new();
        let trace_id = crate::trace::next_trace_id();
        {
            let _t = crate::trace::enter(trace_id);
            collector.span("traced").close();
        }
        collector.span("untraced").close();
        let spans = collector.snapshot();
        let traced = spans.iter().find(|s| s.name == "traced").unwrap();
        let untraced = spans.iter().find(|s| s.name == "untraced").unwrap();
        assert!(span_to_json(traced).contains(&format!("\"trace_id\":{trace_id}")));
        assert!(span_to_json(untraced).contains("\"trace_id\":null"));
    }

    #[test]
    fn log_event_json_shape() {
        let buf = crate::log::LogBuffer::new();
        buf.log(crate::log::Level::Warn, "core.session", "odd \"input\"")
            .field("rows", 12u64)
            .emit();
        let json = log_event_to_json(&buf.tail(1, None)[0]);
        assert!(json.starts_with('{') && json.ends_with('}'), "{json}");
        assert!(json.contains("\"level\":\"warn\""), "{json}");
        assert!(json.contains("\"target\":\"core.session\""), "{json}");
        assert!(json.contains("\\\"input\\\""), "{json}");
        assert!(json.contains("\"fields\":{\"rows\":12}"), "{json}");
        assert!(json.contains("\"span_id\":null"), "{json}");
    }

    #[test]
    fn orphan_spans_render_as_roots() {
        let collector = Collector::new();
        {
            let _a = collector.span("kept");
        }
        let mut run = RunTelemetry::capture("r", &collector, &MetricsRegistry::new());
        // Simulate a partial capture: point the span at a missing parent.
        run.spans[0].parent = Some(999_999_999);
        let report = run.report();
        assert!(report.contains("kept"), "{report}");
    }
}
