//! Runtime profiling hooks: a counting allocator, RAII phase timers with
//! self/child attribution, and a process-wide phase registry.
//!
//! Three cooperating pieces:
//!
//! - [`CountingAlloc`] — a [`GlobalAlloc`] wrapper around the system
//!   allocator that counts allocations and bytes into thread-local
//!   counters. It is *opt-in twice*: a binary must install it with
//!   `#[global_allocator]`, and counting only happens while at least one
//!   [`AllocScope`] is open anywhere in the process (one relaxed atomic
//!   load per allocation otherwise).
//! - [`AllocScope`] — RAII window over the calling thread's allocation
//!   counters; [`AllocScope::end`] (or [`AllocScope::delta`]) yields the
//!   allocs/bytes recorded since the scope opened. Scopes nest: an inner
//!   scope's delta is a subset of its outer scope's.
//! - [`PhaseGuard`] (via [`phase`] / [`phase_keyed`]) — a timer that opens
//!   a regular telemetry span (so phases appear in `/spans` and the
//!   flamegraph), attributes **self time vs child time** through a
//!   thread-local phase stack, optionally captures an allocation delta
//!   (see [`set_alloc_profiling`]), aggregates per-phase statistics into
//!   the process-wide [`ProfileRegistry`] served at `/profile`, and
//!   observes a `bench.<key>` histogram so the same numbers appear in
//!   `/metrics` and the bench JSON.
//!
//! ```
//! use matilda_telemetry::profile;
//!
//! let timer = profile::phase("doc.example");
//! // ... hot work ...
//! let wall = timer.close();
//! let stats = profile::global().snapshot();
//! let me = stats.iter().find(|p| p.name == "doc.example").unwrap();
//! assert_eq!(me.total_ns, wall.as_nanos() as u64);
//! ```
//!
//! Like the rest of the telemetry crate, profiling must never change
//! program behaviour: the allocator counts through `try_with` (so TLS
//! teardown cannot panic), the registry recovers from poisoned locks, and
//! a phase guard dropped out of order still attributes its time.

use crate::span::SpanGuard;
use parking_lot::Mutex;
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

// ---------------------------------------------------------------------------
// Counting allocator
// ---------------------------------------------------------------------------

// Number of `AllocScope`s currently open, process-wide. The allocator only
// pays for thread-local bookkeeping while this is non-zero.
static ACTIVE_SCOPES: AtomicU64 = AtomicU64::new(0);

thread_local! {
    // Monotonic per-thread totals; scopes read them twice and subtract.
    static TL_ALLOCS: Cell<u64> = const { Cell::new(0) };
    static TL_BYTES: Cell<u64> = const { Cell::new(0) };
}

#[inline]
fn count_alloc(size: usize) {
    if ACTIVE_SCOPES.load(Ordering::Relaxed) == 0 {
        return;
    }
    // `try_with`: allocations during TLS teardown must not panic.
    let _ = TL_ALLOCS.try_with(|c| c.set(c.get() + 1));
    let _ = TL_BYTES.try_with(|c| c.set(c.get() + size as u64));
}

#[inline]
fn thread_totals() -> (u64, u64) {
    let allocs = TL_ALLOCS.try_with(Cell::get).unwrap_or(0);
    let bytes = TL_BYTES.try_with(Cell::get).unwrap_or(0);
    (allocs, bytes)
}

/// A counting wrapper around the system allocator.
///
/// Install it in a binary (or test harness) to make [`AllocScope`] deltas
/// meaningful:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: matilda_telemetry::profile::CountingAlloc =
///     matilda_telemetry::profile::CountingAlloc::new();
/// ```
///
/// Without it, scopes and phase allocation columns simply read zero — the
/// profiling layer degrades, it never breaks.
#[derive(Debug, Default)]
pub struct CountingAlloc;

impl CountingAlloc {
    /// A new counting allocator (const, for `static` installation).
    pub const fn new() -> Self {
        Self
    }
}

// SAFETY: defers every allocation to `System`, only adding side-effect-free
// thread-local counting on the alloc paths.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_alloc(layout.size());
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count_alloc(layout.size());
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_alloc(new_size);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

/// Allocations and bytes recorded on one thread over one scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocDelta {
    /// Number of allocation calls (alloc, alloc_zeroed, realloc).
    pub allocs: u64,
    /// Total bytes requested by those calls.
    pub bytes: u64,
}

/// RAII window over the calling thread's allocation counters.
///
/// While any scope is open the installed [`CountingAlloc`] counts; the
/// scope's delta is what this thread allocated between open and read.
#[derive(Debug)]
pub struct AllocScope {
    start_allocs: u64,
    start_bytes: u64,
}

impl AllocScope {
    /// Open a scope and start (or keep) allocation counting.
    pub fn begin() -> Self {
        ACTIVE_SCOPES.fetch_add(1, Ordering::Relaxed);
        let (start_allocs, start_bytes) = thread_totals();
        Self {
            start_allocs,
            start_bytes,
        }
    }

    /// Allocations on this thread since the scope opened.
    pub fn delta(&self) -> AllocDelta {
        let (allocs, bytes) = thread_totals();
        AllocDelta {
            allocs: allocs.saturating_sub(self.start_allocs),
            bytes: bytes.saturating_sub(self.start_bytes),
        }
    }

    /// Close the scope, returning its final delta.
    pub fn end(self) -> AllocDelta {
        self.delta()
    }
}

impl Default for AllocScope {
    fn default() -> Self {
        Self::begin()
    }
}

impl Drop for AllocScope {
    fn drop(&mut self) {
        ACTIVE_SCOPES.fetch_sub(1, Ordering::Relaxed);
    }
}

/// `true` when a [`CountingAlloc`] is actually installed as the global
/// allocator (probed once by allocating inside a scope).
pub fn counting_allocator_installed() -> bool {
    static PROBE: OnceLock<bool> = OnceLock::new();
    *PROBE.get_or_init(|| {
        let scope = AllocScope::begin();
        let v: Vec<u64> = std::hint::black_box(vec![0u64; 32]);
        drop(std::hint::black_box(v));
        scope.end().allocs > 0
    })
}

// ---------------------------------------------------------------------------
// Alloc profiling toggle for phase timers
// ---------------------------------------------------------------------------

static ALLOC_PROFILING: AtomicBool = AtomicBool::new(false);

/// Make phase timers capture allocation deltas ([`AllocDelta`]) alongside
/// their timings. Off by default: with it on, every allocation in the
/// process pays two thread-local increments while any phase is open.
pub fn set_alloc_profiling(on: bool) {
    ALLOC_PROFILING.store(on, Ordering::Relaxed);
}

/// Whether phase timers currently capture allocation deltas.
pub fn alloc_profiling() -> bool {
    ALLOC_PROFILING.load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Phase timers with self/child attribution
// ---------------------------------------------------------------------------

thread_local! {
    // Open phases on this thread, innermost last. Each frame accumulates
    // the wall time of its *direct* phase children as they close.
    static PHASE_STACK: RefCell<Vec<PhaseFrame>> = const { RefCell::new(Vec::new()) };
}

struct PhaseFrame {
    token: u64,
    child_ns: u64,
}

static NEXT_TOKEN: AtomicU64 = AtomicU64::new(1);

/// Open a phase timer whose span name and registry key are both `name`.
///
/// The guard times the region RAII-style, shows up as a span (flamegraph,
/// `/spans`), aggregates into [`global`] under `name`, and observes the
/// `bench.<name>` histogram on close.
pub fn phase(name: impl Into<String>) -> PhaseGuard {
    let name = name.into();
    let key = name.clone();
    PhaseGuard::open(name, key)
}

/// Open a phase timer with a detailed span name but a stable registry key —
/// e.g. span `pipeline.task.train` under key `pipeline.task`, so per-task
/// spans stay distinguishable while metrics stay low-cardinality.
pub fn phase_keyed(span_name: impl Into<String>, key: impl Into<String>) -> PhaseGuard {
    PhaseGuard::open(span_name.into(), key.into())
}

/// An open phase; attributes its time (and optionally allocations) when
/// closed or dropped.
#[derive(Debug)]
pub struct PhaseGuard {
    span: Option<SpanGuard>,
    key: String,
    token: u64,
    alloc: Option<AllocScope>,
}

impl PhaseGuard {
    fn open(span_name: String, key: String) -> Self {
        let token = NEXT_TOKEN.fetch_add(1, Ordering::Relaxed);
        let span = crate::span::span(span_name);
        PHASE_STACK.with(|s| s.borrow_mut().push(PhaseFrame { token, child_ns: 0 }));
        let alloc = alloc_profiling().then(AllocScope::begin);
        Self {
            span: Some(span),
            key,
            token,
            alloc,
        }
    }

    /// Attach a key/value annotation to the underlying span.
    pub fn field(
        &mut self,
        key: impl Into<String>,
        value: impl Into<crate::span::FieldValue>,
    ) -> &mut Self {
        if let Some(span) = self.span.as_mut() {
            span.field(key, value);
        }
        self
    }

    /// Close the phase now, returning its wall time.
    pub fn close(mut self) -> Duration {
        self.finish()
    }

    fn finish(&mut self) -> Duration {
        let Some(span) = self.span.take() else {
            return Duration::ZERO;
        };
        let alloc = self.alloc.take().map(AllocScope::end).unwrap_or_default();
        let elapsed = span.close();
        let total_ns = elapsed.as_nanos() as u64;
        let child_ns = PHASE_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Guards drop LIFO in straight-line code; a guard moved across
            // scopes can close out of order, so remove it wherever it sits.
            let child_ns = match stack.iter().rposition(|f| f.token == self.token) {
                Some(pos) => stack.remove(pos).child_ns,
                None => 0,
            };
            if let Some(parent) = stack.last_mut() {
                parent.child_ns += total_ns;
            }
            child_ns
        });
        let self_ns = total_ns.saturating_sub(child_ns);
        global().record(&self.key, total_ns, self_ns, alloc);
        crate::metrics::global().observe(&format!("bench.{}", self.key), elapsed.as_secs_f64());
        elapsed
    }
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        self.finish();
    }
}

// ---------------------------------------------------------------------------
// Process-wide phase registry
// ---------------------------------------------------------------------------

/// Aggregate statistics for one phase name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseStat {
    /// Registry key (the phase's metric key).
    pub name: String,
    /// Times the phase closed.
    pub calls: u64,
    /// Total wall time across all calls, in nanoseconds.
    pub total_ns: u64,
    /// Wall time not attributed to nested phases, in nanoseconds.
    pub self_ns: u64,
    /// Longest single call, in nanoseconds.
    pub max_ns: u64,
    /// Allocation calls captured while alloc profiling was on.
    pub allocs: u64,
    /// Bytes requested by those allocations.
    pub alloc_bytes: u64,
}

impl PhaseStat {
    /// Wall time attributed to nested phases, in nanoseconds.
    pub fn child_ns(&self) -> u64 {
        self.total_ns.saturating_sub(self.self_ns)
    }

    /// This stat as one JSON object (hand-rolled, like every exporter in
    /// the crate).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"name\":\"{}\",\"calls\":{},\"total_ns\":{},\"self_ns\":{},\"child_ns\":{},\"max_ns\":{},\"allocs\":{},\"alloc_bytes\":{}}}",
            crate::export::escape(&self.name),
            self.calls,
            self.total_ns,
            self.self_ns,
            self.child_ns(),
            self.max_ns,
            self.allocs,
            self.alloc_bytes
        )
    }
}

/// Aggregated per-phase statistics, keyed by phase name.
#[derive(Debug, Default)]
pub struct ProfileRegistry {
    phases: Mutex<BTreeMap<String, PhaseStat>>,
}

impl ProfileRegistry {
    /// A new, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn record(&self, key: &str, total_ns: u64, self_ns: u64, alloc: AllocDelta) {
        let mut phases = self.phases.lock();
        let stat = phases.entry(key.to_string()).or_insert_with(|| PhaseStat {
            name: key.to_string(),
            calls: 0,
            total_ns: 0,
            self_ns: 0,
            max_ns: 0,
            allocs: 0,
            alloc_bytes: 0,
        });
        stat.calls += 1;
        stat.total_ns += total_ns;
        stat.self_ns += self_ns;
        stat.max_ns = stat.max_ns.max(total_ns);
        stat.allocs += alloc.allocs;
        stat.alloc_bytes += alloc.bytes;
    }

    /// A copy of every phase's statistics, sorted by name.
    pub fn snapshot(&self) -> Vec<PhaseStat> {
        self.phases.lock().values().cloned().collect()
    }

    /// Number of distinct phase names recorded.
    pub fn len(&self) -> usize {
        self.phases.lock().len()
    }

    /// `true` when no phase has closed yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Remove every recorded phase.
    pub fn reset(&self) {
        self.phases.lock().clear();
    }

    /// The whole registry as one JSON document:
    /// `{"alloc_profiling":…,"phases":[…]}`.
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\"alloc_profiling\":{},\"phases\":[", alloc_profiling());
        for (i, stat) in self.snapshot().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&stat.to_json());
        }
        out.push_str("]}");
        out
    }
}

/// The process-wide profile registry — what `/profile` serves.
pub fn global() -> &'static ProfileRegistry {
    static GLOBAL: OnceLock<ProfileRegistry> = OnceLock::new();
    GLOBAL.get_or_init(ProfileRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_scope_sees_this_threads_allocations() {
        assert!(
            counting_allocator_installed(),
            "the telemetry test harness installs CountingAlloc"
        );
        let scope = AllocScope::begin();
        let v = std::hint::black_box(vec![7u8; 4096]);
        let delta = scope.end();
        drop(v);
        assert!(delta.allocs >= 1, "{delta:?}");
        assert!(delta.bytes >= 4096, "{delta:?}");
    }

    #[test]
    fn nested_scopes_subset_arithmetic() {
        let outer = AllocScope::begin();
        let a = std::hint::black_box(vec![1u8; 1024]);
        let inner = AllocScope::begin();
        let b = std::hint::black_box(vec![2u64; 512]);
        let inner_delta = inner.end();
        let outer_delta = outer.end();
        drop((a, b));
        assert!(inner_delta.allocs >= 1);
        assert!(inner_delta.bytes >= 4096);
        // The outer scope saw everything the inner one saw, plus its own.
        assert!(outer_delta.allocs > inner_delta.allocs, "{outer_delta:?}");
        assert!(
            outer_delta.bytes >= inner_delta.bytes + 1024,
            "{outer_delta:?} vs {inner_delta:?}"
        );
    }

    #[test]
    fn zero_alloc_path_reads_zero() {
        let scope = AllocScope::begin();
        let mut acc = 0u64;
        for i in 0..64u64 {
            acc = acc.wrapping_mul(31).wrapping_add(std::hint::black_box(i));
        }
        let delta = scope.end();
        std::hint::black_box(acc);
        assert_eq!(delta, AllocDelta::default(), "arithmetic must not allocate");
    }

    #[test]
    fn phase_attribution_sums_to_wall_time() {
        let outer = phase("profile_test.attr_outer");
        std::thread::sleep(Duration::from_millis(3));
        {
            let _inner = phase("profile_test.attr_inner");
            std::thread::sleep(Duration::from_millis(3));
        }
        let wall = outer.close();

        let stats = global().snapshot();
        let get = |n: &str| stats.iter().find(|p| p.name == n).cloned().unwrap();
        let outer = get("profile_test.attr_outer");
        let inner = get("profile_test.attr_inner");
        assert_eq!(outer.total_ns, wall.as_nanos() as u64);
        // Self + child reconstructs the wall clock exactly: both sides come
        // from the same span epoch clock.
        assert_eq!(outer.self_ns + outer.child_ns(), outer.total_ns);
        assert_eq!(outer.child_ns(), inner.total_ns);
        assert!(inner.total_ns >= Duration::from_millis(3).as_nanos() as u64);
        assert!(outer.self_ns >= Duration::from_millis(3).as_nanos() as u64);
    }

    #[test]
    fn phase_emits_bench_metric_and_span() {
        let scope = crate::metrics::scoped();
        let spans_before = crate::span::global().len();
        phase("profile_test.metric").close();
        let snap = scope.snapshot();
        let hist = snap.histogram("bench.profile_test.metric").unwrap();
        assert_eq!(hist.count, 1);
        assert!(
            crate::span::global().len() > spans_before,
            "phase left a span"
        );
    }

    #[test]
    fn phase_keyed_separates_span_name_from_key() {
        let scope = crate::metrics::scoped();
        phase_keyed("profile_test.keyed.detail", "profile_test.keyed").close();
        assert!(scope
            .snapshot()
            .histogram("bench.profile_test.keyed")
            .is_some());
        let stats = global().snapshot();
        assert!(stats.iter().any(|p| p.name == "profile_test.keyed"));
        assert!(crate::span::global()
            .snapshot()
            .iter()
            .any(|s| s.name == "profile_test.keyed.detail"));
    }

    #[test]
    fn phase_captures_allocs_when_enabled() {
        set_alloc_profiling(true);
        let mut timer = phase("profile_test.allocs");
        timer.field("rows", 1u64);
        let v = std::hint::black_box(vec![0u8; 2048]);
        drop(timer);
        drop(v);
        set_alloc_profiling(false);
        let stats = global().snapshot();
        let stat = stats
            .iter()
            .find(|p| p.name == "profile_test.allocs")
            .unwrap();
        assert!(stat.allocs >= 1, "{stat:?}");
        assert!(stat.alloc_bytes >= 2048, "{stat:?}");
    }

    #[test]
    fn registry_json_is_well_formed() {
        phase("profile_test.json").close();
        let json = global().to_json();
        assert!(json.starts_with("{\"alloc_profiling\":"), "{json}");
        assert!(json.ends_with("]}"), "{json}");
        assert!(json.contains("\"name\":\"profile_test.json\""), "{json}");
        assert!(json.contains("\"calls\":"), "{json}");
        assert!(json.contains("\"self_ns\":"), "{json}");
        assert!(json.contains("\"alloc_bytes\":"), "{json}");
    }

    #[test]
    fn out_of_order_drop_still_attributes() {
        let a = phase("profile_test.ooo_a");
        let b = phase("profile_test.ooo_b");
        drop(a); // dropped before its child closes
        drop(b);
        let stats = global().snapshot();
        assert!(stats.iter().any(|p| p.name == "profile_test.ooo_a"));
        assert!(stats.iter().any(|p| p.name == "profile_test.ooo_b"));
    }
}
