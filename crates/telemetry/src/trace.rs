//! Per-session trace identity.
//!
//! A [`TraceId`] names one logical unit of work — conventionally a whole
//! design session — across every signal the platform emits: spans, log
//! events and provenance events recorded while a trace is entered all carry
//! the same id, so an operator can slice any export down to one session.
//!
//! The id travels through a thread-local, exactly like the span stack: the
//! session objects call [`enter`] at the top of each turn and the RAII
//! [`TraceGuard`] restores the previous trace on drop, so nested or
//! re-entrant sessions on one thread stay correctly attributed.
//!
//! ```
//! use matilda_telemetry::trace;
//!
//! let id = trace::next_trace_id();
//! assert_eq!(trace::current_trace_id(), None);
//! {
//!     let _guard = trace::enter(id);
//!     assert_eq!(trace::current_trace_id(), Some(id));
//! }
//! assert_eq!(trace::current_trace_id(), None);
//! ```

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Identifier of one trace (session), unique within a process run.
pub type TraceId = u64;

static NEXT_TRACE: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static CURRENT_TRACE: Cell<Option<TraceId>> = const { Cell::new(None) };
}

/// Mix a counter into a well-spread 64-bit id (splitmix64 finalizer), so
/// trace ids do not collide visually with span ids or sequence numbers.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Mint a fresh, process-unique trace id (never zero).
pub fn next_trace_id() -> TraceId {
    loop {
        let id = splitmix64(NEXT_TRACE.fetch_add(1, Ordering::Relaxed));
        if id != 0 {
            return id;
        }
    }
}

/// The trace currently entered on this thread, if any.
///
/// This is the hook other subsystems use to tag their artefacts: every span,
/// log event and provenance event captures it at record time.
pub fn current_trace_id() -> Option<TraceId> {
    CURRENT_TRACE.with(|c| c.get())
}

/// Enter `trace` on this thread until the returned guard drops.
///
/// Entering is idempotent and nestable: the guard restores whatever trace
/// (or absence of one) was current before.
pub fn enter(trace: TraceId) -> TraceGuard {
    let prev = CURRENT_TRACE.with(|c| c.replace(Some(trace)));
    TraceGuard { prev }
}

/// RAII guard restoring the previously-current trace on drop.
#[derive(Debug)]
pub struct TraceGuard {
    prev: Option<TraceId>,
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        CURRENT_TRACE.with(|c| c.set(self.prev));
    }
}

/// Render a trace id the way exports and logs print it (zero-padded hex).
pub fn format_trace_id(id: TraceId) -> String {
    format!("{id:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_unique_and_nonzero() {
        let a = next_trace_id();
        let b = next_trace_id();
        assert_ne!(a, b);
        assert_ne!(a, 0);
        assert_ne!(b, 0);
    }

    #[test]
    fn guard_nests_and_restores() {
        assert_eq!(current_trace_id(), None);
        let outer = next_trace_id();
        let inner = next_trace_id();
        {
            let _g1 = enter(outer);
            assert_eq!(current_trace_id(), Some(outer));
            {
                let _g2 = enter(inner);
                assert_eq!(current_trace_id(), Some(inner));
            }
            assert_eq!(current_trace_id(), Some(outer));
        }
        assert_eq!(current_trace_id(), None);
    }

    #[test]
    fn re_entering_same_trace_is_fine() {
        let id = next_trace_id();
        let _a = enter(id);
        let _b = enter(id);
        assert_eq!(current_trace_id(), Some(id));
    }

    #[test]
    fn trace_is_thread_local() {
        let id = next_trace_id();
        let _g = enter(id);
        std::thread::spawn(|| assert_eq!(current_trace_id(), None))
            .join()
            .unwrap();
    }

    #[test]
    fn hex_format_is_stable_width() {
        assert_eq!(format_trace_id(0xff).len(), 16);
        assert_eq!(format_trace_id(0xff), "00000000000000ff");
    }
}
