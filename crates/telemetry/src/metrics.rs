//! A global sharded registry of counters, gauges and fixed-bucket
//! histograms.
//!
//! Names are free-form strings, conventionally `component.metric`
//! (`search.mutations`, `ml.fit_seconds`). The registry is sharded by name
//! hash so concurrent workers touching different metrics rarely contend.
//!
//! ```
//! use matilda_telemetry::metrics::MetricsRegistry;
//!
//! let m = MetricsRegistry::new();
//! m.inc("search.mutations");
//! m.observe("task.seconds", 0.012);
//! let snap = m.snapshot();
//! assert_eq!(snap.counter("search.mutations"), 1);
//! assert_eq!(snap.histogram("task.seconds").unwrap().count, 1);
//! ```

use parking_lot::Mutex;
use std::collections::{BTreeMap, HashMap};
use std::hash::{Hash, Hasher};
use std::sync::OnceLock;

/// Canonical names for cross-crate metrics, so producers (resilience,
/// creativity, core) and consumers (benches, CI gates, dashboards) cannot
/// drift apart on spelling.
pub mod names {
    /// Counter: searches preempted by an expiring `DeadlineBudget`
    /// before their final generation.
    pub const DEADLINE_PREEMPTIONS: &str = "resilience.deadline_preemptions";
    /// Histogram (seconds, on the active resilience clock): end-to-end
    /// latency of one conversational turn.
    pub const TURN_LATENCY_SECONDS: &str = "resilience.turn_latency_seconds";
    /// Counter: candidate evaluations skipped because the deadline budget
    /// expired mid-batch.
    pub const EVALS_SKIPPED_DEADLINE: &str = "resilience.evals_skipped_deadline";
    /// Counter: creativity-pattern invocations rejected by an open breaker.
    pub const PATTERNS_QUARANTINED: &str = "resilience.patterns_quarantined";
    /// Counter: creativity-pattern invocations that failed (fault or caught
    /// panic) and fed their breaker.
    pub const PATTERN_FAILURES: &str = "resilience.pattern_failures";
    /// Counter: data-source reads rejected by an open breaker.
    pub const SOURCES_QUARANTINED: &str = "resilience.sources_quarantined";
    /// Counter: turns refused because the session-wide deadline budget was
    /// already spent when the turn began.
    pub const TURNS_BUDGET_EXHAUSTED: &str = "resilience.turns_budget_exhausted";
    /// Counter: cooperative cancellations — work preempted at a budget
    /// checkpoint. Per-site breakdowns append the site name
    /// (`resilience.preempted.<site>`).
    pub const PREEMPTED: &str = "resilience.preempted";
    /// Gauge: number of benchmarks recorded by the last `bench_suite` run
    /// in this process.
    pub const BENCH_RESULTS: &str = "bench.results";
    /// Gauge: number of benchmarks whose last `bench_suite` run regressed
    /// past tolerance vs the committed baseline (`/healthz` reports
    /// degraded while this is non-zero).
    pub const BENCH_REGRESSIONS: &str = "bench.regressions";
    /// Counter: records appended to the telemetry journal.
    pub const JOURNAL_RECORDS: &str = "telemetry.journal_records";
    /// Counter: bytes written to the telemetry journal.
    pub const JOURNAL_BYTES: &str = "telemetry.journal_bytes";
    /// Counter: journal segment rotations.
    pub const JOURNAL_ROTATIONS: &str = "telemetry.journal_rotations";
    /// Counter: journal write/fsync/rotation failures (`/healthz` reports
    /// degraded while this is non-zero — the flight recorder is losing
    /// events).
    pub const JOURNAL_WRITE_ERRORS: &str = "telemetry.journal_write_errors";
    /// Gauge: segments the journal has opened in this process.
    pub const JOURNAL_SEGMENTS: &str = "telemetry.journal_segments";
    /// Counter: torn/unparseable journal lines skipped (and counted) by
    /// `replay_counted` — post-crash data loss made visible on `/healthz`.
    pub const JOURNAL_TORN_LINES: &str = "telemetry.journal_torn_lines";
    /// Counter: session-store writes that failed after retries (`/healthz`
    /// reports degraded while this is non-zero — session durability is
    /// degraded, the conversation itself keeps going).
    pub const STORE_WRITE_ERRORS: &str = "sessionstore.write_errors";
    /// Counter: session-store writes degraded to counted no-ops by an open
    /// `store.write.<session>` breaker.
    pub const STORE_WRITES_SKIPPED: &str = "sessionstore.writes_skipped";
    /// Counter: session-store writes that succeeded only after retrying a
    /// transient failure.
    pub const STORE_WRITES_RETRIED: &str = "sessionstore.writes_retried";
    /// Counter: snapshot records written into session logs.
    pub const STORE_SNAPSHOTS_WRITTEN: &str = "sessionstore.snapshots_written";
    /// Counter: in-flight sessions resurrected by the recovery pass.
    pub const STORE_SESSIONS_RECOVERED: &str = "sessionstore.sessions_recovered";
    /// Counter: corrupt session logs moved to quarantine by recovery.
    pub const STORE_SESSIONS_QUARANTINED: &str = "sessionstore.sessions_quarantined";
    /// Histogram (seconds, wall clock): latency of one `restore` replay.
    pub const STORE_RESTORE_SECONDS: &str = "sessionstore.restore_seconds";
    /// Counter: incident capsules captured.
    pub const INCIDENTS_CAPTURED: &str = "telemetry.incidents_captured";
    /// Counter: capsules evicted from the bounded in-memory ring.
    pub const INCIDENTS_DROPPED: &str = "telemetry.incidents_dropped";
    /// Counter: capsule disk-write failures.
    pub const INCIDENT_WRITE_ERRORS: &str = "telemetry.incident_write_errors";
    /// Gauge: the daemon's current overload level (0 nominal, 1 elevated,
    /// 2 saturated, 3 critical). Set by the daemon's tick scheduler;
    /// `/healthz` reports degraded (503) while the gauge reads critical.
    pub const DAEMON_LOAD_LEVEL: &str = "daemon.load_level";
}

/// Fixed histogram bucket upper bounds (inclusive), in the metric's unit.
///
/// The default covers ~4 ns to ~17 min in powers of four when the unit is
/// seconds — wide enough for both a single hot-path phase (the `bench.*`
/// timers record µs- and sub-µs durations) and a whole creative search.
/// Callers needing a different grid pass one through
/// [`MetricsRegistry::observe_with_buckets`]; existing bucket sets stay
/// valid unchanged.
pub fn default_buckets() -> Vec<f64> {
    (-4..16).map(|i| 1e-6 * 4f64.powi(i)).collect()
}

/// A fixed-bucket histogram with min/max/sum tracking.
#[derive(Debug, Clone)]
pub struct Histogram {
    /// Upper bound (inclusive) per bucket; values above the last bound land
    /// in the overflow bucket.
    bounds: Vec<f64>,
    /// One count per bound, plus a trailing overflow bucket.
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// A histogram over `bounds` (must be non-empty and strictly
    /// increasing).
    pub fn with_buckets(bounds: Vec<f64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let n = bounds.len();
        Self {
            bounds,
            counts: vec![0; n + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// A histogram over [`default_buckets`].
    pub fn new() -> Self {
        Self::with_buckets(default_buckets())
    }

    /// Record one observation.
    pub fn observe(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Upper bound (inclusive) per bucket, excluding the overflow bucket.
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket observation counts: one entry per bound, plus a trailing
    /// overflow bucket (not cumulative — the exposition layer accumulates).
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }

    /// The index of the bucket `value` would land in.
    pub fn bucket_index(&self, value: f64) -> usize {
        self.bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len())
    }

    /// Estimate the `q`-quantile (`0.0..=1.0`) by linear interpolation
    /// within the target bucket, clamped to the observed min/max.
    ///
    /// Returns `None` when the histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target observation (1-based), then walk buckets.
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if seen + c >= rank {
                let lo = if idx == 0 { 0.0 } else { self.bounds[idx - 1] };
                let hi = if idx < self.bounds.len() {
                    self.bounds[idx]
                } else {
                    self.max
                };
                // Position of the rank within this bucket's counts.
                let within = (rank - seen) as f64 / c as f64;
                let est = lo + within * (hi - lo).max(0.0);
                return Some(est.clamp(self.min, self.max));
            }
            seen += c;
        }
        Some(self.max)
    }

    /// Summarize into a serializable snapshot.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { 0.0 } else { self.min },
            max: if self.count == 0 { 0.0 } else { self.max },
            p50: self.quantile(0.50).unwrap_or(0.0),
            p95: self.quantile(0.95).unwrap_or(0.0),
            p99: self.quantile(0.99).unwrap_or(0.0),
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Point-in-time summary of one histogram.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: f64,
    /// Smallest observation.
    pub min: f64,
    /// Largest observation.
    pub max: f64,
    /// Estimated median.
    pub p50: f64,
    /// Estimated 95th percentile.
    pub p95: f64,
    /// Estimated 99th percentile.
    pub p99: f64,
}

impl HistogramSummary {
    /// Mean of observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }
}

#[derive(Debug)]
enum Metric {
    Counter(u64),
    Gauge(f64),
    Histogram(Histogram),
}

/// Point-in-time value of one metric.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonic count.
    Counter(u64),
    /// Last-set value.
    Gauge(f64),
    /// Distribution summary.
    Histogram(HistogramSummary),
}

const SHARDS: usize = 8;

/// A sharded registry of named metrics.
///
/// Metric kinds are fixed at first touch: incrementing a name makes it a
/// counter, `observe` makes it a histogram, `set_gauge` a gauge. Touching a
/// name as a different kind is a no-op (never a panic) so instrumentation
/// can never take down the platform.
#[derive(Debug)]
pub struct MetricsRegistry {
    shards: [Mutex<HashMap<String, Metric>>; SHARDS],
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsRegistry {
    /// A new, empty registry.
    pub fn new() -> Self {
        Self {
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
        }
    }

    fn shard(&self, name: &str) -> &Mutex<HashMap<String, Metric>> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        name.hash(&mut h);
        &self.shards[h.finish() as usize % SHARDS]
    }

    /// Add `delta` to the counter `name`.
    pub fn add(&self, name: &str, delta: u64) {
        let mut shard = self.shard(name).lock();
        if let Metric::Counter(c) = shard.entry(name.to_string()).or_insert(Metric::Counter(0)) {
            *c += delta;
        }
    }

    /// Increment the counter `name` by one.
    pub fn inc(&self, name: &str) {
        self.add(name, 1);
    }

    /// Set the gauge `name` to `value`.
    pub fn set_gauge(&self, name: &str, value: f64) {
        let mut shard = self.shard(name).lock();
        if let Metric::Gauge(g) = shard.entry(name.to_string()).or_insert(Metric::Gauge(0.0)) {
            *g = value;
        }
    }

    /// Record `value` into the histogram `name` (default buckets).
    pub fn observe(&self, name: &str, value: f64) {
        let mut shard = self.shard(name).lock();
        if let Metric::Histogram(h) = shard
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::new()))
        {
            h.observe(value);
        }
    }

    /// Record a duration, in seconds, into the histogram `name`.
    pub fn observe_duration(&self, name: &str, duration: std::time::Duration) {
        self.observe(name, duration.as_secs_f64());
    }

    /// Record `value` into the histogram `name`, creating it over the
    /// bounds `buckets()` yields on first touch (later calls ignore it).
    pub fn observe_with_buckets(&self, name: &str, value: f64, buckets: impl FnOnce() -> Vec<f64>) {
        let mut shard = self.shard(name).lock();
        if let Metric::Histogram(h) = shard
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::with_buckets(buckets())))
        {
            h.observe(value);
        }
    }

    /// A sorted snapshot of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut out = BTreeMap::new();
        for shard in &self.shards {
            for (name, metric) in shard.lock().iter() {
                let value = match metric {
                    Metric::Counter(c) => MetricValue::Counter(*c),
                    Metric::Gauge(g) => MetricValue::Gauge(*g),
                    Metric::Histogram(h) => MetricValue::Histogram(h.summary()),
                };
                out.insert(name.clone(), value);
            }
        }
        MetricsSnapshot { metrics: out }
    }

    /// Full histogram states (with per-bucket counts), sorted by name — the
    /// raw material for Prometheus exposition, which needs cumulative `le`
    /// buckets that [`HistogramSummary`] deliberately does not carry.
    pub fn histograms(&self) -> BTreeMap<String, Histogram> {
        let mut out = BTreeMap::new();
        for shard in &self.shards {
            for (name, metric) in shard.lock().iter() {
                if let Metric::Histogram(h) = metric {
                    out.insert(name.clone(), h.clone());
                }
            }
        }
        out
    }

    /// Remove every metric.
    pub fn reset(&self) {
        for shard in &self.shards {
            shard.lock().clear();
        }
    }
}

/// Sorted point-in-time view of a [`MetricsRegistry`].
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Metric name → value, sorted by name.
    pub metrics: BTreeMap<String, MetricValue>,
}

impl MetricsSnapshot {
    /// The counter `name`, or 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        match self.metrics.get(name) {
            Some(MetricValue::Counter(c)) => *c,
            _ => 0,
        }
    }

    /// The gauge `name`, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.metrics.get(name) {
            Some(MetricValue::Gauge(g)) => Some(*g),
            _ => None,
        }
    }

    /// The histogram summary `name`, if any observation landed.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        match self.metrics.get(name) {
            Some(MetricValue::Histogram(h)) => Some(h),
            _ => None,
        }
    }
}

thread_local! {
    // Registries installed by `scoped()` on this thread, innermost last.
    static SCOPED: std::cell::RefCell<Vec<std::sync::Arc<MetricsRegistry>>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// The registry instrumented hot paths write to: the innermost registry
/// installed by [`scoped`] on the calling thread, falling back to the
/// process-wide registry ([`process_global`]).
///
/// The returned handle derefs to [`MetricsRegistry`], so call sites read as
/// `metrics::global().inc("...")` whether or not a scope is active.
pub fn global() -> RegistryHandle {
    SCOPED.with(|stack| match stack.borrow().last() {
        Some(reg) => RegistryHandle::Scoped(reg.clone()),
        None => RegistryHandle::Process(process_global()),
    })
}

/// The process-wide registry, ignoring any thread-local scope — what the
/// exposition endpoint and run captures serve.
pub fn process_global() -> &'static MetricsRegistry {
    static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
    GLOBAL.get_or_init(MetricsRegistry::new)
}

/// Install a fresh registry for the calling thread until the guard drops.
///
/// This is the test-isolation story: `cargo test` runs tests on concurrent
/// threads sharing one process registry, so a test asserting on counters
/// can observe increments from its neighbours. A scoped registry captures
/// everything the current thread records through [`global`] — worker
/// threads spawned inside the scope still write to the process registry.
pub fn scoped() -> ScopedRegistry {
    let registry = std::sync::Arc::new(MetricsRegistry::new());
    SCOPED.with(|stack| stack.borrow_mut().push(registry.clone()));
    ScopedRegistry { registry }
}

/// A handle on the registry currently in scope; derefs to
/// [`MetricsRegistry`].
#[derive(Debug)]
pub enum RegistryHandle {
    /// The process-wide registry.
    Process(&'static MetricsRegistry),
    /// A thread-local scoped registry.
    Scoped(std::sync::Arc<MetricsRegistry>),
}

impl std::ops::Deref for RegistryHandle {
    type Target = MetricsRegistry;

    fn deref(&self) -> &MetricsRegistry {
        match self {
            RegistryHandle::Process(r) => r,
            RegistryHandle::Scoped(r) => r,
        }
    }
}

/// RAII guard for a thread-scoped registry; uninstalls on drop.
#[derive(Debug)]
pub struct ScopedRegistry {
    registry: std::sync::Arc<MetricsRegistry>,
}

impl ScopedRegistry {
    /// The scoped registry itself (what this thread's `global()` resolves
    /// to while the guard lives).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }
}

impl std::ops::Deref for ScopedRegistry {
    type Target = MetricsRegistry;

    fn deref(&self) -> &MetricsRegistry {
        &self.registry
    }
}

impl Drop for ScopedRegistry {
    fn drop(&mut self) {
        SCOPED.with(|stack| {
            let mut stack = stack.borrow_mut();
            // Remove this guard's registry wherever it sits: guards usually
            // drop LIFO, but a guard moved across scopes may not.
            if let Some(pos) = stack
                .iter()
                .rposition(|r| std::sync::Arc::ptr_eq(r, &self.registry))
            {
                stack.remove(pos);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let m = MetricsRegistry::new();
        m.inc("a");
        m.inc("a");
        m.add("a", 3);
        m.inc("b");
        let snap = m.snapshot();
        assert_eq!(snap.counter("a"), 5);
        assert_eq!(snap.counter("b"), 1);
        assert_eq!(snap.counter("absent"), 0);
    }

    #[test]
    fn gauges_keep_last() {
        let m = MetricsRegistry::new();
        m.set_gauge("g", 1.5);
        m.set_gauge("g", -2.0);
        assert_eq!(m.snapshot().gauge("g"), Some(-2.0));
        assert_eq!(m.snapshot().gauge("absent"), None);
    }

    #[test]
    fn kind_conflicts_are_ignored_not_fatal() {
        let m = MetricsRegistry::new();
        m.inc("x");
        m.set_gauge("x", 9.0); // wrong kind: ignored
        m.observe("x", 1.0); // wrong kind: ignored
        assert_eq!(m.snapshot().counter("x"), 1);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        let mut h = Histogram::with_buckets(vec![1.0, 2.0, 4.0]);
        // A value exactly on a bound belongs to that bucket (inclusive
        // upper bounds); above the last bound goes to overflow.
        assert_eq!(h.bucket_index(0.5), 0);
        assert_eq!(h.bucket_index(1.0), 0);
        assert_eq!(h.bucket_index(1.0001), 1);
        assert_eq!(h.bucket_index(2.0), 1);
        assert_eq!(h.bucket_index(4.0), 2);
        assert_eq!(h.bucket_index(4.0001), 3);
        for v in [0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 100.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 7);
        assert_eq!(h.counts, vec![2, 2, 2, 1]);
    }

    #[test]
    fn default_buckets_reach_sub_microsecond() {
        let b = default_buckets();
        assert_eq!(b.len(), 20);
        assert!(b[0] < 1e-8, "finest bucket is ~4 ns, got {}", b[0]);
        assert!(b.contains(&1e-6), "the 1 µs bound survives exactly");
        assert!(b.windows(2).all(|w| w[0] < w[1]));
        // A 100 ns observation lands in a real bucket, not the first one
        // and not the overflow.
        let h = Histogram::new();
        let idx = h.bucket_index(1e-7);
        assert!(idx > 0 && idx < b.len(), "index {idx}");
    }

    #[test]
    fn histogram_ignores_non_finite() {
        let mut h = Histogram::new();
        h.observe(f64::NAN);
        h.observe(f64::INFINITY);
        assert_eq!(h.count(), 0);
        assert!(h.quantile(0.5).is_none());
    }

    #[test]
    fn quantiles_bounded_and_monotone() {
        let mut h = Histogram::new();
        for i in 1..=1000 {
            h.observe(i as f64 * 1e-4); // 0.1ms .. 100ms
        }
        let p50 = h.quantile(0.50).unwrap();
        let p95 = h.quantile(0.95).unwrap();
        let p99 = h.quantile(0.99).unwrap();
        assert!(p50 <= p95 && p95 <= p99, "{p50} {p95} {p99}");
        assert!(p50 >= 1e-4 && p99 <= 0.1, "{p50} {p99}");
        // The median estimate lands within its bucket: for the default
        // power-of-four grid, 0.05 falls in the (0.016, 0.065] bucket.
        assert!((0.016..=0.066).contains(&p50), "{p50}");
    }

    #[test]
    fn quantile_exact_for_single_value() {
        let mut h = Histogram::new();
        for _ in 0..10 {
            h.observe(0.5);
        }
        // All mass in one bucket, min == max == 0.5: clamping makes the
        // estimate exact.
        assert_eq!(h.quantile(0.5), Some(0.5));
        assert_eq!(h.quantile(0.99), Some(0.5));
        let s = h.summary();
        assert_eq!(s.p50, 0.5);
        assert_eq!(s.mean(), 0.5);
    }

    #[test]
    fn summary_of_empty_histogram() {
        let h = Histogram::new();
        let s = h.summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.min, 0.0);
        assert_eq!(s.max, 0.0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn concurrent_updates_all_land() {
        let m = MetricsRegistry::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for i in 0..250 {
                        m.inc("hits");
                        m.observe("lat", i as f64 * 1e-5);
                    }
                });
            }
        });
        let snap = m.snapshot();
        assert_eq!(snap.counter("hits"), 1000);
        assert_eq!(snap.histogram("lat").unwrap().count, 1000);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_bounds_rejected() {
        let _ = Histogram::with_buckets(vec![2.0, 1.0]);
    }

    #[test]
    fn histograms_expose_raw_buckets() {
        let m = MetricsRegistry::new();
        m.observe("lat", 0.5);
        m.observe("lat", 2.0);
        m.inc("not_a_histogram");
        let hists = m.histograms();
        assert_eq!(hists.len(), 1);
        let h = &hists["lat"];
        assert_eq!(h.count(), 2);
        assert_eq!(h.bucket_counts().len(), h.bounds().len() + 1);
        assert_eq!(h.bucket_counts().iter().sum::<u64>(), 2);
    }

    #[test]
    fn scoped_registry_isolates_thread_writes() {
        // Writes through `global()` land in the scope, not the process
        // registry — and the process registry's state never leaks in.
        process_global().inc("scoped_test.outside");
        let before = process_global().snapshot().counter("scoped_test.inside");
        {
            let scope = scoped();
            global().inc("scoped_test.inside");
            global().inc("scoped_test.inside");
            assert_eq!(scope.snapshot().counter("scoped_test.inside"), 2);
            assert_eq!(scope.snapshot().counter("scoped_test.outside"), 0);
        }
        assert_eq!(
            process_global().snapshot().counter("scoped_test.inside"),
            before,
            "scoped writes never reach the process registry"
        );
    }

    #[test]
    fn scoped_registries_nest_innermost_wins() {
        let outer = scoped();
        global().inc("n");
        {
            let inner = scoped();
            global().inc("n");
            global().inc("n");
            assert_eq!(inner.snapshot().counter("n"), 2);
        }
        global().inc("n");
        assert_eq!(outer.snapshot().counter("n"), 2);
    }

    #[test]
    fn scoped_registry_is_thread_local() {
        let scope = scoped();
        std::thread::scope(|s| {
            s.spawn(|| {
                // Another thread sees no scope; its writes go to the
                // process registry.
                assert!(matches!(global(), RegistryHandle::Process(_)));
            });
        });
        assert_eq!(scope.snapshot().counter("anything"), 0);
    }

    #[test]
    fn reset_clears_everything() {
        let m = MetricsRegistry::new();
        m.inc("c");
        m.set_gauge("g", 1.0);
        m.observe("h", 0.1);
        m.reset();
        let snap = m.snapshot();
        assert!(snap.metrics.is_empty());
        assert_eq!(snap.counter("c"), 0);
        assert!(snap.histogram("h").is_none());
    }
}
