//! The live observability endpoint: Prometheus-style metric exposition and
//! a tiny dependency-free HTTP server over the process-global telemetry.
//!
//! Routes:
//!
//! - `GET /metrics` — the global registry in Prometheus text exposition
//!   format (version 0.0.4): counters, gauges, and histograms with
//!   cumulative `le` buckets plus `_sum`/`_count` series.
//! - `GET /healthz` — liveness plus perf health: the body's first line is
//!   `ok` (200) or `degraded` (503, when the last bench run recorded a
//!   regression), followed by `bench.results`, `bench.regressions` and
//!   `profile.phases` counters.
//! - `GET /spans?limit=N` — the most recent closed spans as a JSON array.
//! - `GET /logs?level=L&limit=N` — the log ring-buffer tail as JSON.
//! - `GET /profile` — the latest phase-profile snapshot (per-phase calls,
//!   total/self/child ns, allocation deltas) as JSON.
//!
//! The server is one background thread handling connections serially —
//! observability traffic is a human or a scraper, not the serving path —
//! and shuts down gracefully: [`ObservabilityServer::shutdown`] (or drop)
//! flips a flag and nudges the listener awake, so no request is ever
//! half-written.
//!
//! ```no_run
//! use matilda_telemetry::expose::ObservabilityServer;
//!
//! let server = ObservabilityServer::bind("127.0.0.1:0").unwrap();
//! println!("watch this run: curl http://{}/metrics", server.addr());
//! // ... run the workload ...
//! server.shutdown();
//! ```

use crate::metrics::{MetricValue, MetricsRegistry};
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Sanitize a metric name for Prometheus: `[a-zA-Z_:][a-zA-Z0-9_:]*`, so
/// the registry's dotted names (`pipeline.task_seconds`) become
/// underscore-joined (`pipeline_task_seconds`).
pub fn sanitize_metric_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit());
        if ok {
            out.push(c);
        } else if i == 0 && c.is_ascii_digit() {
            out.push('_');
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

// Escape a label value per the exposition format: backslash, quote, newline.
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

// Render an f64 the way Prometheus expects (`+Inf`/`-Inf`/`NaN` spelled out).
fn prom_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Render `registry` in Prometheus text exposition format.
///
/// Counters and gauges come from the snapshot; histograms are re-read in
/// full so the output carries real cumulative `le` buckets (the snapshot's
/// quantile summary cannot reconstruct them).
pub fn render_prometheus(registry: &MetricsRegistry) -> String {
    let snapshot = registry.snapshot();
    let histograms = registry.histograms();
    let mut out = String::with_capacity(4096);
    for (name, value) in &snapshot.metrics {
        let sane = sanitize_metric_name(name);
        match value {
            MetricValue::Counter(c) => {
                let _ = writeln!(out, "# TYPE {sane} counter");
                let _ = writeln!(out, "{sane} {c}");
            }
            MetricValue::Gauge(g) => {
                let _ = writeln!(out, "# TYPE {sane} gauge");
                let _ = writeln!(out, "{sane} {}", prom_f64(*g));
            }
            MetricValue::Histogram(_) => {
                let Some(hist) = histograms.get(name) else {
                    continue;
                };
                let _ = writeln!(out, "# TYPE {sane} histogram");
                let mut cumulative = 0u64;
                for (bound, count) in hist.bounds().iter().zip(hist.bucket_counts()) {
                    cumulative += count;
                    let _ = writeln!(
                        out,
                        "{sane}_bucket{{le=\"{}\"}} {cumulative}",
                        escape_label(&prom_f64(*bound))
                    );
                }
                let _ = writeln!(out, "{sane}_bucket{{le=\"+Inf\"}} {}", hist.count());
                let _ = writeln!(out, "{sane}_sum {}", prom_f64(hist.sum()));
                let _ = writeln!(out, "{sane}_count {}", hist.count());
            }
        }
    }
    out
}

// One parsed query parameter list: tiny, permissive, allocation-light.
fn query_param<'a>(query: &'a str, key: &str) -> Option<&'a str> {
    query
        .split('&')
        .filter_map(|pair| pair.split_once('='))
        .find(|(k, _)| *k == key)
        .map(|(_, v)| v)
}

const DEFAULT_TAIL: usize = 256;

// `?trace=` accepts the decimal trace id (what `/spans` JSON carries) or
// the 16-hex-digit rendering (what capsule ids embed).
fn parse_trace(value: &str) -> Option<u64> {
    value
        .parse()
        .ok()
        .or_else(|| u64::from_str_radix(value, 16).ok())
}

fn spans_body(query: &str) -> String {
    let limit = query_param(query, "limit")
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_TAIL);
    let trace = query_param(query, "trace").and_then(parse_trace);
    let mut spans = crate::span::global().snapshot();
    if let Some(t) = trace {
        spans.retain(|s| s.trace_id == Some(t));
    }
    if spans.len() > limit {
        spans.drain(..spans.len() - limit);
    }
    let mut out = String::from("[");
    for (i, span) in spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&crate::export::span_to_json(span));
    }
    out.push(']');
    out
}

fn logs_body(query: &str) -> String {
    let limit = query_param(query, "limit")
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_TAIL);
    let level = query_param(query, "level").and_then(crate::log::Level::parse);
    let trace = query_param(query, "trace").and_then(parse_trace);
    // Filter before limiting, so a trace query returns its most recent
    // events rather than whatever survives a global tail.
    let mut events = crate::log::global().tail(usize::MAX, level);
    if let Some(t) = trace {
        events.retain(|e| e.trace_id == Some(t));
    }
    if events.len() > limit {
        events.drain(..events.len() - limit);
    }
    let mut out = String::from("[");
    for (i, event) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&crate::export::log_event_to_json(event));
    }
    out.push(']');
    out
}

/// The `/healthz` status line and body for `registry`'s current state.
///
/// The first body line is `ok` or `degraded` — degraded (with a 503) when
/// the last bench run in this process recorded at least one regression, or
/// when the flight-recorder journal has lost events to write errors —
/// followed by the perf- and durability-observability counters, one
/// `key=value` per line.
pub fn healthz_body(registry: &MetricsRegistry) -> (&'static str, String) {
    let snapshot = registry.snapshot();
    let results = snapshot
        .gauge(crate::metrics::names::BENCH_RESULTS)
        .unwrap_or(0.0);
    let regressions = snapshot
        .gauge(crate::metrics::names::BENCH_REGRESSIONS)
        .unwrap_or(0.0);
    let phases = crate::profile::global().len();
    let journal_records = snapshot.counter(crate::metrics::names::JOURNAL_RECORDS);
    let journal_errors = snapshot.counter(crate::metrics::names::JOURNAL_WRITE_ERRORS);
    let journal_torn = snapshot.counter(crate::metrics::names::JOURNAL_TORN_LINES);
    let store_errors = snapshot.counter(crate::metrics::names::STORE_WRITE_ERRORS);
    let store_skipped = snapshot.counter(crate::metrics::names::STORE_WRITES_SKIPPED);
    let store_quarantined = snapshot.counter(crate::metrics::names::STORE_SESSIONS_QUARANTINED);
    let incidents = snapshot.counter(crate::metrics::names::INCIDENTS_CAPTURED);
    let load_level = snapshot
        .gauge(crate::metrics::names::DAEMON_LOAD_LEVEL)
        .unwrap_or(0.0);
    // Store write errors and breaker-gated no-op persistence both mean the
    // durability promise is currently broken for live sessions — degraded.
    // Torn lines and quarantined sessions are recovery-time observations of
    // a past crash, reported but not degrading the live process. A critical
    // overload level (gauge >= 3) is live too: the daemon is shedding
    // sessions, so load balancers should stop sending it new ones.
    let healthy = regressions <= 0.0
        && journal_errors == 0
        && store_errors == 0
        && store_skipped == 0
        && load_level < 3.0;
    let status = if healthy {
        "200 OK"
    } else {
        "503 Service Unavailable"
    };
    let verdict = if healthy { "ok" } else { "degraded" };
    let body = format!(
        "{verdict}\nbench.results={results}\nbench.regressions={regressions}\nprofile.phases={phases}\njournal.records={journal_records}\njournal.write_errors={journal_errors}\njournal.torn_lines={journal_torn}\nstore.write_errors={store_errors}\nstore.writes_skipped={store_skipped}\nstore.sessions_quarantined={store_quarantined}\nincidents.captured={incidents}\ndaemon.load_level={load_level}\n"
    );
    (status, body)
}

// ---------------------------------------------------------------------------
// /sessions: the durable session store, exposed
// ---------------------------------------------------------------------------

type SessionsProvider = Box<dyn Fn() -> String + Send + Sync>;

fn sessions_provider_slot() -> &'static std::sync::Mutex<Option<SessionsProvider>> {
    static SLOT: std::sync::OnceLock<std::sync::Mutex<Option<SessionsProvider>>> =
        std::sync::OnceLock::new();
    SLOT.get_or_init(|| std::sync::Mutex::new(None))
}

/// Register the callback behind `GET /sessions`. The session store lives in
/// a higher layer (`matilda-core`), so it plugs its scanner in here rather
/// than the telemetry crate depending upward; the callback must return a
/// complete JSON value.
pub fn register_sessions_provider(provider: impl Fn() -> String + Send + Sync + 'static) {
    *sessions_provider_slot().lock().unwrap() = Some(Box::new(provider));
}

/// Drop any registered `/sessions` provider (tests; store shutdown).
pub fn clear_sessions_provider() {
    *sessions_provider_slot().lock().unwrap() = None;
}

/// The `/sessions` body: the registered provider's JSON, or an empty
/// listing when no session store has plugged in.
pub fn sessions_body() -> String {
    match &*sessions_provider_slot().lock().unwrap() {
        Some(provider) => provider(),
        None => "{\"sessions\":[]}".to_string(),
    }
}

// ---------------------------------------------------------------------------
// /drain: graceful shutdown of a resident daemon, exposed
// ---------------------------------------------------------------------------

type DrainProvider = Box<dyn Fn() -> String + Send + Sync>;

fn drain_provider_slot() -> &'static std::sync::Mutex<Option<DrainProvider>> {
    static SLOT: std::sync::OnceLock<std::sync::Mutex<Option<DrainProvider>>> =
        std::sync::OnceLock::new();
    SLOT.get_or_init(|| std::sync::Mutex::new(None))
}

/// Register the callback behind `GET /drain`. The daemon lives in a higher
/// layer (`matilda-daemon`), so it plugs its drain trigger in here rather
/// than the telemetry crate depending upward; the callback must block until
/// the drain settles and return a complete JSON value describing it.
pub fn register_drain_provider(provider: impl Fn() -> String + Send + Sync + 'static) {
    *drain_provider_slot().lock().unwrap() = Some(Box::new(provider));
}

/// Drop any registered `/drain` provider (tests; daemon shutdown).
pub fn clear_drain_provider() {
    *drain_provider_slot().lock().unwrap() = None;
}

/// The `/drain` body plus whether a daemon is plugged in: the provider's
/// JSON, or a typed refusal when nothing resident is listening.
pub fn drain_body() -> (bool, String) {
    match &*drain_provider_slot().lock().unwrap() {
        Some(provider) => (true, provider()),
        None => (
            false,
            "{\"ok\":false,\"error\":\"no resident daemon registered\"}".to_string(),
        ),
    }
}

fn respond(stream: &mut TcpStream, status: &str, content_type: &str, body: &str) {
    let head = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    // A scraper hanging up mid-response is its problem, not ours.
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

/// How long a client may stall a read or write before the serial server
/// gives up on it. One hung scraper must not wedge the endpoint forever.
pub const DEFAULT_CLIENT_TIMEOUT: Duration = Duration::from_secs(5);

fn handle_connection(mut stream: TcpStream, client_timeout: Duration) {
    // Both directions are bounded: a client that connects and never sends
    // a request times out on read; one that stops draining the response
    // times out on write. Either way the server moves on to the next
    // connection.
    stream.set_read_timeout(Some(client_timeout)).ok();
    stream.set_write_timeout(Some(client_timeout)).ok();
    let mut request_line = String::new();
    if BufReader::new(&stream)
        .read_line(&mut request_line)
        .is_err()
    {
        return;
    }
    // `GET /path?query HTTP/1.1` — everything else is a 400.
    let mut parts = request_line.split_whitespace();
    let (method, target) = match (parts.next(), parts.next()) {
        (Some(m), Some(t)) => (m, t),
        _ => {
            respond(
                &mut stream,
                "400 Bad Request",
                "text/plain",
                "bad request\n",
            );
            return;
        }
    };
    if method != "GET" {
        respond(
            &mut stream,
            "405 Method Not Allowed",
            "text/plain",
            "only GET is supported\n",
        );
        return;
    }
    let (path, query) = target.split_once('?').unwrap_or((target, ""));
    match path {
        "/metrics" => {
            let body = render_prometheus(crate::metrics::process_global());
            respond(
                &mut stream,
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                &body,
            );
        }
        "/healthz" => {
            let (status, body) = healthz_body(crate::metrics::process_global());
            respond(&mut stream, status, "text/plain", &body);
        }
        "/spans" => respond(
            &mut stream,
            "200 OK",
            "application/json",
            &spans_body(query),
        ),
        "/logs" => respond(&mut stream, "200 OK", "application/json", &logs_body(query)),
        "/profile" => respond(
            &mut stream,
            "200 OK",
            "application/json",
            &crate::profile::global().to_json(),
        ),
        "/sessions" => respond(&mut stream, "200 OK", "application/json", &sessions_body()),
        "/drain" => {
            let (registered, body) = drain_body();
            let status = if registered {
                "200 OK"
            } else {
                "503 Service Unavailable"
            };
            respond(&mut stream, status, "application/json", &body);
        }
        "/incidents" => respond(
            &mut stream,
            "200 OK",
            "application/json",
            &crate::incident::list_json(),
        ),
        p if p.starts_with("/incidents/") => {
            let id = &p["/incidents/".len()..];
            match crate::incident::get(id) {
                Some(capsule) => respond(&mut stream, "200 OK", "application/json", &capsule),
                None => respond(
                    &mut stream,
                    "404 Not Found",
                    "text/plain",
                    "no such incident capsule\n",
                ),
            }
        }
        _ => respond(
            &mut stream,
            "404 Not Found",
            "text/plain",
            "unknown path; try /metrics /healthz /spans /logs /profile /incidents /sessions /drain\n",
        ),
    }
}

/// A running observability endpoint; serves until shut down or dropped.
#[derive(Debug)]
pub struct ObservabilityServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl ObservabilityServer {
    /// Bind `addr` (e.g. `"127.0.0.1:9464"`, or port `0` for an ephemeral
    /// port) and start serving on a background thread. Client sockets get
    /// [`DEFAULT_CLIENT_TIMEOUT`] in both directions.
    pub fn bind(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        Self::bind_with_client_timeout(addr, DEFAULT_CLIENT_TIMEOUT)
    }

    /// Like [`ObservabilityServer::bind`], but with an explicit per-client
    /// read/write timeout. The server handles connections serially, so this
    /// bounds how long one misbehaving client can stall everyone else.
    pub fn bind_with_client_timeout(
        addr: impl ToSocketAddrs,
        client_timeout: Duration,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = stop.clone();
        let handle = std::thread::Builder::new()
            .name("matilda-observe".into())
            .spawn(move || {
                for stream in listener.incoming() {
                    if stop_flag.load(Ordering::Acquire) {
                        break;
                    }
                    match stream {
                        Ok(stream) => handle_connection(stream, client_timeout),
                        Err(_) => continue,
                    }
                }
            })?;
        crate::log::info("telemetry.expose", "observability endpoint up")
            .field("addr", addr.to_string())
            .emit();
        Ok(Self {
            addr,
            stop,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting connections and join the serving thread. Any request
    /// already being handled finishes first.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        let Some(handle) = self.handle.take() else {
            return;
        };
        self.stop.store(true, Ordering::Release);
        // Nudge the blocking accept() awake; if the connect fails the
        // listener is already gone, which is the outcome we want.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_secs(1));
        let _ = handle.join();
        // Graceful shutdown of the observability plane also settles the
        // flight recorder, so a scrape-then-stop run loses no tail events.
        crate::journal::flush_global();
    }
}

impl Drop for ObservabilityServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;
    use std::io::Read;

    #[test]
    fn metric_names_sanitized() {
        assert_eq!(
            sanitize_metric_name("pipeline.task_seconds"),
            "pipeline_task_seconds"
        );
        assert_eq!(
            sanitize_metric_name("search.candidates.no-blank"),
            "search_candidates_no_blank"
        );
        assert_eq!(sanitize_metric_name("9lives"), "_9lives");
        assert_eq!(sanitize_metric_name(""), "_");
    }

    #[test]
    fn label_values_escaped() {
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn golden_prometheus_exposition() {
        // A registry with one of each kind and a tiny two-bucket histogram:
        // the full output is pinned so escaping, `le` accumulation and the
        // `_sum`/`_count` tail never silently drift.
        let m = MetricsRegistry::new();
        m.add("session.turns", 3);
        m.set_gauge("search.lambda", 0.25);
        for v in [0.1, 0.4, 1.0, 5.0] {
            m.observe_with_buckets("task.seconds", v, || vec![0.5, 2.0]);
        }
        let text = render_prometheus(&m);
        let expected = "\
# TYPE search_lambda gauge
search_lambda 0.25
# TYPE session_turns counter
session_turns 3
# TYPE task_seconds histogram
task_seconds_bucket{le=\"0.5\"} 2
task_seconds_bucket{le=\"2\"} 3
task_seconds_bucket{le=\"+Inf\"} 4
task_seconds_sum 6.5
task_seconds_count 4
";
        assert_eq!(text, expected);
    }

    #[test]
    fn prometheus_includes_default_bucket_grid() {
        let m = MetricsRegistry::new();
        m.observe("lat", 1e-5);
        let text = render_prometheus(&m);
        assert!(text.contains("lat_bucket{le=\"0.000001\"} 0"), "{text}");
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 1"), "{text}");
        assert!(text.contains("lat_count 1"), "{text}");
    }

    #[test]
    fn non_finite_gauge_spelled_for_prometheus() {
        let m = MetricsRegistry::new();
        m.set_gauge("bad", f64::INFINITY);
        assert!(render_prometheus(&m).contains("bad +Inf\n"));
    }

    fn http_get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream
            .write_all(format!("GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").as_bytes())
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        let (head, body) = response.split_once("\r\n\r\n").unwrap();
        let status = head.lines().next().unwrap().to_string();
        (status, body.to_string())
    }

    #[test]
    fn endpoint_round_trips_metrics_and_healthz() {
        // Populate the process-global registry so /metrics is non-empty.
        crate::metrics::process_global().inc("expose_test.hits");
        crate::metrics::process_global().set_gauge("expose_test.level", 1.5);
        crate::metrics::process_global().observe("expose_test.seconds", 0.01);
        crate::span::global().span("expose_test.span").close();
        crate::log::info("expose_test", "endpoint test event").emit();

        let server = ObservabilityServer::bind("127.0.0.1:0").unwrap();
        let addr = server.addr();

        let (status, body) = http_get(addr, "/healthz");
        assert!(status.contains("200"), "{status}");
        assert!(body.starts_with("ok\n"), "{body}");
        assert!(body.contains("bench.results="), "{body}");
        assert!(body.contains("bench.regressions="), "{body}");
        assert!(body.contains("profile.phases="), "{body}");

        let (status, body) = http_get(addr, "/metrics");
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("# TYPE expose_test_hits counter"), "{body}");
        assert!(body.contains("expose_test_hits 1"), "{body}");
        assert!(body.contains("# TYPE expose_test_level gauge"), "{body}");
        assert!(
            body.contains("expose_test_seconds_bucket{le=\"+Inf\"}"),
            "{body}"
        );
        assert!(body.contains("expose_test_seconds_count"), "{body}");

        let (status, body) = http_get(addr, "/spans?limit=10000");
        assert!(status.contains("200"), "{status}");
        assert!(body.starts_with('[') && body.ends_with(']'), "{body}");
        assert!(body.contains("\"expose_test.span\""), "{body}");

        let (status, body) = http_get(addr, "/logs?level=info&limit=10000");
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("endpoint test event"), "{body}");

        crate::profile::phase("expose_test.phase").close();
        let (status, body) = http_get(addr, "/profile");
        assert!(status.contains("200"), "{status}");
        assert!(body.starts_with("{\"alloc_profiling\":"), "{body}");
        assert!(body.contains("\"name\":\"expose_test.phase\""), "{body}");

        let (status, body) = http_get(addr, "/nope");
        assert!(status.contains("404"), "{status}");
        assert!(body.contains("/profile"), "{body}");

        server.shutdown();
        // The port is released: a fresh bind on the same port succeeds.
        let rebound = TcpListener::bind(addr);
        assert!(rebound.is_ok(), "port still held after shutdown");
    }

    #[test]
    fn hung_client_times_out_and_serving_continues() {
        // A client that connects and never sends a byte must not wedge the
        // serial server: after the read timeout it is dropped and the next
        // request is served normally.
        let server =
            ObservabilityServer::bind_with_client_timeout("127.0.0.1:0", Duration::from_millis(50))
                .unwrap();
        let addr = server.addr();

        let hung = TcpStream::connect(addr).unwrap();
        // Also park a half-request: a request line with no newline keeps the
        // server's read_line pending until the timeout fires.
        let mut partial = TcpStream::connect(addr).unwrap();
        partial.write_all(b"GET /metr").unwrap();

        let start = std::time::Instant::now();
        let (status, body) = http_get(addr, "/healthz");
        assert!(status.contains("200"), "{status}");
        assert!(body.starts_with("ok\n"), "{body}");
        assert!(
            start.elapsed() < Duration::from_secs(3),
            "hung clients stalled the server for {:?}",
            start.elapsed()
        );

        drop(hung);
        drop(partial);
        server.shutdown();
    }

    #[test]
    fn healthz_reports_degraded_on_bench_regression() {
        // Exercised against a local registry so parallel tests sharing the
        // process-global one never see a transient 503.
        let m = MetricsRegistry::new();
        let (status, body) = healthz_body(&m);
        assert_eq!(status, "200 OK");
        assert!(body.starts_with("ok\n"), "{body}");

        m.set_gauge(crate::metrics::names::BENCH_RESULTS, 6.0);
        m.set_gauge(crate::metrics::names::BENCH_REGRESSIONS, 2.0);
        let (status, body) = healthz_body(&m);
        assert_eq!(status, "503 Service Unavailable");
        assert!(body.starts_with("degraded\n"), "{body}");
        assert!(body.contains("bench.results=6"), "{body}");
        assert!(body.contains("bench.regressions=2"), "{body}");

        m.set_gauge(crate::metrics::names::BENCH_REGRESSIONS, 0.0);
        let (status, body) = healthz_body(&m);
        assert_eq!(status, "200 OK");
        assert!(body.starts_with("ok\n"), "{body}");
    }

    #[test]
    fn hung_client_does_not_stall_profile_route() {
        // Mirror of the /healthz hung-client test for the new route: a
        // stalled connection times out and /profile still serves.
        let server =
            ObservabilityServer::bind_with_client_timeout("127.0.0.1:0", Duration::from_millis(50))
                .unwrap();
        let addr = server.addr();

        let hung = TcpStream::connect(addr).unwrap();
        let mut partial = TcpStream::connect(addr).unwrap();
        partial.write_all(b"GET /prof").unwrap();

        crate::profile::phase("expose_test.hung_profile").close();
        let start = std::time::Instant::now();
        let (status, body) = http_get(addr, "/profile");
        assert!(status.contains("200"), "{status}");
        assert!(
            body.contains("\"name\":\"expose_test.hung_profile\""),
            "{body}"
        );
        assert!(
            start.elapsed() < Duration::from_secs(3),
            "hung clients stalled /profile for {:?}",
            start.elapsed()
        );

        drop(hung);
        drop(partial);
        server.shutdown();
    }

    #[test]
    fn spans_and_logs_filter_by_trace() {
        // Two traces' worth of activity on the global surfaces; `?trace=`
        // must return exactly the asked-for trace, in both decimal and the
        // capsule-id hex spelling.
        let trace_a = crate::trace::next_trace_id();
        let trace_b = crate::trace::next_trace_id();
        {
            let _t = crate::trace::enter(trace_a);
            crate::span::global().span("expose_test.trace_a").close();
            crate::log::info("expose_test.trace", "event on trace a").emit();
        }
        {
            let _t = crate::trace::enter(trace_b);
            crate::span::global().span("expose_test.trace_b").close();
            crate::log::info("expose_test.trace", "event on trace b").emit();
        }

        let body = spans_body(&format!("trace={trace_a}&limit=100000"));
        assert!(body.contains("expose_test.trace_a"), "{body}");
        assert!(!body.contains("expose_test.trace_b"), "{body}");

        let hex = crate::trace::format_trace_id(trace_b);
        let body = spans_body(&format!("trace={hex}&limit=100000"));
        assert!(body.contains("expose_test.trace_b"), "{body}");
        assert!(!body.contains("expose_test.trace_a"), "{body}");

        let body = logs_body(&format!("trace={trace_a}&limit=100000"));
        assert!(body.contains("event on trace a"), "{body}");
        assert!(!body.contains("event on trace b"), "{body}");

        // Filter-then-limit: a limit of 1 still finds the trace's event.
        let body = logs_body(&format!("trace={trace_a}&limit=1"));
        assert!(body.contains("event on trace a"), "{body}");
    }

    #[test]
    fn hung_client_does_not_stall_incidents_route() {
        // The flight recorder's routes get the same hung-client guarantee
        // as the rest of the plane: a stalled connection times out and
        // /incidents (listing + capsule fetch) still serve.
        let server =
            ObservabilityServer::bind_with_client_timeout("127.0.0.1:0", Duration::from_millis(50))
                .unwrap();
        let addr = server.addr();

        let hung = TcpStream::connect(addr).unwrap();
        let mut partial = TcpStream::connect(addr).unwrap();
        partial.write_all(b"GET /incid").unwrap();

        let start = std::time::Instant::now();
        let (status, body) = http_get(addr, "/incidents");
        assert!(status.contains("200"), "{status}");
        assert!(body.starts_with('[') && body.ends_with(']'), "{body}");

        let (status, body) = http_get(addr, "/incidents/not-a-real-capsule");
        assert!(status.contains("404"), "{status}");
        assert!(body.contains("no such incident"), "{body}");
        assert!(
            start.elapsed() < Duration::from_secs(3),
            "hung clients stalled /incidents for {:?}",
            start.elapsed()
        );

        drop(hung);
        drop(partial);
        server.shutdown();
    }

    #[test]
    fn healthz_reports_degraded_on_journal_write_errors() {
        // Local registry, same isolation story as the bench-regression
        // test: journal losses must flip the endpoint to 503.
        let m = MetricsRegistry::new();
        let (status, body) = healthz_body(&m);
        assert_eq!(status, "200 OK");
        assert!(body.contains("journal.records=0"), "{body}");
        assert!(body.contains("incidents.captured=0"), "{body}");

        m.add(crate::metrics::names::JOURNAL_WRITE_ERRORS, 3);
        let (status, body) = healthz_body(&m);
        assert_eq!(status, "503 Service Unavailable");
        assert!(body.starts_with("degraded\n"), "{body}");
        assert!(body.contains("journal.write_errors=3"), "{body}");
    }

    #[test]
    fn healthz_reports_degraded_on_store_write_errors() {
        // Session-store durability losses flip the endpoint: failed writes
        // and breaker-gated skips both mean sessions are not being saved.
        let m = MetricsRegistry::new();
        let (status, body) = healthz_body(&m);
        assert_eq!(status, "200 OK");
        assert!(body.contains("store.write_errors=0"), "{body}");
        assert!(body.contains("store.writes_skipped=0"), "{body}");
        assert!(body.contains("journal.torn_lines=0"), "{body}");

        m.add(crate::metrics::names::STORE_WRITE_ERRORS, 2);
        let (status, body) = healthz_body(&m);
        assert_eq!(status, "503 Service Unavailable");
        assert!(body.contains("store.write_errors=2"), "{body}");

        let m = MetricsRegistry::new();
        m.add(crate::metrics::names::STORE_WRITES_SKIPPED, 5);
        let (status, body) = healthz_body(&m);
        assert_eq!(status, "503 Service Unavailable");
        assert!(body.contains("store.writes_skipped=5"), "{body}");

        // Torn lines and quarantined sessions are recovery-time
        // observations: reported, but the live process is still healthy.
        let m = MetricsRegistry::new();
        m.add(crate::metrics::names::JOURNAL_TORN_LINES, 3);
        m.add(crate::metrics::names::STORE_SESSIONS_QUARANTINED, 1);
        let (status, body) = healthz_body(&m);
        assert_eq!(status, "200 OK");
        assert!(body.contains("journal.torn_lines=3"), "{body}");
        assert!(body.contains("store.sessions_quarantined=1"), "{body}");
    }

    #[test]
    fn healthz_reports_degraded_only_at_critical_load() {
        // Brownout levels below critical are the daemon coping — still
        // healthy. Critical means it is shedding sessions: load balancers
        // must stop routing to it, hence the 503.
        let m = MetricsRegistry::new();
        for coping in [0.0, 1.0, 2.0] {
            m.set_gauge(crate::metrics::names::DAEMON_LOAD_LEVEL, coping);
            let (status, body) = healthz_body(&m);
            assert_eq!(status, "200 OK", "level {coping} should stay healthy");
            assert!(
                body.contains(&format!("daemon.load_level={coping}")),
                "{body}"
            );
        }
        m.set_gauge(crate::metrics::names::DAEMON_LOAD_LEVEL, 3.0);
        let (status, body) = healthz_body(&m);
        assert_eq!(status, "503 Service Unavailable");
        assert!(body.starts_with("degraded\n"), "{body}");
        m.set_gauge(crate::metrics::names::DAEMON_LOAD_LEVEL, 0.0);
        let (status, _) = healthz_body(&m);
        assert_eq!(status, "200 OK");
    }

    #[test]
    fn sessions_route_serves_registered_provider() {
        // Without a provider: an empty listing, never a 404.
        clear_sessions_provider();
        assert_eq!(sessions_body(), "{\"sessions\":[]}");
        register_sessions_provider(|| {
            "{\"sessions\":[{\"id\":\"s1\",\"class\":\"in_flight\"}]}".to_string()
        });
        let server = ObservabilityServer::bind("127.0.0.1:0").unwrap();
        let (status, body) = http_get(server.addr(), "/sessions");
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("\"id\":\"s1\""), "{body}");
        let (_, body) = http_get(server.addr(), "/nope");
        assert!(body.contains("/sessions"), "{body}");
        server.shutdown();
        clear_sessions_provider();
    }

    #[test]
    fn drain_route_serves_registered_provider() {
        // Without a daemon plugged in: a typed 503 refusal, never a 404.
        clear_drain_provider();
        let server = ObservabilityServer::bind("127.0.0.1:0").unwrap();
        let (status, body) = http_get(server.addr(), "/drain");
        assert!(status.contains("503"), "{status}");
        assert!(body.contains("no resident daemon"), "{body}");
        register_drain_provider(|| "{\"ok\":true,\"suspended\":4}".to_string());
        let (status, body) = http_get(server.addr(), "/drain");
        assert!(status.contains("200"), "{status}");
        assert!(body.contains("\"suspended\":4"), "{body}");
        let (_, body) = http_get(server.addr(), "/nope");
        assert!(body.contains("/drain"), "{body}");
        server.shutdown();
        clear_drain_provider();
    }

    #[test]
    fn non_get_rejected() {
        let server = ObservabilityServer::bind("127.0.0.1:0").unwrap();
        let mut stream = TcpStream::connect(server.addr()).unwrap();
        stream
            .write_all(b"POST /metrics HTTP/1.1\r\nHost: t\r\n\r\n")
            .unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.contains("405"), "{response}");
        server.shutdown();
    }
}
