//! RAII span-based hierarchical tracing.
//!
//! A [`SpanGuard`] measures the wall time between its creation and drop and
//! records itself into a [`Collector`]. A thread-local stack links spans
//! opened on the same thread into a parent/child hierarchy, so nested calls
//! produce a proper trace tree without any plumbing through signatures.
//!
//! ```
//! use matilda_telemetry::span::Collector;
//!
//! let collector = Collector::new();
//! {
//!     let mut outer = collector.span("request");
//!     outer.field("user", "ada");
//!     let _inner = collector.span("parse");
//! } // spans record on drop, inner first (LIFO)
//! let spans = collector.snapshot();
//! assert_eq!(spans.len(), 2);
//! assert_eq!(spans[0].name, "parse");
//! assert_eq!(spans[0].parent, Some(spans[1].id));
//! ```

use parking_lot::Mutex;
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Identifier of one span, unique within a process run.
pub type SpanId = u64;

/// A typed key/value annotation attached to a span.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// Signed integer payload.
    I64(i64),
    /// Unsigned integer payload (counts, fingerprints).
    U64(u64),
    /// Floating payload (scores, ratios).
    F64(f64),
    /// Text payload.
    Str(String),
    /// Boolean payload.
    Bool(bool),
}

macro_rules! impl_field_from {
    ($($t:ty => $variant:ident as $conv:ty),*) => {$(
        impl From<$t> for FieldValue {
            fn from(v: $t) -> Self {
                FieldValue::$variant(v as $conv)
            }
        }
    )*};
}
impl_field_from!(
    i32 => I64 as i64,
    i64 => I64 as i64,
    u32 => U64 as u64,
    u64 => U64 as u64,
    usize => U64 as u64,
    f64 => F64 as f64
);

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// One closed span, as stored by a [`Collector`].
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct SpanRecord {
    /// Unique id of this span.
    pub id: SpanId,
    /// Id of the span that was open on the same thread when this one
    /// started, if any.
    pub parent: Option<SpanId>,
    /// The trace (session) entered on the opening thread, if any — see
    /// [`crate::trace`].
    pub trace_id: Option<u64>,
    /// Span name, conventionally `component.operation`.
    pub name: String,
    /// Start offset from the collector's epoch, in nanoseconds.
    pub start_ns: u64,
    /// Wall time between open and close, in nanoseconds.
    pub duration_ns: u64,
    /// Key/value annotations recorded while the span was open.
    pub fields: Vec<(String, FieldValue)>,
}

impl SpanRecord {
    /// Wall time as a [`Duration`].
    pub fn duration(&self) -> Duration {
        Duration::from_nanos(self.duration_ns)
    }

    /// The value recorded under `key`, if any.
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

// Ids must be unique across collectors: provenance events store bare span
// ids, so two collectors handing out the same id would corrupt the linkage.
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    // The stack of spans currently open on this thread (any collector).
    static SPAN_STACK: RefCell<Vec<SpanId>> = const { RefCell::new(Vec::new()) };
}

/// The id of the innermost span currently open on this thread.
///
/// This is the hook other subsystems use to tag their artefacts with trace
/// context — e.g. every provenance event records the active span id.
pub fn current_span_id() -> Option<SpanId> {
    SPAN_STACK.with(|s| s.borrow().last().copied())
}

const SHARDS: usize = 8;

/// How a [`Collector`] decides which spans to record.
///
/// Sampling trades trace completeness for overhead: an unsampled span costs
/// one atomic increment and is never pushed onto the span stack, so its
/// children re-parent onto the nearest sampled ancestor (or surface as
/// roots). Every span dropped by sampling or a full collector increments the
/// `telemetry.spans_dropped` counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanSampling {
    /// Record every span (the default).
    Always,
    /// Record no spans.
    Never,
    /// Record one span out of every `n` opened (`OneIn(1)` ≡ `Always`).
    OneIn(u64),
}

/// A sink for closed spans.
///
/// Cloning is cheap and yields a handle on the same buffer, so worker
/// threads can record into their session's collector. Storage is sharded by
/// thread to keep contention off the hot path, and bounded: when a shard
/// reaches its capacity further spans are dropped (and counted) rather than
/// growing without limit.
#[derive(Debug, Clone)]
pub struct Collector {
    inner: Arc<CollectorInner>,
}

/// Default per-shard span capacity: 8 shards × 2^17 ≈ 1M retained spans.
pub const DEFAULT_SHARD_CAPACITY: usize = 1 << 17;

#[derive(Debug)]
struct CollectorInner {
    epoch: Instant,
    shards: [Mutex<Vec<SpanRecord>>; SHARDS],
    shard_capacity: usize,
    // Sampling mode: 0 = always, u64::MAX = never, n = one-in-n.
    sampling: AtomicU64,
    sample_clock: AtomicU64,
    dropped: AtomicU64,
}

impl Default for Collector {
    fn default() -> Self {
        Self::new()
    }
}

impl Collector {
    /// A new, empty collector whose epoch is "now".
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_SHARD_CAPACITY)
    }

    /// A collector retaining at most `shard_capacity` spans per shard.
    pub fn with_capacity(shard_capacity: usize) -> Self {
        Self {
            inner: Arc::new(CollectorInner {
                epoch: Instant::now(),
                shards: std::array::from_fn(|_| Mutex::new(Vec::new())),
                shard_capacity: shard_capacity.max(1),
                sampling: AtomicU64::new(0),
                sample_clock: AtomicU64::new(0),
                dropped: AtomicU64::new(0),
            }),
        }
    }

    /// Set this collector's sampling policy (applies to spans opened after
    /// the call).
    pub fn set_sampling(&self, sampling: SpanSampling) {
        let encoded = match sampling {
            SpanSampling::Always => 0,
            SpanSampling::Never => u64::MAX,
            SpanSampling::OneIn(n) => n.clamp(1, u64::MAX - 1),
        };
        self.inner.sampling.store(encoded, Ordering::Relaxed);
    }

    /// The current sampling policy.
    pub fn sampling(&self) -> SpanSampling {
        match self.inner.sampling.load(Ordering::Relaxed) {
            0 | 1 => SpanSampling::Always,
            u64::MAX => SpanSampling::Never,
            n => SpanSampling::OneIn(n),
        }
    }

    /// Spans dropped by sampling or a full shard.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    fn sample(&self) -> bool {
        match self.inner.sampling.load(Ordering::Relaxed) {
            0 | 1 => true,
            u64::MAX => false,
            n => self
                .inner
                .sample_clock
                .fetch_add(1, Ordering::Relaxed)
                .is_multiple_of(n),
        }
    }

    fn count_drop(&self) {
        self.inner.dropped.fetch_add(1, Ordering::Relaxed);
        crate::metrics::global().inc("telemetry.spans_dropped");
    }

    /// Open a span named `name`; it closes (and records) when dropped.
    pub fn span(&self, name: impl Into<String>) -> SpanGuard {
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        if !self.sample() {
            self.count_drop();
            return SpanGuard {
                collector: self.clone(),
                id,
                record: None,
                start: Instant::now(),
            };
        }
        let parent = current_span_id();
        SPAN_STACK.with(|s| s.borrow_mut().push(id));
        SpanGuard {
            collector: self.clone(),
            id,
            record: Some(SpanRecord {
                id,
                parent,
                trace_id: crate::trace::current_trace_id(),
                name: name.into(),
                start_ns: self.inner.epoch.elapsed().as_nanos() as u64,
                duration_ns: 0,
                fields: Vec::new(),
            }),
            start: Instant::now(),
        }
    }

    /// Number of spans recorded so far.
    pub fn len(&self) -> usize {
        self.inner.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// `true` when no span has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A copy of all recorded spans, ordered by close time (record order
    /// within a thread, interleaved across threads by shard).
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        let mut out: Vec<SpanRecord> = self
            .inner
            .shards
            .iter()
            .flat_map(|s| s.lock().iter().cloned().collect::<Vec<_>>())
            .collect();
        out.sort_by_key(|r| r.start_ns + r.duration_ns);
        out
    }

    /// Remove and return all recorded spans.
    pub fn drain(&self) -> Vec<SpanRecord> {
        let mut out: Vec<SpanRecord> = self
            .inner
            .shards
            .iter()
            .flat_map(|s| std::mem::take(&mut *s.lock()))
            .collect();
        out.sort_by_key(|r| r.start_ns + r.duration_ns);
        out
    }

    fn push(&self, record: SpanRecord) {
        // Stream to the flight recorder first — journaling is gated on the
        // global collector so local (test) collectors never pollute it, and
        // a dropped record (shard full) is still durably journaled.
        if crate::journal::enabled() && Arc::ptr_eq(&self.inner, &global().inner) {
            crate::journal::record_span(&record);
        }
        let shard = thread_index() % SHARDS;
        let mut shard = self.inner.shards[shard].lock();
        if shard.len() >= self.inner.shard_capacity {
            drop(shard);
            self.count_drop();
            return;
        }
        shard.push(record);
    }
}

// Stable small index per OS thread, for shard selection (shared with the
// log buffer so one thread maps to the same shard slot everywhere).
pub(crate) fn thread_index() -> usize {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    thread_local! {
        static INDEX: u64 = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    INDEX.with(|i| *i as usize)
}

/// The process-wide default collector, used by all instrumented hot paths.
pub fn global() -> &'static Collector {
    static GLOBAL: OnceLock<Collector> = OnceLock::new();
    GLOBAL.get_or_init(Collector::new)
}

/// Open a span on the [`global`] collector.
pub fn span(name: impl Into<String>) -> SpanGuard {
    global().span(name)
}

/// An open span; records itself into its collector on drop or [`close`].
///
/// A span dropped by sampling still hands out a valid id and accepts fields
/// (which go nowhere), so instrumented code never has to care whether it was
/// sampled.
///
/// [`close`]: SpanGuard::close
#[derive(Debug)]
pub struct SpanGuard {
    collector: Collector,
    id: SpanId,
    record: Option<SpanRecord>,
    start: Instant,
}

impl SpanGuard {
    /// This span's id (e.g. to hand to another thread as explicit parent).
    pub fn id(&self) -> SpanId {
        self.id
    }

    /// Attach a key/value annotation.
    pub fn field(&mut self, key: impl Into<String>, value: impl Into<FieldValue>) -> &mut Self {
        if let Some(record) = self.record.as_mut() {
            record.fields.push((key.into(), value.into()));
        }
        self
    }

    /// Wall time since the span opened.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Close the span now, returning its measured duration.
    ///
    /// Equivalent to dropping, but hands back the wall time so callers can
    /// reuse the span's own measurement (e.g. `PipelineReport::timings` is a
    /// view over task spans).
    pub fn close(mut self) -> Duration {
        self.finish()
    }

    fn finish(&mut self) -> Duration {
        let mut elapsed = self.start.elapsed();
        if let Some(mut record) = self.record.take() {
            // Measure the close on the collector's epoch clock — the same
            // timeline `start_ns` came from — so close order across spans
            // is exact: a parent closing after its child can never export
            // an earlier close timestamp through clock-read skew.
            let close_ns = self.collector.inner.epoch.elapsed().as_nanos() as u64;
            record.duration_ns = close_ns.saturating_sub(record.start_ns);
            elapsed = Duration::from_nanos(record.duration_ns);
            SPAN_STACK.with(|s| {
                let mut stack = s.borrow_mut();
                // Guards drop in LIFO order in straight-line code; a guard
                // moved across scopes can close out of order, so fall back
                // to removing it wherever it sits.
                if stack.last() == Some(&record.id) {
                    stack.pop();
                } else if let Some(pos) = stack.iter().rposition(|&id| id == record.id) {
                    stack.remove(pos);
                }
            });
            self.collector.push(record);
        }
        elapsed
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_on_drop_with_duration() {
        let c = Collector::new();
        {
            let _sp = c.span("work");
            std::thread::sleep(Duration::from_millis(2));
        }
        let spans = c.snapshot();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "work");
        assert!(spans[0].duration() >= Duration::from_millis(2));
        assert!(spans[0].parent.is_none());
    }

    #[test]
    fn nesting_links_parents() {
        let c = Collector::new();
        {
            let outer = c.span("outer");
            let outer_id = outer.id();
            {
                let inner = c.span("inner");
                assert_eq!(current_span_id(), Some(inner.id()));
            }
            assert_eq!(current_span_id(), Some(outer_id));
        }
        assert_eq!(current_span_id(), None);
        let spans = c.snapshot();
        let outer = spans.iter().find(|s| s.name == "outer").unwrap();
        let inner = spans.iter().find(|s| s.name == "inner").unwrap();
        assert_eq!(inner.parent, Some(outer.id));
        assert!(outer.duration_ns >= inner.duration_ns);
    }

    #[test]
    fn fields_round_trip() {
        let c = Collector::new();
        {
            let mut sp = c.span("annotated");
            sp.field("count", 3usize).field("label", "x");
            sp.field("score", 0.5).field("ok", true);
        }
        let spans = c.snapshot();
        assert_eq!(spans[0].field("count"), Some(&FieldValue::U64(3)));
        assert_eq!(spans[0].field("label"), Some(&FieldValue::Str("x".into())));
        assert_eq!(spans[0].field("score"), Some(&FieldValue::F64(0.5)));
        assert_eq!(spans[0].field("ok"), Some(&FieldValue::Bool(true)));
        assert_eq!(spans[0].field("absent"), None);
    }

    #[test]
    fn close_returns_duration_and_records_once() {
        let c = Collector::new();
        let sp = c.span("explicit");
        let d = sp.close();
        assert!(d > Duration::ZERO);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn ids_unique_across_collectors() {
        let a = Collector::new();
        let b = Collector::new();
        let ia = a.span("a").close();
        let ib = b.span("b").close();
        let _ = (ia, ib);
        let sa = a.snapshot();
        let sb = b.snapshot();
        assert_ne!(sa[0].id, sb[0].id);
    }

    #[test]
    fn cross_thread_spans_all_land() {
        let c = Collector::new();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let handle = c.clone();
                scope.spawn(move || {
                    for i in 0..25 {
                        let mut sp = handle.span(format!("t{t}"));
                        sp.field("i", i as u64);
                    }
                });
            }
        });
        assert_eq!(c.len(), 100);
    }

    #[test]
    fn drain_empties() {
        let c = Collector::new();
        c.span("one").close();
        assert_eq!(c.drain().len(), 1);
        assert!(c.is_empty());
    }

    #[test]
    fn spans_capture_current_trace() {
        let c = Collector::new();
        c.span("before").close();
        let trace_id = crate::trace::next_trace_id();
        {
            let _t = crate::trace::enter(trace_id);
            c.span("during").close();
        }
        let spans = c.snapshot();
        let before = spans.iter().find(|s| s.name == "before").unwrap();
        let during = spans.iter().find(|s| s.name == "during").unwrap();
        assert_eq!(before.trace_id, None);
        assert_eq!(during.trace_id, Some(trace_id));
    }

    #[test]
    fn sampling_never_drops_everything_but_guards_stay_usable() {
        let c = Collector::new();
        c.set_sampling(SpanSampling::Never);
        let mut sp = c.span("ghost");
        sp.field("k", 1u64); // must not panic
        assert!(sp.id() > 0);
        assert_eq!(current_span_id(), None, "unsampled spans skip the stack");
        drop(sp);
        assert!(c.is_empty());
        assert_eq!(c.dropped(), 1);
        assert_eq!(c.sampling(), SpanSampling::Never);
    }

    #[test]
    fn sampling_one_in_n_keeps_a_deterministic_share() {
        let c = Collector::new();
        c.set_sampling(SpanSampling::OneIn(4));
        for _ in 0..40 {
            c.span("s").close();
        }
        assert_eq!(c.len(), 10);
        assert_eq!(c.dropped(), 30);
        c.set_sampling(SpanSampling::Always);
        c.span("back").close();
        assert_eq!(c.len(), 11);
    }

    #[test]
    fn unsampled_parent_reparents_children_upward() {
        let c = Collector::new();
        let outer = c.span("outer");
        let outer_id = outer.id();
        c.set_sampling(SpanSampling::Never);
        let middle = c.span("middle");
        c.set_sampling(SpanSampling::Always);
        let inner = c.span("inner");
        drop(inner);
        drop(middle);
        drop(outer);
        let spans = c.snapshot();
        let inner = spans.iter().find(|s| s.name == "inner").unwrap();
        assert_eq!(
            inner.parent,
            Some(outer_id),
            "child of an unsampled span links to the nearest sampled ancestor"
        );
    }

    #[test]
    fn full_shard_drops_and_counts() {
        let c = Collector::with_capacity(2);
        for _ in 0..5 {
            c.span("s").close();
        }
        assert_eq!(c.len(), 2);
        assert_eq!(c.dropped(), 3);
    }
}
