//! Trace-correlated incident capsules: the flight recorder's black box.
//!
//! A capsule is a self-contained post-mortem snapshot taken at the moment a
//! failure trigger fires — a caught panic, a circuit breaker opening, a
//! deadline preemption, an SLO-violating turn, a pipeline task error. It
//! bundles everything an operator needs to answer *what happened and why*
//! without a live process: the trace id, the last-N spans and logs filtered
//! to that trace, the provenance tail, the metric counters that moved since
//! the previous capture, the active profile phases, and the chaos seed /
//! fault plan in effect.
//!
//! Capsules live in a bounded in-memory ring (served at `/incidents` and
//! `/incidents/<id>` by [`crate::expose`]) and, when an incident directory
//! is configured (`MATILDA_INCIDENT_DIR` or [`enable`]), are also written
//! to `<dir>/<id>.json` and summarised into the [`crate::journal`].
//!
//! Determinism contract: a capsule's `signature` is
//! `"<trigger>:<site>:<detail>"` — it deliberately excludes every
//! process-ephemeral quantity (span/trace ids, timestamps, metric values),
//! so seeded chaos runs produce the *same signature multiset* on every
//! rerun. That property is what E12 exports and the chaos determinism test
//! asserts.
//!
//! Capture is disabled by default (one relaxed atomic check) and must never
//! change program behaviour: it only reads telemetry surfaces, and disk
//! write errors degrade into `telemetry.incident_write_errors`.

use parking_lot::Mutex;
use std::collections::{BTreeMap, VecDeque};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// Environment variable naming the capsule output directory; setting it
/// enables incident capture lazily, on the first trigger.
pub const DIR_ENV: &str = "MATILDA_INCIDENT_DIR";

/// Most capsules retained in memory before the oldest is overwritten.
const MAX_CAPSULES: usize = 256;
/// Most provenance events retained in the recent-history ring.
const MAX_PROVENANCE: usize = 512;
/// Most spans / logs embedded per capsule.
const MAX_TAIL: usize = 64;
/// Most provenance events embedded per capsule.
const MAX_PROVENANCE_TAIL: usize = 32;

/// The chaos context a trigger site passes along so the capsule records
/// which fault plan (if any) was active. `matilda-resilience` fills this
/// from its thread-local fault scope; outside chaos it stays `Default`.
#[derive(Debug, Clone, Default)]
pub struct IncidentContext {
    /// Seed of the active `FaultPlan`, if fault injection is on.
    pub chaos_seed: Option<u64>,
    /// Sites the active plan targets.
    pub chaos_sites: Vec<String>,
}

/// Summary row for one captured capsule (the `/incidents` listing).
#[derive(Debug, Clone)]
pub struct CapsuleMeta {
    /// Stable-ish id: capture index + trace id hex (`0003-00c0ffee…`).
    pub id: String,
    /// Which failure class fired (`panic_caught`, `breaker_open`,
    /// `preempted`, `slo_violation`, `turn_degraded`, `task_failed`).
    pub trigger: String,
    /// The site the trigger fired at (span-name convention).
    pub site: String,
    /// Human-readable detail (error message, threshold, …).
    pub detail: String,
    /// The trace active on the capturing thread, if any.
    pub trace_id: Option<u64>,
    /// `trigger:site:detail` — the deterministic identity used by the
    /// seeded-chaos determinism tests (excludes all ephemeral ids).
    pub signature: String,
    /// Whether the capsule's spans, logs *and* provenance tail all carry
    /// the capsule's trace id (the acceptance-criterion correlation bit).
    pub correlated: bool,
}

struct Capsule {
    meta: CapsuleMeta,
    json: String,
}

struct Store {
    dir: Option<PathBuf>,
    capsules: VecDeque<Capsule>,
    provenance: VecDeque<(Option<u64>, String)>,
    last_counters: BTreeMap<String, u64>,
    next_index: u64,
}

impl Store {
    const fn new() -> Self {
        Self {
            dir: None,
            capsules: VecDeque::new(),
            provenance: VecDeque::new(),
            last_counters: BTreeMap::new(),
            next_index: 0,
        }
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);

fn store() -> &'static Mutex<Store> {
    static STORE: OnceLock<Mutex<Store>> = OnceLock::new();
    STORE.get_or_init(|| Mutex::new(Store::new()))
}

fn ensure_env_init() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        if let Ok(dir) = std::env::var(DIR_ENV) {
            if !dir.is_empty() {
                store().lock().dir = Some(PathBuf::from(dir));
                ENABLED.store(true, Ordering::Release);
            }
        }
    });
}

/// `true` when incident capture is on — the cheap gate every trigger site
/// checks before assembling any context.
pub fn enabled() -> bool {
    ensure_env_init();
    ENABLED.load(Ordering::Acquire)
}

/// Turn capture on. With `Some(dir)`, capsules are also written to
/// `<dir>/<id>.json`; with `None` they stay in memory only (what tests
/// use).
pub fn enable(dir: Option<PathBuf>) {
    ensure_env_init();
    store().lock().dir = dir;
    ENABLED.store(true, Ordering::Release);
}

/// Turn capture off (the ring is kept; see [`reset`]).
pub fn disable() {
    ensure_env_init();
    ENABLED.store(false, Ordering::Release);
}

/// Drop all captured capsules, the provenance ring and the counter
/// baseline. Tests call this between seeded runs.
pub fn reset() {
    let mut store = store().lock();
    store.capsules.clear();
    store.provenance.clear();
    store.last_counters.clear();
    store.next_index = 0;
}

/// Feed one pre-serialized provenance event into the recent-history ring
/// (called by `matilda-provenance`'s recorder while capture is enabled).
pub fn note_provenance(trace_id: Option<u64>, json: &str) {
    if !enabled() {
        return;
    }
    let mut store = store().lock();
    if store.provenance.len() >= MAX_PROVENANCE {
        store.provenance.pop_front();
    }
    store.provenance.push_back((trace_id, json.to_string()));
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn push_joined(out: &mut String, items: impl IntoIterator<Item = String>) {
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&item);
    }
}

/// Capture one incident capsule. Returns the capsule id, or `None` when
/// capture is disabled.
///
/// Reads (and only reads) the global telemetry surfaces, so it is safe to
/// call from anywhere — including with a breaker's internal lock held.
pub fn capture(trigger: &str, site: &str, detail: &str, ctx: &IncidentContext) -> Option<String> {
    if !enabled() {
        return None;
    }
    let trace = crate::trace::current_trace_id();

    // Tail of spans/logs on the capsule's trace (everything, when the
    // trigger fired outside any trace).
    let mut spans = crate::span::global().snapshot();
    if let Some(t) = trace {
        spans.retain(|s| s.trace_id == Some(t));
    }
    let spans: Vec<String> = spans
        .iter()
        .skip(spans.len().saturating_sub(MAX_TAIL))
        .map(crate::export::span_to_json)
        .collect();

    let mut logs = crate::log::global().tail(usize::MAX, None);
    if let Some(t) = trace {
        logs.retain(|e| e.trace_id == Some(t));
    }
    let logs: Vec<String> = logs
        .iter()
        .skip(logs.len().saturating_sub(MAX_TAIL))
        .map(crate::export::log_event_to_json)
        .collect();

    let metrics_snapshot = crate::metrics::global().snapshot();
    let profile_phases = crate::profile::global().snapshot();

    let mut store = store().lock();

    let mut provenance: Vec<String> = store
        .provenance
        .iter()
        .filter(|(t, _)| trace.is_none() || *t == trace)
        .map(|(_, json)| json.clone())
        .collect();
    if provenance.len() > MAX_PROVENANCE_TAIL {
        provenance.drain(..provenance.len() - MAX_PROVENANCE_TAIL);
    }

    // Counters that moved since the previous capture — the "what was the
    // system doing" delta, without dumping the whole registry.
    let mut delta: BTreeMap<String, u64> = BTreeMap::new();
    for (name, metric) in &metrics_snapshot.metrics {
        let crate::metrics::MetricValue::Counter(value) = metric else {
            continue;
        };
        let prev = store.last_counters.get(name).copied().unwrap_or(0);
        if *value > prev {
            delta.insert(name.clone(), value - prev);
        }
        store.last_counters.insert(name.clone(), *value);
    }

    let index = store.next_index;
    store.next_index += 1;
    let trace_hex = trace.map(crate::trace::format_trace_id);
    let id = format!(
        "{:04}-{}",
        index,
        trace_hex.as_deref().unwrap_or("untraced")
    );
    let signature = format!("{trigger}:{site}:{detail}");
    let correlated =
        trace.is_some() && !spans.is_empty() && !logs.is_empty() && !provenance.is_empty();

    let mut json = String::with_capacity(4096);
    json.push_str(&format!(
        "{{\"id\":\"{}\",\"trigger\":\"{}\",\"site\":\"{}\",\"detail\":\"{}\",",
        json_escape(&id),
        json_escape(trigger),
        json_escape(site),
        json_escape(detail)
    ));
    match trace {
        Some(t) => json.push_str(&format!(
            "\"trace_id\":{t},\"trace\":\"{}\",",
            trace_hex.as_deref().unwrap_or("")
        )),
        None => json.push_str("\"trace_id\":null,\"trace\":null,"),
    }
    json.push_str("\"chaos\":{\"seed\":");
    match ctx.chaos_seed {
        Some(seed) => json.push_str(&seed.to_string()),
        None => json.push_str("null"),
    }
    json.push_str(",\"sites\":[");
    push_joined(
        &mut json,
        ctx.chaos_sites
            .iter()
            .map(|s| format!("\"{}\"", json_escape(s))),
    );
    json.push_str(&format!(
        "]}},\"signature\":\"{}\",\"correlated\":{correlated},",
        json_escape(&signature)
    ));
    json.push_str("\"spans\":[");
    push_joined(&mut json, spans.iter().cloned());
    json.push_str("],\"logs\":[");
    push_joined(&mut json, logs.iter().cloned());
    json.push_str("],\"provenance\":[");
    push_joined(&mut json, provenance.iter().cloned());
    json.push_str("],\"metrics_delta\":{");
    push_joined(
        &mut json,
        delta
            .iter()
            .map(|(k, v)| format!("\"{}\":{v}", json_escape(k))),
    );
    json.push_str("},\"profile_phases\":[");
    push_joined(
        &mut json,
        profile_phases.iter().map(|p| {
            format!(
                "{{\"name\":\"{}\",\"calls\":{}}}",
                json_escape(&p.name),
                p.calls
            )
        }),
    );
    json.push_str("]}");

    let meta = CapsuleMeta {
        id: id.clone(),
        trigger: trigger.to_string(),
        site: site.to_string(),
        detail: detail.to_string(),
        trace_id: trace,
        signature,
        correlated,
    };
    let meta_json = meta_to_json(&meta);

    if let Some(dir) = store.dir.clone() {
        let write = std::fs::create_dir_all(&dir)
            .and_then(|()| std::fs::write(dir.join(format!("{id}.json")), &json));
        if write.is_err() {
            crate::metrics::global().inc(crate::metrics::names::INCIDENT_WRITE_ERRORS);
        }
    }

    if store.capsules.len() >= MAX_CAPSULES {
        store.capsules.pop_front();
        crate::metrics::global().inc(crate::metrics::names::INCIDENTS_DROPPED);
    }
    store.capsules.push_back(Capsule { meta, json });
    drop(store);

    crate::metrics::global().inc(crate::metrics::names::INCIDENTS_CAPTURED);
    crate::journal::record_incident(&meta_json);
    // After releasing the store lock: the log hook may journal, and a
    // journal append must never nest inside our lock.
    crate::log::info("telemetry.incident", "incident captured")
        .field("incident", id.as_str())
        .field("trigger", trigger)
        .field("site", site)
        .emit();
    Some(id)
}

fn meta_to_json(meta: &CapsuleMeta) -> String {
    let trace = match meta.trace_id {
        Some(t) => t.to_string(),
        None => "null".to_string(),
    };
    format!(
        "{{\"id\":\"{}\",\"trigger\":\"{}\",\"site\":\"{}\",\"detail\":\"{}\",\"trace_id\":{},\"signature\":\"{}\",\"correlated\":{}}}",
        json_escape(&meta.id),
        json_escape(&meta.trigger),
        json_escape(&meta.site),
        json_escape(&meta.detail),
        trace,
        json_escape(&meta.signature),
        meta.correlated
    )
}

/// Summaries of every capsule currently retained, oldest first.
pub fn captured() -> Vec<CapsuleMeta> {
    store()
        .lock()
        .capsules
        .iter()
        .map(|c| c.meta.clone())
        .collect()
}

/// The full capsule JSON for `id`, if still retained.
pub fn get(id: &str) -> Option<String> {
    store()
        .lock()
        .capsules
        .iter()
        .find(|c| c.meta.id == id)
        .map(|c| c.json.clone())
}

/// The `/incidents` listing body: a JSON array of capsule summaries.
pub fn list_json() -> String {
    let store = store().lock();
    let mut out = String::from("[");
    push_joined(
        &mut out,
        store.capsules.iter().map(|c| meta_to_json(&c.meta)),
    );
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // Incident capture mutates process globals (the enabled flag, the
    // store); every test that touches them serializes here.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GATE: std::sync::Mutex<()> = std::sync::Mutex::new(());
        GATE.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_capture_is_a_noop() {
        let _gate = lock();
        disable();
        reset();
        assert_eq!(capture("t", "s", "d", &IncidentContext::default()), None);
        assert!(captured().is_empty());
    }

    #[test]
    fn capture_builds_a_listable_retrievable_capsule() {
        let _gate = lock();
        enable(None);
        reset();
        let ctx = IncidentContext {
            chaos_seed: Some(9),
            chaos_sites: vec!["pipeline.task.train".into()],
        };
        let id = capture("task_failed", "pipeline.task.train", "boom", &ctx).unwrap();
        let listed = captured();
        assert_eq!(listed.len(), 1);
        assert_eq!(listed[0].id, id);
        assert_eq!(listed[0].signature, "task_failed:pipeline.task.train:boom");
        let json = get(&id).unwrap();
        assert!(json.contains("\"trigger\":\"task_failed\""));
        assert!(json.contains("\"seed\":9"));
        assert!(json.contains("pipeline.task.train"));
        assert!(list_json().starts_with('['));
        assert!(list_json().contains(&id));
        disable();
        reset();
    }

    #[test]
    fn provenance_ring_is_bounded_and_trace_filtered() {
        let _gate = lock();
        enable(None);
        reset();
        for i in 0..(MAX_PROVENANCE + 10) {
            note_provenance(Some(1), &format!("{{\"i\":{i}}}"));
        }
        note_provenance(Some(2), "{\"other\":true}");
        assert_eq!(store().lock().provenance.len(), MAX_PROVENANCE);
        disable();
        reset();
    }

    #[test]
    fn signature_excludes_ephemeral_ids() {
        let _gate = lock();
        enable(None);
        reset();
        let ctx = IncidentContext::default();
        let a = capture("preempted", "ml.fit.logistic", "budget", &ctx).unwrap();
        reset();
        let b = capture("preempted", "ml.fit.logistic", "budget", &ctx).unwrap();
        // Ids differ across "runs" only by trace hex (masked in tests);
        // signatures are identical by construction.
        assert_eq!(a.split('-').next(), b.split('-').next());
        disable();
        reset();
    }

    #[test]
    fn json_escape_handles_control_characters() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
