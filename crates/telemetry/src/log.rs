//! Leveled structured logging into a bounded, lock-sharded ring buffer.
//!
//! Log events are *data*, not text lines: each carries a [`Level`], a
//! `target` (conventionally `crate.module`), a message, typed key/value
//! fields, and is automatically correlated to the span and trace current on
//! the emitting thread. Events land in a [`LogBuffer`] — a fixed-capacity
//! ring sharded by thread, so hot paths never contend on one lock and a
//! chatty component can never exhaust memory: when a shard is full the
//! oldest event is overwritten and `telemetry.log_events_dropped` counts it.
//!
//! ```
//! use matilda_telemetry::log::{self, Level};
//!
//! log::info("demo", "pipeline scored").field("score", 0.92).emit();
//! let tail = log::global().tail(10, Some(Level::Info));
//! assert!(tail.iter().any(|e| e.message == "pipeline scored"));
//! ```
//!
//! Like the rest of the telemetry crate, logging must never change program
//! behaviour: events below the buffer's minimum level are dropped before
//! any allocation, and emission never blocks beyond one shard lock.

use crate::span::FieldValue;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Severity of a log event, least to most severe.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum Level {
    /// Very fine-grained flow tracing (per-candidate, per-row).
    Trace,
    /// Diagnostic detail (per-task, per-generation).
    Debug,
    /// Notable milestones (turns, runs, sessions).
    Info,
    /// Something surprising but survivable.
    Warn,
    /// An operation failed.
    Error,
}

impl Level {
    /// Stable lowercase name.
    pub fn name(self) -> &'static str {
        match self {
            Level::Trace => "trace",
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }

    /// Parse a level name, case-insensitively.
    pub fn parse(s: &str) -> Option<Level> {
        match s.to_ascii_lowercase().as_str() {
            "trace" => Some(Level::Trace),
            "debug" => Some(Level::Debug),
            "info" => Some(Level::Info),
            "warn" | "warning" => Some(Level::Warn),
            "error" => Some(Level::Error),
            _ => None,
        }
    }

    fn from_u8(v: u8) -> Level {
        match v {
            0 => Level::Trace,
            1 => Level::Debug,
            2 => Level::Info,
            3 => Level::Warn,
            _ => Level::Error,
        }
    }
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One structured log event, as stored by a [`LogBuffer`].
#[derive(Debug, Clone)]
pub struct LogEvent {
    /// Process-wide monotonic sequence number (total emission order).
    pub seq: u64,
    /// Offset from the buffer's epoch, in nanoseconds.
    pub ts_ns: u64,
    /// Severity.
    pub level: Level,
    /// Component that emitted the event, conventionally `crate.module`.
    pub target: String,
    /// Human-readable message.
    pub message: String,
    /// The span open on the emitting thread, if any.
    pub span_id: Option<u64>,
    /// The trace entered on the emitting thread, if any.
    pub trace_id: Option<u64>,
    /// Typed key/value payload.
    pub fields: Vec<(String, FieldValue)>,
}

impl LogEvent {
    /// The value recorded under `key`, if any.
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

const SHARDS: usize = 8;

/// Default per-shard ring capacity: 8 shards × 2048 = 16384 retained events.
pub const DEFAULT_SHARD_CAPACITY: usize = 2048;

static NEXT_SEQ: AtomicU64 = AtomicU64::new(0);

/// A bounded, lock-sharded ring buffer of [`LogEvent`]s.
///
/// Cloning is cheap and yields a handle on the same buffer. Shards are keyed
/// by emitting thread, so concurrent emitters rarely contend; [`tail`]
/// re-merges shards by sequence number.
///
/// [`tail`]: LogBuffer::tail
#[derive(Debug, Clone)]
pub struct LogBuffer {
    inner: Arc<BufferInner>,
}

#[derive(Debug)]
struct BufferInner {
    epoch: Instant,
    shards: [Mutex<VecDeque<LogEvent>>; SHARDS],
    shard_capacity: usize,
    min_level: AtomicU8,
    dropped: AtomicU64,
}

impl Default for LogBuffer {
    fn default() -> Self {
        Self::new()
    }
}

impl LogBuffer {
    /// A buffer with the default capacity, recording [`Level::Debug`] and up.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_SHARD_CAPACITY)
    }

    /// A buffer retaining at most `shard_capacity` events per shard
    /// (total retention is `8 * shard_capacity`).
    pub fn with_capacity(shard_capacity: usize) -> Self {
        Self {
            inner: Arc::new(BufferInner {
                epoch: Instant::now(),
                shards: std::array::from_fn(|_| Mutex::new(VecDeque::new())),
                shard_capacity: shard_capacity.max(1),
                min_level: AtomicU8::new(Level::Debug as u8),
                dropped: AtomicU64::new(0),
            }),
        }
    }

    /// The least severe level this buffer records.
    pub fn min_level(&self) -> Level {
        Level::from_u8(self.inner.min_level.load(Ordering::Relaxed))
    }

    /// Record `level` and everything more severe; drop the rest at the
    /// emission site, before any allocation.
    pub fn set_min_level(&self, level: Level) {
        self.inner.min_level.store(level as u8, Ordering::Relaxed);
    }

    /// `true` when an event at `level` would be recorded.
    pub fn enabled(&self, level: Level) -> bool {
        level as u8 >= self.inner.min_level.load(Ordering::Relaxed)
    }

    /// Events overwritten because their shard was full.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.inner.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// `true` when no event is retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Start building an event; it records when [`emit`] is called.
    ///
    /// [`emit`]: LogEventBuilder::emit
    pub fn log(
        &self,
        level: Level,
        target: impl Into<String>,
        message: impl Into<String>,
    ) -> LogEventBuilder {
        if !self.enabled(level) {
            return LogEventBuilder {
                buffer: self.clone(),
                event: None,
            };
        }
        LogEventBuilder {
            event: Some(LogEvent {
                seq: 0, // assigned at emit, so builder lifetime cannot reorder
                ts_ns: self.inner.epoch.elapsed().as_nanos() as u64,
                level,
                target: target.into(),
                message: message.into(),
                span_id: crate::span::current_span_id(),
                trace_id: crate::trace::current_trace_id(),
                fields: Vec::new(),
            }),
            buffer: self.clone(),
        }
    }

    fn push(&self, mut event: LogEvent) {
        event.seq = NEXT_SEQ.fetch_add(1, Ordering::Relaxed);
        // Stream to the flight recorder (global buffer only — local test
        // buffers stay out of the journal) before the bounded ring can
        // overwrite the event.
        if crate::journal::enabled() && Arc::ptr_eq(&self.inner, &global().inner) {
            crate::journal::record_log(&event);
        }
        let shard = crate::span::thread_index() % SHARDS;
        let mut shard = self.inner.shards[shard].lock();
        if shard.len() >= self.inner.shard_capacity {
            shard.pop_front();
            self.inner.dropped.fetch_add(1, Ordering::Relaxed);
            crate::metrics::global().inc("telemetry.log_events_dropped");
        }
        shard.push_back(event);
    }

    /// The most recent `max` retained events at `min_level` or above
    /// (`None` = any), oldest first.
    pub fn tail(&self, max: usize, min_level: Option<Level>) -> Vec<LogEvent> {
        let mut out: Vec<LogEvent> = self
            .inner
            .shards
            .iter()
            .flat_map(|s| {
                s.lock()
                    .iter()
                    .filter(|e| min_level.is_none_or(|lvl| e.level >= lvl))
                    .cloned()
                    .collect::<Vec<_>>()
            })
            .collect();
        out.sort_by_key(|e| e.seq);
        if out.len() > max {
            out.drain(..out.len() - max);
        }
        out
    }

    /// Remove every retained event (the dropped counter is preserved).
    pub fn clear(&self) {
        for shard in &self.inner.shards {
            shard.lock().clear();
        }
    }
}

/// An in-flight log event; call [`emit`](Self::emit) to record it.
///
/// A builder for a disabled level carries no event and every operation on it
/// is free.
#[derive(Debug)]
#[must_use = "a log event does nothing until .emit() is called"]
pub struct LogEventBuilder {
    buffer: LogBuffer,
    event: Option<LogEvent>,
}

impl LogEventBuilder {
    /// Attach a key/value annotation.
    pub fn field(mut self, key: impl Into<String>, value: impl Into<FieldValue>) -> Self {
        if let Some(event) = &mut self.event {
            event.fields.push((key.into(), value.into()));
        }
        self
    }

    /// Record the event into its buffer.
    pub fn emit(self) {
        if let Some(event) = self.event {
            self.buffer.push(event);
        }
    }
}

/// The process-wide default buffer, used by all instrumented hot paths.
pub fn global() -> &'static LogBuffer {
    static GLOBAL: OnceLock<LogBuffer> = OnceLock::new();
    GLOBAL.get_or_init(LogBuffer::new)
}

/// Build a [`Level::Trace`] event on the [`global`] buffer.
pub fn trace(target: impl Into<String>, message: impl Into<String>) -> LogEventBuilder {
    global().log(Level::Trace, target, message)
}

/// Build a [`Level::Debug`] event on the [`global`] buffer.
pub fn debug(target: impl Into<String>, message: impl Into<String>) -> LogEventBuilder {
    global().log(Level::Debug, target, message)
}

/// Build a [`Level::Info`] event on the [`global`] buffer.
pub fn info(target: impl Into<String>, message: impl Into<String>) -> LogEventBuilder {
    global().log(Level::Info, target, message)
}

/// Build a [`Level::Warn`] event on the [`global`] buffer.
pub fn warn(target: impl Into<String>, message: impl Into<String>) -> LogEventBuilder {
    global().log(Level::Warn, target, message)
}

/// Build a [`Level::Error`] event on the [`global`] buffer.
pub fn error(target: impl Into<String>, message: impl Into<String>) -> LogEventBuilder {
    global().log(Level::Error, target, message)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_ordered_and_named() {
        assert!(Level::Trace < Level::Debug);
        assert!(Level::Debug < Level::Info);
        assert!(Level::Warn < Level::Error);
        assert_eq!(Level::Warn.name(), "warn");
        assert_eq!(Level::parse("ERROR"), Some(Level::Error));
        assert_eq!(Level::parse("warning"), Some(Level::Warn));
        assert_eq!(Level::parse("nope"), None);
    }

    #[test]
    fn events_record_with_fields_and_order() {
        let buf = LogBuffer::new();
        buf.log(Level::Info, "t", "first").emit();
        buf.log(Level::Warn, "t", "second")
            .field("n", 3u64)
            .field("why", "because")
            .emit();
        let tail = buf.tail(10, None);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].message, "first");
        assert_eq!(tail[1].message, "second");
        assert!(tail[0].seq < tail[1].seq);
        assert_eq!(tail[1].field("n"), Some(&FieldValue::U64(3)));
        assert_eq!(
            tail[1].field("why"),
            Some(&FieldValue::Str("because".into()))
        );
    }

    #[test]
    fn min_level_filters_at_emission() {
        let buf = LogBuffer::new();
        assert!(!buf.enabled(Level::Trace), "trace off by default");
        buf.log(Level::Trace, "t", "invisible").emit();
        assert!(buf.is_empty());
        buf.set_min_level(Level::Trace);
        buf.log(Level::Trace, "t", "visible").emit();
        assert_eq!(buf.len(), 1);
        buf.set_min_level(Level::Error);
        buf.log(Level::Warn, "t", "also invisible").emit();
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn tail_filters_by_level_and_limits() {
        let buf = LogBuffer::new();
        for i in 0..6 {
            let level = if i % 2 == 0 { Level::Info } else { Level::Warn };
            buf.log(level, "t", format!("m{i}")).emit();
        }
        let warns = buf.tail(10, Some(Level::Warn));
        assert_eq!(warns.len(), 3);
        assert!(warns.iter().all(|e| e.level >= Level::Warn));
        let last_two = buf.tail(2, None);
        assert_eq!(last_two.len(), 2);
        assert_eq!(last_two[1].message, "m5");
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let buf = LogBuffer::with_capacity(4);
        for i in 0..10 {
            buf.log(Level::Info, "t", format!("m{i}")).emit();
        }
        // Single-threaded: one shard in use, so exactly 4 retained.
        assert_eq!(buf.len(), 4);
        assert_eq!(buf.dropped(), 6);
        let tail = buf.tail(10, None);
        assert_eq!(tail.first().unwrap().message, "m6");
        assert_eq!(tail.last().unwrap().message, "m9");
    }

    #[test]
    fn events_capture_span_and_trace_context() {
        let buf = LogBuffer::new();
        let collector = crate::span::Collector::new();
        let trace_id = crate::trace::next_trace_id();
        buf.log(Level::Info, "t", "outside").emit();
        {
            let _trace = crate::trace::enter(trace_id);
            let span = collector.span("work");
            buf.log(Level::Info, "t", "inside").emit();
            let tail = buf.tail(10, None);
            assert_eq!(tail[1].span_id, Some(span.id()));
            assert_eq!(tail[1].trace_id, Some(trace_id));
        }
        let tail = buf.tail(10, None);
        assert_eq!(tail[0].span_id, None);
        assert_eq!(tail[0].trace_id, None);
    }

    #[test]
    fn concurrent_emitters_all_land_in_order() {
        let buf = LogBuffer::new();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let handle = buf.clone();
                scope.spawn(move || {
                    for i in 0..100 {
                        handle
                            .log(Level::Info, format!("t{t}"), format!("m{i}"))
                            .field("i", i as u64)
                            .emit();
                    }
                });
            }
        });
        assert_eq!(buf.len(), 400);
        let tail = buf.tail(400, None);
        assert_eq!(tail.len(), 400);
        // Global sequence numbers are strictly increasing after the merge.
        assert!(tail.windows(2).all(|w| w[0].seq < w[1].seq));
        // Per-thread emission order survives sharding.
        for t in 0..4 {
            let target = format!("t{t}");
            let msgs: Vec<&str> = tail
                .iter()
                .filter(|e| e.target == target)
                .map(|e| e.message.as_str())
                .collect();
            assert_eq!(msgs.len(), 100);
            assert!(msgs.windows(2).all(|w| {
                let a: u32 = w[0][1..].parse().unwrap();
                let b: u32 = w[1][1..].parse().unwrap();
                a < b
            }));
        }
    }

    #[test]
    fn concurrent_bounded_buffer_never_exceeds_capacity() {
        let buf = LogBuffer::with_capacity(16);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let handle = buf.clone();
                scope.spawn(move || {
                    for i in 0..500 {
                        handle
                            .log(Level::Info, "t", "m")
                            .field("i", i as u64)
                            .emit();
                    }
                });
            }
        });
        assert!(buf.len() <= 16 * SHARDS);
        assert_eq!(buf.len() as u64 + buf.dropped(), 8 * 500);
    }

    #[test]
    fn clear_keeps_dropped_counter() {
        let buf = LogBuffer::with_capacity(1);
        buf.log(Level::Info, "t", "a").emit();
        buf.log(Level::Info, "t", "b").emit();
        assert_eq!(buf.dropped(), 1);
        buf.clear();
        assert!(buf.is_empty());
        assert_eq!(buf.dropped(), 1);
    }
}
