//! Durable flight recorder: a rotating JSONL journal of telemetry events.
//!
//! Every in-memory telemetry surface — the span [`crate::span::Collector`],
//! the [`crate::log::LogBuffer`] ring, provenance recorders — is bounded and
//! vanishes at process exit. The journal is the durable complement: when a
//! [`Journal`] is installed (explicitly, or lazily from the
//! `MATILDA_JOURNAL_DIR` environment variable), closed spans, log events and
//! provenance events stream to disk *as they occur*, one JSON object per
//! line, across bounded, crash-safe rotating segment files.
//!
//! Record format (one line per record):
//!
//! ```json
//! {"seq":17,"stream":"span","payload":{...}}
//! ```
//!
//! `seq` is a journal-wide monotonic sequence number, `stream` is one of
//! `span` / `log` / `provenance` / `incident`, and `payload` is the same
//! hand-rolled JSON the export layer produces for that event kind.
//!
//! Rotation is crash-safe by construction: a journal never appends to a
//! segment from a previous process (it always opens a fresh segment above
//! the highest existing index), every line is written with a single
//! `write_all`, and the [`replay`] reader skips a torn trailing line instead
//! of failing. The fsync policy is configurable ([`FsyncPolicy`], env
//! `MATILDA_JOURNAL_FSYNC`): never, on segment rotation (default), or after
//! every record.
//!
//! Following the crate's prime directive, journaling must never change
//! program behaviour: when no journal is installed the hot-path hook is one
//! relaxed atomic load, and write errors degrade into the
//! `telemetry.journal_write_errors` counter (surfaced on `/healthz`) rather
//! than panics.

use parking_lot::Mutex;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Environment variable naming the journal directory; setting it enables
/// the process-global journal lazily, on the first recorded event.
pub const DIR_ENV: &str = "MATILDA_JOURNAL_DIR";
/// Environment variable overriding the per-segment byte bound.
pub const SEGMENT_BYTES_ENV: &str = "MATILDA_JOURNAL_SEGMENT_BYTES";
/// Environment variable selecting the fsync policy
/// (`never` / `rotate` / `always`).
pub const FSYNC_ENV: &str = "MATILDA_JOURNAL_FSYNC";
/// Default per-segment byte bound before rotation (4 MiB).
pub const DEFAULT_SEGMENT_BYTES: u64 = 4 * 1024 * 1024;

/// When the journal forces written bytes to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FsyncPolicy {
    /// Rely on the OS page cache; fastest, weakest on power loss.
    Never,
    /// Fsync each segment as it is closed (and on [`Journal::flush`]):
    /// at most one segment of events is exposed to power loss. The default.
    #[default]
    OnRotate,
    /// Fsync after every record: strongest durability, slowest writes.
    Always,
}

impl FsyncPolicy {
    /// Parse a policy name (`never` / `rotate` / `always`),
    /// case-insensitively.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "never" => Some(Self::Never),
            "rotate" => Some(Self::OnRotate),
            "always" => Some(Self::Always),
            _ => None,
        }
    }
}

/// Where and how a [`Journal`] writes its segments.
#[derive(Debug, Clone)]
pub struct JournalConfig {
    /// Directory holding `journal-<n>.jsonl` segment files (created if
    /// missing).
    pub dir: PathBuf,
    /// Rotate to a fresh segment once the current one reaches this many
    /// bytes.
    pub max_segment_bytes: u64,
    /// Fsync policy for writes and rotation.
    pub fsync: FsyncPolicy,
}

impl JournalConfig {
    /// A config writing under `dir` with the default segment bound and
    /// fsync policy.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            max_segment_bytes: DEFAULT_SEGMENT_BYTES,
            fsync: FsyncPolicy::default(),
        }
    }

    /// The config described by the environment, or `None` when
    /// `MATILDA_JOURNAL_DIR` is unset or empty.
    pub fn from_env() -> Option<Self> {
        let dir = std::env::var(DIR_ENV).ok().filter(|d| !d.is_empty())?;
        let mut config = Self::new(dir);
        if let Some(bytes) = std::env::var(SEGMENT_BYTES_ENV)
            .ok()
            .and_then(|v| v.parse().ok())
        {
            config.max_segment_bytes = bytes;
        }
        if let Some(fsync) = std::env::var(FSYNC_ENV)
            .ok()
            .and_then(|v| FsyncPolicy::parse(&v))
        {
            config.fsync = fsync;
        }
        Some(config)
    }
}

#[derive(Debug)]
struct Segment {
    file: File,
    bytes: u64,
    index: u64,
}

/// A rotating JSONL segment writer. See the module docs for the format and
/// durability story.
#[derive(Debug)]
pub struct Journal {
    config: JournalConfig,
    seq: AtomicU64,
    // `None` once closed; appends after close are dropped silently (the
    // process is shutting down, losing them is the documented contract).
    segment: Mutex<Option<Segment>>,
}

fn segment_file_name(index: u64) -> String {
    format!("journal-{index:06}.jsonl")
}

/// All segment files under `dir`, in write (= index) order.
pub fn segment_paths(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut paths: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("journal-") && n.ends_with(".jsonl"))
        })
        .collect();
    // Zero-padded indices make lexicographic order the write order.
    paths.sort();
    Ok(paths)
}

impl Journal {
    /// Open a journal under `config.dir`, creating the directory if needed.
    ///
    /// A fresh segment is always started above the highest existing index,
    /// so segments from a crashed predecessor are never appended to — a torn
    /// trailing line can only ever sit at the end of a dead segment.
    pub fn open(config: JournalConfig) -> std::io::Result<Self> {
        std::fs::create_dir_all(&config.dir)?;
        let existing = segment_paths(&config.dir)?;
        let next_index = existing
            .iter()
            .filter_map(|p| {
                p.file_stem()
                    .and_then(|s| s.to_str())
                    .and_then(|s| s.strip_prefix("journal-"))
                    .and_then(|s| s.parse::<u64>().ok())
            })
            .max()
            .map_or(0, |max| max + 1);
        // Continue the sequence above everything a predecessor wrote, so
        // `replay`'s sort-by-seq keeps cross-restart append order instead of
        // interleaving restarted processes. Scan newest segment first; the
        // per-segment max guards against writers racing across the lock.
        let next_seq = existing
            .iter()
            .rev()
            .find_map(|p| {
                let text = std::fs::read_to_string(p).ok()?;
                text.lines().filter_map(parse_line).map(|r| r.seq + 1).max()
            })
            .unwrap_or(0);
        let segment = Self::open_segment(&config.dir, next_index)?;
        crate::metrics::global().set_gauge(
            crate::metrics::names::JOURNAL_SEGMENTS,
            (next_index + 1) as f64,
        );
        Ok(Self {
            config,
            seq: AtomicU64::new(next_seq),
            segment: Mutex::new(Some(segment)),
        })
    }

    fn open_segment(dir: &Path, index: u64) -> std::io::Result<Segment> {
        let file = OpenOptions::new()
            .create_new(true)
            .write(true)
            .open(dir.join(segment_file_name(index)))?;
        Ok(Segment {
            file,
            bytes: 0,
            index,
        })
    }

    /// The directory this journal writes under.
    pub fn dir(&self) -> &Path {
        &self.config.dir
    }

    /// Records appended so far (including any that failed to write).
    pub fn records(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    fn count_error() {
        crate::metrics::global().inc(crate::metrics::names::JOURNAL_WRITE_ERRORS);
    }

    /// Append one record to the `stream` journal stream. `payload` must be
    /// a complete JSON value (the exporters guarantee this).
    ///
    /// Errors never escape: a failed write increments
    /// `telemetry.journal_write_errors` and the caller proceeds untouched.
    pub fn append(&self, stream: &str, payload: &str) {
        if self.try_append(stream, payload).is_err() {
            Self::count_error();
        }
    }

    /// Like [`Journal::append`], but a failed write propagates to the
    /// caller instead of landing on `telemetry.journal_write_errors` — for
    /// owners (the session store) that bring their own retry policy, error
    /// accounting and breaker. Returns the appended record's sequence
    /// number. A post-close append reports success-as-drop (`Ok`), matching
    /// the silent-drop contract of [`Journal::append`].
    pub fn try_append(&self, stream: &str, payload: &str) -> std::io::Result<u64> {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let line = format!("{{\"seq\":{seq},\"stream\":\"{stream}\",\"payload\":{payload}}}\n");
        let mut guard = self.segment.lock();
        let Some(segment) = guard.as_mut() else {
            return Ok(seq);
        };
        segment.file.write_all(line.as_bytes())?;
        segment.bytes += line.len() as u64;
        let metrics = crate::metrics::global();
        metrics.inc(crate::metrics::names::JOURNAL_RECORDS);
        metrics.add(crate::metrics::names::JOURNAL_BYTES, line.len() as u64);
        if self.config.fsync == FsyncPolicy::Always {
            segment.file.sync_data()?;
        }
        if segment.bytes >= self.config.max_segment_bytes {
            self.rotate(&mut guard);
        }
        Ok(seq)
    }

    /// Crash simulation for chaos tests: append the record's line cut off
    /// after `keep_bytes` bytes, as if the process died mid-`write_all`.
    /// The newline is still written so later appends stay parseable — the
    /// torn line itself is what [`replay_counted`] must count and skip.
    pub fn append_torn(&self, stream: &str, payload: &str, keep_bytes: usize) {
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let line = format!("{{\"seq\":{seq},\"stream\":\"{stream}\",\"payload\":{payload}}}");
        let torn = &line[..keep_bytes.min(line.len().saturating_sub(1))];
        let mut guard = self.segment.lock();
        if let Some(segment) = guard.as_mut() {
            let _ = segment.file.write_all(torn.as_bytes());
            let _ = segment.file.write_all(b"\n");
            segment.bytes += torn.len() as u64 + 1;
        }
    }

    // Close the current segment (flush + policy fsync) and start the next.
    fn rotate(&self, guard: &mut Option<Segment>) {
        let Some(segment) = guard.take() else {
            return;
        };
        let next_index = segment.index + 1;
        Self::seal(&segment.file, self.config.fsync);
        drop(segment);
        match Self::open_segment(&self.config.dir, next_index) {
            Ok(next) => {
                let metrics = crate::metrics::global();
                metrics.inc(crate::metrics::names::JOURNAL_ROTATIONS);
                metrics.set_gauge(
                    crate::metrics::names::JOURNAL_SEGMENTS,
                    (next_index + 1) as f64,
                );
                *guard = Some(next);
            }
            // The disk said no: the journal degrades to a no-op (counted),
            // the program keeps running.
            Err(_) => Self::count_error(),
        }
    }

    fn seal(file: &File, fsync: FsyncPolicy) {
        if fsync != FsyncPolicy::Never && file.sync_data().is_err() {
            Self::count_error();
        }
    }

    /// Flush buffered bytes (and fsync, unless the policy is `Never`) so a
    /// reader sees everything appended so far.
    pub fn flush(&self) {
        let mut guard = self.segment.lock();
        if let Some(segment) = guard.as_mut() {
            if segment.file.flush().is_err() {
                Self::count_error();
            }
            Self::seal(&segment.file, self.config.fsync);
        }
    }

    /// Flush and close the journal; subsequent appends are dropped.
    pub fn close(&self) {
        let mut guard = self.segment.lock();
        if let Some(segment) = guard.take() {
            Self::seal(&segment.file, self.config.fsync);
        }
    }
}

impl Drop for Journal {
    fn drop(&mut self) {
        self.close();
    }
}

// ---------------------------------------------------------------------------
// Replaying reader
// ---------------------------------------------------------------------------

/// One record read back from a journal directory.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalRecord {
    /// Journal-wide sequence number assigned at append time.
    pub seq: u64,
    /// Stream name (`span` / `log` / `provenance` / `incident`).
    pub stream: String,
    /// The record payload, verbatim JSON.
    pub payload: String,
}

/// Parse one journal line. The writer emits exactly
/// `{"seq":N,"stream":"S","payload":...}`, so a strict prefix scan is both
/// safe and dependency-free; anything else (torn tail after a crash) is
/// `None`. Public for readers (the session store) that need per-line control
/// — e.g. to inject short-read faults between reading and parsing — while
/// keeping exactly [`replay_counted`]'s notion of a parseable record.
pub fn parse_record(line: &str) -> Option<JournalRecord> {
    parse_line(line)
}

fn parse_line(line: &str) -> Option<JournalRecord> {
    let rest = line.strip_prefix("{\"seq\":")?;
    let comma = rest.find(',')?;
    let seq: u64 = rest[..comma].parse().ok()?;
    let rest = rest[comma..].strip_prefix(",\"stream\":\"")?;
    let quote = rest.find('"')?;
    let stream = rest[..quote].to_string();
    let payload = rest[quote..]
        .strip_prefix("\",\"payload\":")?
        .strip_suffix('}')?;
    Some(JournalRecord {
        seq,
        stream,
        payload: payload.to_string(),
    })
}

/// Replay every record under `dir`, in append order.
///
/// Segments are read in index order; a torn trailing line (crash mid-write)
/// is skipped rather than failing the replay. Records are returned sorted by
/// sequence number, which the writer guarantees matches append order.
pub fn replay(dir: &Path) -> std::io::Result<Vec<JournalRecord>> {
    replay_counted(dir).map(|(records, _)| records)
}

/// [`replay`], but torn/unparseable lines are counted instead of vanishing:
/// each one increments `telemetry.journal_torn_lines` (surfaced on
/// `/healthz`) and the per-segment tally lands in a warn log, so data loss
/// after a crash is visible rather than silent. Returns the records plus the
/// number of lines this call skipped.
pub fn replay_counted(dir: &Path) -> std::io::Result<(Vec<JournalRecord>, u64)> {
    let mut out = Vec::new();
    let mut torn_total = 0u64;
    for path in segment_paths(dir)? {
        let text = std::fs::read_to_string(&path)?;
        let mut torn_here = 0u64;
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            match parse_line(line) {
                Some(record) => out.push(record),
                None => torn_here += 1,
            }
        }
        if torn_here > 0 {
            torn_total += torn_here;
            crate::log::warn("telemetry.journal", "torn journal lines skipped on replay")
                .field("segment", path.display().to_string())
                .field("torn_lines", torn_here)
                .emit();
        }
    }
    if torn_total > 0 {
        crate::metrics::global().add(crate::metrics::names::JOURNAL_TORN_LINES, torn_total);
    }
    out.sort_by_key(|r| r.seq);
    Ok((out, torn_total))
}

// ---------------------------------------------------------------------------
// The process-global journal and its streaming hooks
// ---------------------------------------------------------------------------

// Fast-path flag: hot paths check this one relaxed load before doing any
// serialization work.
static ACTIVE: AtomicBool = AtomicBool::new(false);

fn slot() -> &'static Mutex<Option<Arc<Journal>>> {
    static SLOT: OnceLock<Mutex<Option<Arc<Journal>>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

// One-time lazy init from the environment, so setting MATILDA_JOURNAL_DIR is
// all a binary needs — the first recorded event brings the journal up.
fn ensure_env_init() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        if let Some(config) = JournalConfig::from_env() {
            match Journal::open(config) {
                Ok(journal) => {
                    *slot().lock() = Some(Arc::new(journal));
                    ACTIVE.store(true, Ordering::Release);
                }
                Err(_) => Journal::count_error(),
            }
        }
    });
}

/// `true` when a process-global journal is installed (explicitly or via the
/// environment). This is the cheap gate every streaming hook checks first.
pub fn enabled() -> bool {
    ensure_env_init();
    ACTIVE.load(Ordering::Acquire)
}

/// Install `journal` as the process-global sink, returning the previous one
/// (which callers should [`Journal::flush`] if they care about its tail).
pub fn install(journal: Arc<Journal>) -> Option<Arc<Journal>> {
    ensure_env_init();
    let prev = slot().lock().replace(journal);
    ACTIVE.store(true, Ordering::Release);
    prev
}

/// Remove and return the process-global journal, disabling streaming.
pub fn uninstall() -> Option<Arc<Journal>> {
    ensure_env_init();
    let prev = slot().lock().take();
    ACTIVE.store(false, Ordering::Release);
    prev
}

/// A handle on the process-global journal, if one is installed.
pub fn active() -> Option<Arc<Journal>> {
    if !enabled() {
        return None;
    }
    slot().lock().clone()
}

/// Flush the process-global journal (no-op without one). Wired into the
/// graceful-shutdown paths: `ObservabilityServer` shutdown and
/// `DesignSession` close.
pub fn flush_global() {
    if let Some(journal) = active() {
        journal.flush();
    }
}

/// Stream one closed span (hook for the global [`crate::span::Collector`]).
pub fn record_span(record: &crate::span::SpanRecord) {
    if let Some(journal) = active() {
        journal.append("span", &crate::export::span_to_json(record));
    }
}

/// Stream one log event (hook for the global [`crate::log::LogBuffer`]).
pub fn record_log(event: &crate::log::LogEvent) {
    if let Some(journal) = active() {
        journal.append("log", &crate::export::log_event_to_json(event));
    }
}

/// Stream one provenance event, pre-serialized by `matilda-provenance`
/// (whose recorder calls in here — the dependency points that way).
pub fn record_provenance(json: &str) {
    if let Some(journal) = active() {
        journal.append("provenance", json);
    }
}

/// Stream one incident-capsule summary (hook for [`crate::incident`]).
pub fn record_incident(meta_json: &str) {
    if let Some(journal) = active() {
        journal.append("incident", meta_json);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "matilda-journal-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn append_flush_replay_round_trips_in_order() {
        let dir = temp_dir("roundtrip");
        let journal = Journal::open(JournalConfig::new(&dir)).unwrap();
        journal.append("span", "{\"name\":\"a\"}");
        journal.append("log", "{\"message\":\"b\"}");
        journal.append("provenance", "{\"type\":\"c\"}");
        journal.flush();
        let records = replay(&dir).unwrap();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].seq, 0);
        assert_eq!(records[0].stream, "span");
        assert_eq!(records[0].payload, "{\"name\":\"a\"}");
        assert_eq!(records[1].stream, "log");
        assert_eq!(records[2].stream, "provenance");
        assert!(records.windows(2).all(|w| w[0].seq < w[1].seq));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn segments_rotate_at_the_byte_bound() {
        let dir = temp_dir("rotate");
        let mut config = JournalConfig::new(&dir);
        config.max_segment_bytes = 256;
        let journal = Journal::open(config).unwrap();
        for i in 0..50 {
            journal.append("span", &format!("{{\"i\":{i}}}"));
        }
        journal.flush();
        let segments = segment_paths(&dir).unwrap();
        assert!(
            segments.len() > 1,
            "50 records × ~40 bytes must cross a 256-byte segment bound"
        );
        for path in &segments[..segments.len() - 1] {
            assert!(std::fs::metadata(path).unwrap().len() >= 256);
        }
        let records = replay(&dir).unwrap();
        assert_eq!(records.len(), 50, "rotation loses nothing");
        assert_eq!(records.last().unwrap().seq, 49);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopen_starts_a_fresh_segment_and_replay_merges() {
        let dir = temp_dir("reopen");
        {
            let journal = Journal::open(JournalConfig::new(&dir)).unwrap();
            journal.append("span", "{\"run\":1}");
        } // dropped: flushed + closed
        let journal = Journal::open(JournalConfig::new(&dir)).unwrap();
        journal.append("span", "{\"run\":2}");
        journal.flush();
        assert_eq!(
            segment_paths(&dir).unwrap().len(),
            2,
            "a reopened journal never appends to a predecessor's segment"
        );
        // Seq continues above the predecessor's records, so replay's
        // sort-by-seq preserves cross-restart append order.
        let records = replay(&dir).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].seq, 0);
        assert_eq!(records[0].payload, "{\"run\":1}");
        assert_eq!(records[1].seq, 1);
        assert_eq!(records[1].payload, "{\"run\":2}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn seq_continues_past_a_torn_predecessor_tail() {
        let dir = temp_dir("seq-torn");
        {
            let journal = Journal::open(JournalConfig::new(&dir)).unwrap();
            journal.append("span", "{\"run\":1}");
            journal.append("span", "{\"run\":2}");
            journal.flush();
            let path = segment_paths(&dir).unwrap().pop().unwrap();
            let mut file = OpenOptions::new().append(true).open(path).unwrap();
            file.write_all(b"{\"seq\":2,\"str").unwrap();
        }
        let journal = Journal::open(JournalConfig::new(&dir)).unwrap();
        journal.append("span", "{\"run\":3}");
        journal.flush();
        let records = replay(&dir).unwrap();
        assert_eq!(records.len(), 3);
        // The torn line's (unreadable) seq is re-used by the successor:
        // parseable history stays gap-free and ordered.
        assert_eq!(records[2].seq, 2);
        assert_eq!(records[2].payload, "{\"run\":3}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn try_append_propagates_write_errors_without_counting() {
        let scoped = crate::metrics::scoped();
        let dir = temp_dir("tryappend");
        let journal = Journal::open(JournalConfig::new(&dir)).unwrap();
        assert_eq!(journal.try_append("span", "{\"ok\":1}").unwrap(), 0);
        // Force an io error by removing the directory under the journal:
        // further writes go to a still-open handle, so instead exercise the
        // post-close path (Ok-as-drop) plus the success counter contract.
        journal.close();
        assert!(journal.try_append("span", "{\"late\":1}").is_ok());
        assert_eq!(
            scoped
                .registry()
                .snapshot()
                .counter(crate::metrics::names::JOURNAL_WRITE_ERRORS),
            0,
            "try_append never lands on the journal's own error counter"
        );
        assert_eq!(replay(&dir).unwrap().len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replay_counted_surfaces_torn_lines() {
        let scoped = crate::metrics::scoped();
        let dir = temp_dir("counted");
        let journal = Journal::open(JournalConfig::new(&dir)).unwrap();
        journal.append("span", "{\"ok\":1}");
        journal.append_torn("span", "{\"lost\":true}", 12);
        journal.append("span", "{\"ok\":2}");
        journal.flush();
        let (records, torn) = replay_counted(&dir).unwrap();
        assert_eq!(records.len(), 2, "torn line skipped");
        assert_eq!(torn, 1, "and counted");
        assert_eq!(
            scoped
                .registry()
                .snapshot()
                .counter(crate::metrics::names::JOURNAL_TORN_LINES),
            1
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_trailing_line_is_skipped_not_fatal() {
        let dir = temp_dir("torn");
        let journal = Journal::open(JournalConfig::new(&dir)).unwrap();
        journal.append("span", "{\"ok\":true}");
        journal.flush();
        // Simulate a crash mid-write: append half a record by hand.
        let path = &segment_paths(&dir).unwrap()[0];
        let mut file = OpenOptions::new().append(true).open(path).unwrap();
        file.write_all(b"{\"seq\":1,\"stream\":\"sp").unwrap();
        drop(file);
        let records = replay(&dir).unwrap();
        assert_eq!(records.len(), 1, "the torn line is dropped silently");
        assert_eq!(records[0].payload, "{\"ok\":true}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fsync_policy_parses() {
        assert_eq!(FsyncPolicy::parse("never"), Some(FsyncPolicy::Never));
        assert_eq!(FsyncPolicy::parse("ROTATE"), Some(FsyncPolicy::OnRotate));
        assert_eq!(FsyncPolicy::parse("always"), Some(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("sometimes"), None);
    }

    #[test]
    fn closed_journal_drops_appends_silently() {
        let scoped = crate::metrics::scoped();
        let dir = temp_dir("closed");
        let journal = Journal::open(JournalConfig::new(&dir)).unwrap();
        journal.append("span", "{}");
        journal.close();
        journal.append("span", "{}");
        assert_eq!(replay(&dir).unwrap().len(), 1);
        assert_eq!(
            scoped
                .registry()
                .snapshot()
                .counter(crate::metrics::names::JOURNAL_WRITE_ERRORS),
            0,
            "a post-close append is a drop, not an error"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn parse_line_rejects_foreign_shapes() {
        assert!(parse_line("").is_none());
        assert!(parse_line("{\"other\":1}").is_none());
        assert!(parse_line("{\"seq\":x,\"stream\":\"s\",\"payload\":{}}").is_none());
        let ok = parse_line("{\"seq\":7,\"stream\":\"log\",\"payload\":{\"a\":1}}").unwrap();
        assert_eq!(ok.seq, 7);
        assert_eq!(ok.stream, "log");
        assert_eq!(ok.payload, "{\"a\":1}");
    }
}
