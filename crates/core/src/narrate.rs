//! Plain-language narration of pipeline results, calibrated to the user's
//! expertise and phrased in their domain vocabulary — the paper's demand to
//! "bridge the gap between technical vocabulary … and the vocabulary of
//! other disciplines".

use crate::assess::Verdict;
use matilda_conversation::prelude::{Expertise, UserProfile};
use matilda_ml::importance::FeatureImportance;
use matilda_pipeline::PipelineReport;

/// How a score reads on a human scale.
fn quality_word(score: f64) -> &'static str {
    // Negative scores are neg-RMSE style: translate to the same bands.
    let effective = if score <= 0.0 { 1.0 + score } else { score };
    match effective {
        s if s >= 0.95 => "excellent",
        s if s >= 0.85 => "very good",
        s if s >= 0.7 => "good",
        s if s >= 0.55 => "modest",
        _ => "weak",
    }
}

/// Narrate one executed report for `user`.
///
/// Novices get an analogy-first reading with no metric names; analysts get
/// the metric with a gloss; data scientists get the full technical line.
pub fn narrate_report(report: &PipelineReport, user: &UserProfile) -> String {
    let quality = quality_word(report.test_score);
    match user.expertise {
        Expertise::Novice => {
            let mut out = format!(
                "I tested the study on {} I kept hidden during training, the way an exam \
                 uses questions you haven't seen. The result is {quality}: the study's \
                 answers about your {} data were right often enough to take seriously.",
                "a slice of your data", user.domain
            );
            if report.overfit_gap() > 0.15 {
                out.push_str(
                    " One caution: it did noticeably better on the data it studied than \
                     on the hidden slice, so part of what it learned may be memorized \
                     detail rather than a real pattern.",
                );
            }
            out
        }
        Expertise::Analyst => {
            let mut out = format!(
                "Held-out {} came to {:.3} — {quality}. The model ({}) was trained on \
                 one fragment and scored on another it never saw.",
                report.scoring_name, report.test_score, report.model_name
            );
            if report.overfit_gap() > 0.15 {
                out.push_str(&format!(
                    " Training score was {:.3}, a gap of {:.3}: watch for overfitting.",
                    report.train_score,
                    report.overfit_gap()
                ));
            }
            out
        }
        Expertise::DataScientist => format!(
            "{} = {:.3} held-out (train {:.3}, gap {:.3}); model `{}` over {} features \
             [{}]; wall time {:?}.",
            report.scoring_name,
            report.test_score,
            report.train_score,
            report.overfit_gap(),
            report.model_name,
            report.feature_names.len(),
            report.feature_names.join(", "),
            report.total_time(),
        ),
    }
}

/// Narrate which features drive the prediction, phrased for the user.
///
/// `ranked` must be sorted by importance descending (as
/// [`matilda_ml::importance::permutation_importance`] returns it).
pub fn narrate_importance(ranked: &[FeatureImportance], user: &UserProfile) -> String {
    let informative: Vec<&FeatureImportance> =
        ranked.iter().filter(|f| f.importance > 0.01).collect();
    if informative.is_empty() {
        return match user.expertise {
            Expertise::Novice => format!(
                "None of the measurements stands out as driving the answer — the \
                 study may be reading noise, so treat conclusions about your {} \
                 question cautiously.",
                user.domain
            ),
            _ => "No feature shows meaningful permutation importance; suspect \
                  label noise or leakage-free irreducible error."
                .to_string(),
        };
    }
    match user.expertise {
        Expertise::Novice => {
            let names: Vec<&str> = informative
                .iter()
                .take(3)
                .map(|f| f.feature.as_str())
                .collect();
            format!(
                "What matters most for this answer: {}. When I scramble {} the \
                 study loses the most accuracy, so it carries the strongest signal.",
                names.join(", "),
                names[0]
            )
        }
        Expertise::Analyst => {
            let lines: Vec<String> = informative
                .iter()
                .take(5)
                .map(|f| format!("{} ({:+.3})", f.feature, f.importance))
                .collect();
            format!(
                "Permutation importance (score drop when shuffled): {}",
                lines.join(", ")
            )
        }
        Expertise::DataScientist => {
            let lines: Vec<String> = ranked
                .iter()
                .map(|f| format!("{}={:+.4}", f.feature, f.importance))
                .collect();
            format!("permutation importance: {}", lines.join(" "))
        }
    }
}

/// Narrate the verdict as a recommendation for the next step.
pub fn narrate_verdict(verdict: Verdict, user: &UserProfile) -> String {
    let technical = user.expertise.technical_language();
    match (verdict, technical) {
        (Verdict::Strong, false) => {
            "This looks solid enough to bring to your colleagues.".to_string()
        }
        (Verdict::Strong, true) => {
            "Strong result; consider a final robustness pass (different seeds, \
             ablating features) before reporting."
                .to_string()
        }
        (Verdict::Adequate, false) => {
            "Usable, but we could probably do better — say 'surprise me' to explore \
             alternatives."
                .to_string()
        }
        (Verdict::Adequate, true) => {
            "Adequate; the design space likely holds better configurations — try a \
             creative search pass."
                .to_string()
        }
        (Verdict::Weak, false) => {
            "I would not rely on this yet. We may need different data or a different \
             question."
                .to_string()
        }
        (Verdict::Weak, true) => {
            "Weak; revisit feature engineering or reconsider whether the target is \
             predictable from these measurements."
                .to_string()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matilda_data::{Column, DataFrame};
    use matilda_pipeline::{run, PipelineSpec};

    fn report() -> PipelineReport {
        let df = DataFrame::from_columns(vec![
            ("x", Column::from_f64((0..40).map(f64::from).collect())),
            (
                "label",
                Column::from_categorical(
                    &(0..40)
                        .map(|i| if i < 20 { "a" } else { "b" })
                        .collect::<Vec<_>>(),
                ),
            ),
        ])
        .unwrap();
        run(&PipelineSpec::default_classification("label"), &df).unwrap()
    }

    #[test]
    fn novice_narration_avoids_jargon() {
        let r = report();
        let text = narrate_report(&r, &UserProfile::novice("n", "urbanism"));
        assert!(
            !text.contains("macro_f1"),
            "no metric names for novices: {text}"
        );
        assert!(!text.contains('`'));
        assert!(
            text.contains("urbanism"),
            "speaks the user's domain: {text}"
        );
    }

    #[test]
    fn expert_narration_has_numbers_and_features() {
        let r = report();
        let text = narrate_report(&r, &UserProfile::data_scientist("d"));
        assert!(text.contains("macro_f1"));
        assert!(text.contains('`'));
        assert!(text.contains("x"), "feature list present");
    }

    #[test]
    fn analyst_gets_metric_with_gloss() {
        let r = report();
        let text = narrate_report(
            &r,
            &UserProfile::new("a", Expertise::Analyst, "planning", 0.5),
        );
        assert!(text.contains("Held-out"));
        assert!(text.contains("never saw"));
    }

    #[test]
    fn quality_words_banded() {
        assert_eq!(quality_word(0.99), "excellent");
        assert_eq!(quality_word(0.9), "very good");
        assert_eq!(quality_word(0.75), "good");
        assert_eq!(quality_word(0.6), "modest");
        assert_eq!(quality_word(0.3), "weak");
        assert_eq!(
            quality_word(-0.05),
            "excellent",
            "neg-rmse maps to the same bands"
        );
    }

    #[test]
    fn overfit_warning_appears_when_warranted() {
        let mut r = report();
        r.train_score = r.test_score + 0.3;
        let text = narrate_report(&r, &UserProfile::novice("n", "retail"));
        assert!(text.contains("memorized"), "{text}");
        let text = narrate_report(&r, &UserProfile::new("a", Expertise::Analyst, "x", 0.5));
        assert!(text.contains("overfitting"));
    }

    #[test]
    fn importance_narration_by_expertise() {
        use matilda_ml::importance::FeatureImportance;
        let ranked = vec![
            FeatureImportance {
                feature: "pedestrian_area".into(),
                importance: 0.31,
            },
            FeatureImportance {
                feature: "transit_access".into(),
                importance: 0.09,
            },
            FeatureImportance {
                feature: "noise".into(),
                importance: -0.002,
            },
        ];
        let novice = narrate_importance(&ranked, &UserProfile::novice("n", "urbanism"));
        assert!(novice.contains("pedestrian_area"));
        assert!(
            !novice.contains("0.31"),
            "no raw numbers for novices: {novice}"
        );
        let analyst = narrate_importance(
            &ranked,
            &UserProfile::new("a", Expertise::Analyst, "x", 0.5),
        );
        assert!(analyst.contains("+0.310"));
        assert!(
            !analyst.contains("noise"),
            "uninformative features dropped for analysts"
        );
        let expert = narrate_importance(&ranked, &UserProfile::data_scientist("d"));
        assert!(expert.contains("noise=-0.0020"), "{expert}");
    }

    #[test]
    fn importance_narration_all_noise() {
        let ranked = vec![FeatureImportance {
            feature: "junk".into(),
            importance: 0.0,
        }];
        let text = narrate_importance(&ranked, &UserProfile::novice("n", "retail"));
        assert!(text.contains("cautiously"));
        let text = narrate_importance(&ranked, &UserProfile::data_scientist("d"));
        assert!(text.contains("importance"));
    }

    #[test]
    fn verdict_narrations_differ_by_expertise() {
        let novice = UserProfile::novice("n", "urbanism");
        let expert = UserProfile::data_scientist("d");
        for v in [Verdict::Strong, Verdict::Adequate, Verdict::Weak] {
            let plain = narrate_verdict(v, &novice);
            let technical = narrate_verdict(v, &expert);
            assert_ne!(plain, technical);
            assert!(!plain.is_empty() && !technical.is_empty());
        }
        assert!(narrate_verdict(Verdict::Adequate, &novice).contains("surprise me"));
    }
}
