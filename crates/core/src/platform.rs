//! The MATILDA platform façade: the three design modes the paper's
//! architecture supports.
//!
//! - **Conversational** (known territory): the DS4All-style loop alone —
//!   the baseline a pre-MATILDA assistant would offer.
//! - **Creative** (unknown territory): the computational-creativity search
//!   alone, no human steering.
//! - **Hybrid** (MATILDA): the conversational design seeding a creative
//!   pattern search, balancing known and unknown as the paper argues.

use crate::assess::{assess, Assessment};
use crate::cocreativity::CoCreativityReport;
use crate::config::PlatformConfig;
use crate::error::{PlatformError, Result};
use crate::persona::Persona;
use crate::session::DesignSession;
use matilda_creativity::search::search;
use matilda_data::DataFrame;
use matilda_pipeline::prelude::*;
use matilda_provenance::prelude::*;

/// Which design mode produced an outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DesignMode {
    /// Conversational loop only.
    Conversational,
    /// Creative search only.
    Creative,
    /// Conversation followed by creative refinement.
    Hybrid,
}

impl DesignMode {
    /// Stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            DesignMode::Conversational => "conversational",
            DesignMode::Creative => "creative",
            DesignMode::Hybrid => "hybrid",
        }
    }
}

/// The result of one end-to-end design run.
#[derive(Debug, Clone)]
pub struct DesignOutcome {
    /// Mode that produced it.
    pub mode: DesignMode,
    /// The final design.
    pub spec: PipelineSpec,
    /// Its execution report on a held-out fragment.
    pub report: PipelineReport,
    /// Boden-criteria assessment.
    pub assessment: Assessment,
    /// Co-creativity metrics (zeroed for the pure creative mode).
    pub cocreativity: CoCreativityReport,
    /// The session's provenance log.
    pub events: Vec<Event>,
    /// Pipeline evaluations spent (creative modes).
    pub evaluations: usize,
    /// User-input rounds consumed (conversational modes).
    pub rounds: usize,
}

/// The platform.
#[derive(Debug, Clone)]
pub struct Matilda {
    config: PlatformConfig,
}

impl Matilda {
    /// A platform with the given configuration.
    pub fn new(config: PlatformConfig) -> Self {
        Self { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &PlatformConfig {
        &self.config
    }

    /// Run the final report under the platform deadline, when configured:
    /// even the reporting run cooperates with the budget instead of
    /// overshooting it, and a preemption surfaces as a session error.
    fn final_report(&self, spec: &PipelineSpec, frame: &DataFrame) -> Result<PipelineReport> {
        let ctx = match self.config.deadline {
            Some(limit) => {
                let clock = matilda_resilience::fault::clock();
                let budget = matilda_resilience::DeadlineBudget::start(clock.as_ref(), limit);
                ExecContext::bounded(budget, clock)
            }
            None => ExecContext::unbounded(),
        };
        match run_with_ctx(spec, frame, &ctx)? {
            PipelineOutcome::Completed(report) => Ok(report),
            PipelineOutcome::Preempted { site, .. } => Err(PlatformError::Session(format!(
                "the final report run was preempted at {site}; \
                 the deadline budget is spent"
            ))),
        }
    }

    #[allow(clippy::too_many_arguments)] // one field per DesignOutcome component
    fn finish_outcome(
        &self,
        mode: DesignMode,
        spec: PipelineSpec,
        frame: &DataFrame,
        events: Vec<Event>,
        evaluations: usize,
        rounds: usize,
        novelty: f64,
        surprise: f64,
    ) -> Result<DesignOutcome> {
        let report = self.final_report(&spec, frame)?;
        let assessment = assess(report.test_score, novelty, surprise, report.overfit_gap());
        let cocreativity = CoCreativityReport::from_events(&events);
        Ok(DesignOutcome {
            mode,
            spec,
            report,
            assessment,
            cocreativity,
            events,
            evaluations,
            rounds,
        })
    }

    /// Conversational mode: a persona-driven session using only the
    /// registry's known territory.
    pub fn design_conversational(
        &self,
        frame: &DataFrame,
        persona: &mut Persona,
        research_question: &str,
    ) -> Result<DesignOutcome> {
        let mut session = DesignSession::new(
            format!("conversational:{}", persona.profile.name),
            research_question,
            frame.clone(),
            persona.profile.clone(),
            self.config.clone(),
        );
        let summary = session.run_autonomous(persona)?;
        let best = session
            .best()
            .ok_or_else(|| PlatformError::Session("session executed no design".into()))?
            .clone();
        self.finish_outcome(
            DesignMode::Conversational,
            best.spec,
            frame,
            session.recorder().snapshot(),
            summary.executions,
            summary.rounds,
            0.0,
            0.0,
        )
    }

    /// Creative mode: pure computational-creativity search, recording the
    /// search's proposals into provenance.
    pub fn design_creative(&self, frame: &DataFrame, task: &Task) -> Result<DesignOutcome> {
        let recorder = Recorder::new();
        recorder.record(EventKind::SessionStarted {
            session: "creative".into(),
            dataset: format!("{} rows x {} cols", frame.n_rows(), frame.n_cols()),
            research_question: format!("optimize {:?}", task),
        });
        let mut config = self.config.search_config(0.6);
        // A configured session deadline bounds the creative search too: the
        // search preempts mid-generation once the allowance is spent and
        // returns its best partial result.
        if let Some(limit) = self.config.deadline {
            let clock = matilda_resilience::fault::clock();
            config.budget = Some(matilda_resilience::DeadlineBudget::start(
                clock.as_ref(),
                limit,
            ));
        }
        let outcome = search(task, frame, &config)?;
        let best = outcome.best().cloned().ok_or_else(|| {
            PlatformError::Session(
                "the search deadline expired before any candidate was evaluated".into(),
            )
        })?;
        let fp = best.fingerprint;
        recorder.record(EventKind::PipelineProposed {
            fingerprint: fp,
            canonical: matilda_pipeline::codec::encode(&best.spec),
            by: Actor::Creativity,
        });
        let spec = best.spec.clone();
        let novelty = best.novelty.unwrap_or(0.0);
        let surprise = best.surprise.unwrap_or(0.0);
        let report = self.final_report(&spec, frame)?;
        recorder.record(EventKind::PipelineExecuted {
            fingerprint: fp,
            score: report.test_score,
            scoring: report.scoring_name.to_string(),
        });
        recorder.record(EventKind::SessionClosed {
            final_fingerprint: Some(fp),
        });
        let assessment = assess(report.test_score, novelty, surprise, report.overfit_gap());
        let events = recorder.snapshot();
        let cocreativity = CoCreativityReport::from_events(&events);
        Ok(DesignOutcome {
            mode: DesignMode::Creative,
            spec,
            report,
            assessment,
            cocreativity,
            events,
            evaluations: outcome.evaluations(),
            rounds: 0,
        })
    }

    /// Hybrid (MATILDA) mode: the conversational design seeds a creative
    /// pattern search balanced by the user's exploration weight.
    pub fn design_hybrid(
        &self,
        frame: &DataFrame,
        persona: &mut Persona,
        research_question: &str,
    ) -> Result<DesignOutcome> {
        let mut session = DesignSession::new(
            format!("hybrid:{}", persona.profile.name),
            research_question,
            frame.clone(),
            persona.profile.clone(),
            self.config.clone(),
        );
        let summary = session.run_autonomous(persona)?;
        let seed_design = session
            .best()
            .ok_or_else(|| PlatformError::Session("session executed no design".into()))?
            .clone();
        // Creative refinement: a full pattern search *seeded* with the
        // conversational design, balanced by the user's own exploration
        // weight — this is the "known feeds unknown" flow of Figure 1.
        // The refinement gets its own log continuation: the session's
        // events minus its closing record, so the combined log stays a
        // single well-formed session that closes once, after refinement.
        let recorder = Recorder::new();
        for event in session.recorder().snapshot() {
            if !matches!(event.kind, EventKind::SessionClosed { .. }) {
                recorder.record(event.kind);
            }
        }
        let mut search_config = self
            .config
            .search_config(persona.profile.exploration_weight());
        search_config.seeds = vec![seed_design.spec.clone()];
        // The refinement shares the session's breaker registry: a pattern
        // quarantined during conversation stays quarantined in the search.
        search_config.breakers = Some(session.breaker_registry());
        if let Some(limit) = self.config.deadline {
            let clock = matilda_resilience::fault::clock();
            search_config.budget = Some(matilda_resilience::DeadlineBudget::start(
                clock.as_ref(),
                limit,
            ));
        }
        let outcome = search(&seed_design.spec.task, frame, &search_config)?;
        // A deadline-preempted refinement with nothing evaluated falls back
        // to the conversational seed — the known territory is never lost.
        let champion = outcome.best().cloned();
        // The champion is kept only when it genuinely beats the seed on the
        // cheap value signal; record its promotion into provenance.
        let (final_spec, final_novelty, final_surprise) = match champion {
            Some(best) if best.fingerprint != seed_design.fingerprint => {
                recorder.record(EventKind::PipelineProposed {
                    fingerprint: best.fingerprint,
                    canonical: matilda_pipeline::codec::encode(&best.spec),
                    by: Actor::Creativity,
                });
                recorder.record(EventKind::PipelineExecuted {
                    fingerprint: best.fingerprint,
                    score: best.value.unwrap_or(f64::NEG_INFINITY),
                    scoring: best.spec.scoring.name().to_string(),
                });
                (
                    best.spec.clone(),
                    best.novelty.unwrap_or(0.0),
                    best.surprise.unwrap_or(0.0),
                )
            }
            _ => (seed_design.spec.clone(), 0.0, 0.0),
        };
        recorder.record(EventKind::SessionClosed {
            final_fingerprint: Some(matilda_pipeline::fingerprint::fingerprint(&final_spec)),
        });
        self.finish_outcome(
            DesignMode::Hybrid,
            final_spec,
            frame,
            recorder.snapshot(),
            outcome.evaluations(),
            summary.rounds,
            final_novelty,
            final_surprise,
        )
    }
}

impl Default for Matilda {
    fn default() -> Self {
        Self::new(PlatformConfig::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matilda_data::Column;

    fn frame() -> DataFrame {
        DataFrame::from_columns(vec![
            ("x", Column::from_f64((0..80).map(f64::from).collect())),
            (
                "noise",
                Column::from_f64((0..80).map(|i| ((i * 13) % 7) as f64).collect()),
            ),
            (
                "label",
                Column::from_categorical(
                    &(0..80)
                        .map(|i| if i < 40 { "a" } else { "b" })
                        .collect::<Vec<_>>(),
                ),
            ),
        ])
        .unwrap()
    }

    fn platform() -> Matilda {
        Matilda::new(PlatformConfig::quick())
    }

    #[test]
    fn conversational_mode_produces_outcome() {
        let mut persona = Persona::trusting_novice("label", 3);
        let outcome = platform()
            .design_conversational(&frame(), &mut persona, "does x drive label?")
            .unwrap();
        assert_eq!(outcome.mode, DesignMode::Conversational);
        assert!(outcome.report.test_score > 0.6);
        assert!(outcome.rounds > 0);
        assert!(!outcome.events.is_empty());
    }

    #[test]
    fn creative_mode_produces_outcome() {
        let task = Task::Classification {
            target: "label".into(),
        };
        let outcome = platform().design_creative(&frame(), &task).unwrap();
        assert_eq!(outcome.mode, DesignMode::Creative);
        assert!(
            outcome.report.test_score > 0.7,
            "score {}",
            outcome.report.test_score
        );
        assert!(outcome.evaluations > 0);
        assert!(outcome.assessment.novelty >= 0.0);
        // The provenance audit passes for the machine-only session too.
        let audit = matilda_provenance::quality::audit(&outcome.events);
        assert!(audit.all_passed(), "{:?}", audit.failures());
    }

    #[test]
    fn hybrid_at_least_as_good_as_its_seed_conversation() {
        let mut p1 = Persona::trusting_novice("label", 5);
        let conv = platform()
            .design_conversational(&frame(), &mut p1, "rq")
            .unwrap();
        let mut p2 = Persona::trusting_novice("label", 5);
        let hybrid = platform().design_hybrid(&frame(), &mut p2, "rq").unwrap();
        assert_eq!(hybrid.mode, DesignMode::Hybrid);
        // Hybrid hill-climbs on CV value; on this easy data it should at
        // least match the conversational baseline's held-out score within
        // noise.
        assert!(
            hybrid.report.test_score >= conv.report.test_score - 0.1,
            "hybrid {} vs conversational {}",
            hybrid.report.test_score,
            conv.report.test_score
        );
        assert!(hybrid.evaluations > 0);
    }

    #[test]
    fn modes_have_stable_names() {
        assert_eq!(DesignMode::Conversational.name(), "conversational");
        assert_eq!(DesignMode::Creative.name(), "creative");
        assert_eq!(DesignMode::Hybrid.name(), "hybrid");
    }

    #[test]
    fn deterministic_creative_mode() {
        let task = Task::Classification {
            target: "label".into(),
        };
        let a = platform().design_creative(&frame(), &task).unwrap();
        let b = platform().design_creative(&frame(), &task).unwrap();
        assert_eq!(
            matilda_pipeline::fingerprint::fingerprint(&a.spec),
            matilda_pipeline::fingerprint::fingerprint(&b.spec)
        );
    }
}
