//! Co-creativity assessment in the style of Kantosalo & Riihiaho's
//! human–computer co-creative process evaluations: quantify how the work
//! was shared between human and machine and how the machine's contribution
//! was received.

use matilda_provenance::prelude::*;
use matilda_provenance::query::actor_stats;

/// Interaction metrics for one recorded session.
#[derive(Debug, Clone, PartialEq)]
pub struct CoCreativityReport {
    /// Suggestions made by the conversational loop (known territory).
    pub conversational_suggestions: usize,
    /// Suggestions made by the creativity engine (unknown territory).
    pub creative_suggestions: usize,
    /// Acceptance rate of conversational suggestions.
    pub conversational_acceptance: f64,
    /// Acceptance rate of creative suggestions.
    pub creative_acceptance: f64,
    /// Share of adopted suggestions that were creative, in `[0, 1]`.
    pub creative_share_of_adopted: f64,
    /// Distinct suggestion contents seen (diversity of the machine's offer).
    pub distinct_suggestions: usize,
    /// Pipelines executed during the session.
    pub executions: usize,
    /// Best score reached.
    pub best_score: Option<f64>,
}

impl CoCreativityReport {
    /// Compute the report from a session's event log.
    pub fn from_events(events: &[Event]) -> Self {
        let stats = actor_stats(events);
        let conversational = stats
            .iter()
            .find(|(a, _)| *a == Actor::Conversation)
            .map(|(_, s)| s.clone())
            .unwrap_or_default();
        let creative = stats
            .iter()
            .find(|(a, _)| *a == Actor::Creativity)
            .map(|(_, s)| s.clone())
            .unwrap_or_default();
        let adopted_total = conversational.adopted + creative.adopted;
        let mut contents: Vec<&str> = Vec::new();
        let mut executions = 0;
        for e in events {
            match &e.kind {
                EventKind::SuggestionMade { content, .. }
                    if !contents.contains(&content.as_str()) =>
                {
                    contents.push(content);
                }
                EventKind::PipelineExecuted { .. } => executions += 1,
                _ => {}
            }
        }
        CoCreativityReport {
            conversational_suggestions: conversational.suggestions,
            creative_suggestions: creative.suggestions,
            conversational_acceptance: conversational.acceptance_rate(),
            creative_acceptance: creative.acceptance_rate(),
            creative_share_of_adopted: if adopted_total == 0 {
                0.0
            } else {
                creative.adopted as f64 / adopted_total as f64
            },
            distinct_suggestions: contents.len(),
            executions,
            best_score: matilda_provenance::query::best_execution(events).map(|(_, s)| s),
        }
    }

    /// A scalar "co-creativity index" in `[0, 1]`: the harmonic blend of
    /// machine contribution (creative share) and human receptivity
    /// (creative acceptance). Zero when either side contributed nothing.
    pub fn index(&self) -> f64 {
        let a = self.creative_share_of_adopted;
        let b = self.creative_acceptance;
        if a + b == 0.0 {
            0.0
        } else {
            2.0 * a * b / (a + b)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matilda_provenance::Recorder;

    fn log(creative_adopted: bool) -> Vec<Event> {
        let r = Recorder::new();
        for (id, by, adopted) in [
            ("c1", Actor::Conversation, true),
            ("c2", Actor::Conversation, false),
            ("k1", Actor::Creativity, creative_adopted),
        ] {
            r.record(EventKind::SuggestionMade {
                suggestion_id: id.into(),
                by,
                content: format!("content {id}"),
                pattern: None,
            });
            r.record(EventKind::SuggestionDecided {
                suggestion_id: id.into(),
                adopted,
                reason: String::new(),
            });
        }
        r.record(EventKind::PipelineProposed {
            fingerprint: 1,
            canonical: "c".into(),
            by: Actor::Conversation,
        });
        r.record(EventKind::PipelineExecuted {
            fingerprint: 1,
            score: 0.8,
            scoring: "f1".into(),
        });
        r.snapshot()
    }

    #[test]
    fn counts_by_actor() {
        let report = CoCreativityReport::from_events(&log(true));
        assert_eq!(report.conversational_suggestions, 2);
        assert_eq!(report.creative_suggestions, 1);
        assert_eq!(report.conversational_acceptance, 0.5);
        assert_eq!(report.creative_acceptance, 1.0);
        assert_eq!(report.creative_share_of_adopted, 0.5);
        assert_eq!(report.executions, 1);
        assert_eq!(report.best_score, Some(0.8));
        assert_eq!(report.distinct_suggestions, 3);
    }

    #[test]
    fn index_zero_without_creative_contribution() {
        let report = CoCreativityReport::from_events(&log(false));
        assert_eq!(report.index(), 0.0);
    }

    #[test]
    fn index_positive_with_collaboration() {
        let report = CoCreativityReport::from_events(&log(true));
        assert!(report.index() > 0.5);
        assert!(report.index() <= 1.0);
    }

    #[test]
    fn empty_log() {
        let report = CoCreativityReport::from_events(&[]);
        assert_eq!(report.executions, 0);
        assert_eq!(report.index(), 0.0);
        assert_eq!(report.best_score, None);
    }
}
