//! # matilda-core
//!
//! The MATILDA platform: creativity-based, inclusive data-science pipeline
//! design with a human in the loop — the architecture of the paper's
//! Figure 1, runnable end to end.
//!
//! A [`session::DesignSession`] binds the five substrates together:
//!
//! 1. the **conversational loop** suggests scenarios per design phase,
//! 2. the **human** (or a simulated [`persona::Persona`]) adopts or rejects,
//! 3. the **creativity engine** injects unknown-territory alternatives on
//!    request ("surprise me"),
//! 4. the **executor** runs adopted designs on the data,
//! 5. the **provenance recorder** captures every decision for audit and
//!    replay.
//!
//! The [`platform::Matilda`] façade offers the three design modes compared
//! in the experiments: conversational-only, creative-only, and the hybrid
//! MATILDA mode.
//!
//! ```
//! use matilda_core::prelude::*;
//! use matilda_data::{Column, DataFrame};
//!
//! let df = DataFrame::from_columns(vec![
//!     ("x", Column::from_f64((0..40).map(f64::from).collect())),
//!     ("label", Column::from_categorical(
//!         &(0..40).map(|i| if i < 20 { "a" } else { "b" }).collect::<Vec<_>>())),
//! ]).unwrap();
//! let platform = Matilda::new(PlatformConfig::quick());
//! let mut persona = Persona::trusting_novice("label", 7);
//! let outcome = platform
//!     .design_conversational(&df, &mut persona, "does x drive label?")
//!     .unwrap();
//! assert!(outcome.report.test_score > 0.5);
//! ```

pub mod assess;
pub mod cocreativity;
pub mod config;
pub mod error;
pub mod explore;
pub mod narrate;
pub mod persona;
pub mod platform;
pub mod session;
pub mod sessionstore;

/// Convenient re-exports of the most used items.
pub mod prelude {
    pub use crate::assess::{assess, Assessment, Verdict};
    pub use crate::cocreativity::CoCreativityReport;
    pub use crate::config::PlatformConfig;
    pub use crate::error::{PlatformError, Result};
    pub use crate::explore::{discover_segments, narrate_segments, Segment, SegmentReport};
    pub use crate::narrate::{narrate_report, narrate_verdict};
    pub use crate::persona::Persona;
    pub use crate::platform::{DesignMode, DesignOutcome, Matilda};
    pub use crate::session::{
        DesignSession, ExecOutcome, ExecutedDesign, PreemptedRun, SessionSummary, StepOutcome,
    };
    pub use crate::sessionstore::{
        recover, RecoveryReport, RestoreError, SessionClass, SessionStore, StoreConfig,
    };
}

pub use assess::{Assessment, Verdict};
pub use cocreativity::CoCreativityReport;
pub use config::PlatformConfig;
pub use error::{PlatformError, Result};
pub use persona::Persona;
pub use platform::{DesignMode, DesignOutcome, Matilda};
pub use session::{DesignSession, SessionSummary};
