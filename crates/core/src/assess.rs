//! Final assessment of a designed pipeline against Boden's three
//! creativity criteria plus plain predictive quality — the platform's
//! answer to the paper's "decide whether results are fair enough for
//! considering an answer".

/// Qualitative verdict bands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Strong answer to the research question.
    Strong,
    /// Usable but worth refining.
    Adequate,
    /// Not yet an answer.
    Weak,
}

impl Verdict {
    /// Stable name for reports.
    pub fn name(self) -> &'static str {
        match self {
            Verdict::Strong => "strong",
            Verdict::Adequate => "adequate",
            Verdict::Weak => "weak",
        }
    }
}

/// The final assessment of one design.
#[derive(Debug, Clone, PartialEq)]
pub struct Assessment {
    /// Held-out score (in the design's own scoring rule, higher better).
    pub quality: f64,
    /// Archive-relative novelty of the design.
    pub novelty: f64,
    /// Surprise (standardized deviation from family expectation).
    pub surprise: f64,
    /// Train-minus-test gap; large gaps signal overfitting.
    pub overfit_gap: f64,
    /// Banded verdict.
    pub verdict: Verdict,
}

/// Quality thresholds for the verdict bands. Scores are assumed to be in
/// a "higher is better, ~1 is excellent" scale (accuracy, F1, R²); negative
/// RMSE-style scores band by distance from zero.
pub fn verdict_for(quality: f64, overfit_gap: f64) -> Verdict {
    let effective = if quality <= 0.0 {
        1.0 + quality
    } else {
        quality
    };
    if effective >= 0.8 && overfit_gap < 0.15 {
        Verdict::Strong
    } else if effective >= 0.6 {
        Verdict::Adequate
    } else {
        Verdict::Weak
    }
}

/// Assemble an assessment.
pub fn assess(quality: f64, novelty: f64, surprise: f64, overfit_gap: f64) -> Assessment {
    Assessment {
        quality,
        novelty,
        surprise,
        overfit_gap,
        verdict: verdict_for(quality, overfit_gap),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bands() {
        assert_eq!(verdict_for(0.95, 0.02), Verdict::Strong);
        assert_eq!(verdict_for(0.7, 0.05), Verdict::Adequate);
        assert_eq!(verdict_for(0.4, 0.0), Verdict::Weak);
    }

    #[test]
    fn overfit_downgrades() {
        assert_eq!(
            verdict_for(0.9, 0.3),
            Verdict::Adequate,
            "good score but overfit"
        );
    }

    #[test]
    fn negative_scale_scores() {
        // neg-RMSE of -0.1 is excellent.
        assert_eq!(verdict_for(-0.1, 0.0), Verdict::Strong);
        assert_eq!(verdict_for(-0.9, 0.0), Verdict::Weak);
    }

    #[test]
    fn assessment_carries_components() {
        let a = assess(0.85, 0.4, 1.2, 0.05);
        assert_eq!(a.verdict, Verdict::Strong);
        assert_eq!(a.novelty, 0.4);
        assert_eq!(a.surprise, 1.2);
        assert_eq!(a.verdict.name(), "strong");
    }
}
