//! Simulated human personas.
//!
//! The paper's platform has a human in the loop; for a runnable, measurable
//! reproduction the human is simulated by a persona whose accept/reject
//! policy depends on expertise and openness (DESIGN.md §5 documents the
//! substitution). The *control flow* of the loop is exactly the paper's:
//! suggest → decide → recalibrate.

use matilda_conversation::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A scripted-policy simulated user driving a dialogue.
#[derive(Debug, Clone)]
pub struct Persona {
    /// The profile the platform sees.
    pub profile: UserProfile,
    /// The target column the persona wants predicted.
    pub goal_target: String,
    /// Probability of accepting a non-creative (registry) suggestion.
    pub base_accept: f64,
    /// How often the persona asks to be surprised, in `[0, 1]` per round.
    pub curiosity: f64,
    rng: StdRng,
    asked_surprise: usize,
}

impl Persona {
    /// A new persona with an explicit policy.
    pub fn new(
        profile: UserProfile,
        goal_target: impl Into<String>,
        base_accept: f64,
        curiosity: f64,
        seed: u64,
    ) -> Self {
        Self {
            profile,
            goal_target: goal_target.into(),
            base_accept: base_accept.clamp(0.0, 1.0),
            curiosity: curiosity.clamp(0.0, 1.0),
            rng: StdRng::seed_from_u64(seed),
            asked_surprise: 0,
        }
    }

    /// A trusting non-technical domain expert: accepts most suggestions,
    /// rarely asks for surprises.
    pub fn trusting_novice(goal_target: impl Into<String>, seed: u64) -> Self {
        Self::new(
            UserProfile::novice("Nadia", "urbanism"),
            goal_target,
            0.85,
            0.1,
            seed,
        )
    }

    /// A picky data scientist: rejects more, asks for creative options.
    pub fn picky_expert(goal_target: impl Into<String>, seed: u64) -> Self {
        Self::new(
            UserProfile::data_scientist("Elias"),
            goal_target,
            0.5,
            0.4,
            seed,
        )
    }

    /// How many times the persona asked for a creative suggestion.
    pub fn surprises_requested(&self) -> usize {
        self.asked_surprise
    }

    /// Decide whether to adopt the pending suggestion.
    ///
    /// Creative suggestions are judged through openness: an open persona
    /// embraces them, a closed one distrusts them.
    pub fn decide(&mut self, suggestion: &Suggestion) -> bool {
        let p = if suggestion.creative {
            0.25 + 0.65 * self.profile.openness
        } else {
            self.base_accept
        };
        self.rng.gen_bool(p.clamp(0.0, 1.0))
    }

    /// Produce the persona's next utterance given the dialogue state.
    pub fn next_utterance(&mut self, dialogue: &Dialogue) -> String {
        match dialogue.state() {
            DialogueState::AwaitGoal => format!("I want to predict '{}'", self.goal_target),
            DialogueState::InPhase(_) => {
                if let Some(pending) = dialogue.pending_suggestion() {
                    let pending = pending.clone();
                    if self.decide(&pending) {
                        "yes".to_string()
                    } else {
                        "no".to_string()
                    }
                } else {
                    "ok".to_string()
                }
            }
            DialogueState::ReadyToRun => {
                if self.rng.gen_bool(self.curiosity) && self.asked_surprise < 3 {
                    self.asked_surprise += 1;
                    "surprise me".to_string()
                } else {
                    "run it".to_string()
                }
            }
            DialogueState::Closed => "".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matilda_pipeline::{Phase, PrepOp};

    fn suggestion(creative: bool) -> Suggestion {
        Suggestion {
            id: "s".into(),
            phase: Phase::Prepare,
            action: SuggestedAction::AddPrep(PrepOp::DropNulls),
            text: "t".into(),
            creative,
            pattern: creative.then(|| "mutant_shopping".to_string()),
        }
    }

    #[test]
    fn trusting_novice_accepts_most_registry_suggestions() {
        let mut p = Persona::trusting_novice("y", 1);
        let accepted = (0..200).filter(|_| p.decide(&suggestion(false))).count();
        assert!((140..=190).contains(&accepted), "{accepted}/200");
    }

    #[test]
    fn closed_persona_distrusts_creative_suggestions() {
        let mut closed = Persona::new(
            UserProfile::new("c", Expertise::Novice, "retail", 0.0),
            "y",
            0.9,
            0.0,
            2,
        );
        let mut open = Persona::new(
            UserProfile::new("o", Expertise::DataScientist, "ds", 1.0),
            "y",
            0.9,
            0.0,
            2,
        );
        let closed_accepts = (0..200)
            .filter(|_| closed.decide(&suggestion(true)))
            .count();
        let open_accepts = (0..200).filter(|_| open.decide(&suggestion(true))).count();
        assert!(
            open_accepts > closed_accepts + 40,
            "open {open_accepts} vs closed {closed_accepts}"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut p = Persona::picky_expert("y", seed);
            (0..50)
                .map(|_| p.decide(&suggestion(false)))
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn utterance_follows_state() {
        use matilda_data::{Column, DataFrame};
        let df = DataFrame::from_columns(vec![
            ("x", Column::from_f64((0..20).map(f64::from).collect())),
            (
                "y",
                Column::from_categorical(
                    &(0..20)
                        .map(|i| if i < 10 { "a" } else { "b" })
                        .collect::<Vec<_>>(),
                ),
            ),
        ])
        .unwrap();
        let mut persona = Persona::trusting_novice("y", 3);
        let dialogue = Dialogue::new(persona.profile.clone(), &df);
        let first = persona.next_utterance(&dialogue);
        assert!(first.contains("'y'"), "goal first: {first}");
    }
}
