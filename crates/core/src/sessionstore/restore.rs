//! Reading a session log back: typed errors, snapshot + tail merging, and
//! the short-read chaos hook.
//!
//! The loader is the half of event sourcing that must never panic: whatever
//! bytes a crash (or injected fault) left behind, the result is either a
//! [`SessionLogData`] replay can fold, or a typed [`RestoreError`] the
//! recovery pass turns into quarantine.

use super::log::SessionMeta;
use matilda_provenance::json::{event_from_json, parse_flat_object, FlatValue};
use matilda_provenance::Event;
use matilda_resilience as resilience;
use matilda_telemetry as telemetry;
use std::path::Path;

/// Why a session log could not be loaded or replayed. Every storage
/// corruption mode maps to a variant here — storage faults never escape as
/// panics.
#[derive(Debug, Clone, PartialEq)]
pub enum RestoreError {
    /// The directory holds no parseable records at all.
    EmptyLog,
    /// Records exist but no `meta` record does: the identity is gone.
    MissingMeta,
    /// The `meta` record exists but cannot be parsed.
    CorruptMeta(String),
    /// A parseable journal line carried an unparseable or inconsistent
    /// payload (e.g. a turn index leaving a gap).
    CorruptRecord {
        /// Journal sequence number of the offending record.
        seq: u64,
        /// Human-readable reason.
        detail: String,
    },
    /// The log was written under a different master seed than the config
    /// offered for replay; folding would silently diverge.
    SeedMismatch {
        /// Seed recorded in the log's meta.
        log: u64,
        /// Seed in the replaying config.
        config: u64,
    },
    /// Reading the log failed at the io layer (includes injected
    /// `store.read` io faults).
    Io(String),
    /// Re-stepping a recorded turn failed during replay.
    ReplayFailed {
        /// Zero-based index of the turn that failed.
        turn: usize,
        /// Human-readable reason.
        detail: String,
    },
    /// The log's meta names a dataset the current catalog cannot resolve.
    /// Restoring against a *different* dataset would silently change the
    /// design's meaning, so recovery refuses and leaves the log in place.
    DatasetMissing {
        /// The dataset name recorded in the log.
        dataset: String,
    },
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::EmptyLog => write!(f, "session log is empty"),
            RestoreError::MissingMeta => write!(f, "session log has no meta record"),
            RestoreError::CorruptMeta(detail) => {
                write!(f, "session meta record is corrupt: {detail}")
            }
            RestoreError::CorruptRecord { seq, detail } => {
                write!(f, "corrupt record at seq {seq}: {detail}")
            }
            RestoreError::SeedMismatch { log, config } => write!(
                f,
                "seed mismatch: log was written under {log}, replay offered {config}"
            ),
            RestoreError::Io(detail) => write!(f, "session log io error: {detail}"),
            RestoreError::ReplayFailed { turn, detail } => {
                write!(f, "replay failed at turn {turn}: {detail}")
            }
            RestoreError::DatasetMissing { dataset } => write!(
                f,
                "dataset `{dataset}` is not in the catalog; restore refused, log left in place"
            ),
        }
    }
}

impl std::error::Error for RestoreError {}

/// The structured contents of one session log, ready for replay.
#[derive(Debug, Clone)]
pub struct SessionLogData {
    /// The identity record.
    pub meta: SessionMeta,
    /// Every recorded user turn, in order — newest snapshot's turn list
    /// with the post-snapshot tail appended.
    pub turns: Vec<String>,
    /// Provenance events read back from the log (the audit trail as
    /// persisted; replay rebuilds its own).
    pub events: Vec<Event>,
    /// `true` when a `close` record (or a closed snapshot) is present.
    pub closed: bool,
    /// Digest recorded by the newest snapshot, if any.
    pub snapshot_digest: Option<u64>,
    /// Torn/unparseable journal lines skipped while reading.
    pub torn_lines: u64,
}

/// What a successful [`crate::session::DesignSession::restore`] rebuilt.
#[derive(Debug, Clone, PartialEq)]
pub struct RestoreReport {
    /// Turns re-stepped from the log.
    pub turns_replayed: usize,
    /// Provenance digest of the rebuilt session
    /// ([`matilda_provenance::digest_events`]).
    pub digest: u64,
    /// Whether replay ended with the session closed.
    pub closed: bool,
}

fn flat_u64(fields: &[(String, FlatValue)], key: &str) -> Option<u64> {
    match fields.iter().find(|(k, _)| k == key)? {
        (_, FlatValue::Num(raw)) => raw.parse().ok(),
        _ => None,
    }
}

fn flat_str(fields: &[(String, FlatValue)], key: &str) -> Option<String> {
    match fields.iter().find(|(k, _)| k == key)? {
        (_, FlatValue::Str(s)) => Some(s.clone()),
        _ => None,
    }
}

fn flat_bool(fields: &[(String, FlatValue)], key: &str) -> Option<bool> {
    match fields.iter().find(|(k, _)| k == key)? {
        (_, FlatValue::Bool(b)) => Some(*b),
        _ => None,
    }
}

struct Snapshot {
    turns: Vec<String>,
    digest: u64,
    closed: bool,
}

fn parse_snapshot(payload: &str) -> Option<Snapshot> {
    let fields = parse_flat_object(payload)?;
    let count = flat_u64(&fields, "turns")? as usize;
    let digest = flat_u64(&fields, "digest")?;
    let closed = flat_bool(&fields, "closed")?;
    let mut turns = Vec::with_capacity(count);
    for i in 0..count {
        turns.push(flat_str(&fields, &format!("t{i}"))?);
    }
    Some(Snapshot {
        turns,
        digest,
        closed,
    })
}

fn parse_turn(payload: &str) -> Option<(u64, String)> {
    let fields = parse_flat_object(payload)?;
    Some((flat_u64(&fields, "turn")?, flat_str(&fields, "text")?))
}

/// Load the session log under `dir`. Consults the `store.read` storage
/// faultpoint once per call: an injected short read truncates the final
/// segment's tail (simulating a partial read after a crash), an injected io
/// error surfaces as [`RestoreError::Io`].
pub(crate) fn load_dir(dir: &Path) -> Result<SessionLogData, RestoreError> {
    let paths =
        telemetry::journal::segment_paths(dir).map_err(|e| RestoreError::Io(e.to_string()))?;
    let mut texts = Vec::with_capacity(paths.len());
    for path in &paths {
        texts.push(std::fs::read_to_string(path).map_err(|e| RestoreError::Io(e.to_string()))?);
    }
    match resilience::fault::storage_faultpoint("store.read") {
        Ok(()) => {}
        Err(resilience::StorageFault::IoError) => {
            return Err(RestoreError::Io(
                "injected storage fault: io_error".to_string(),
            ));
        }
        // Both tearing kinds read as "the tail of the last segment never
        // made it": drop the final quarter, leaving at most one torn line
        // plus whole lost records — exactly what recovery must absorb.
        Err(resilience::StorageFault::ShortRead | resilience::StorageFault::TornWrite) => {
            if let Some(last) = texts.last_mut() {
                let keep = last.len().saturating_sub(last.len() / 4 + 1);
                last.truncate(keep);
            }
        }
    }

    let mut records = Vec::new();
    let mut torn_total = 0u64;
    for (path, text) in paths.iter().zip(&texts) {
        let mut torn_here = 0u64;
        for line in text.lines().filter(|l| !l.trim().is_empty()) {
            match telemetry::journal::parse_record(line) {
                Some(record) => records.push(record),
                None => torn_here += 1,
            }
        }
        if torn_here > 0 {
            torn_total += torn_here;
            telemetry::log::warn("core.sessionstore", "torn session log lines skipped")
                .field("segment", path.display().to_string())
                .field("torn_lines", torn_here)
                .emit();
        }
    }
    if torn_total > 0 {
        telemetry::metrics::global().add(telemetry::metrics::names::JOURNAL_TORN_LINES, torn_total);
    }
    records.sort_by_key(|r| r.seq);
    if records.is_empty() {
        return Err(RestoreError::EmptyLog);
    }

    let mut meta: Option<SessionMeta> = None;
    let mut turns: Vec<String> = Vec::new();
    let mut events: Vec<Event> = Vec::new();
    let mut closed = false;
    let mut snapshot_digest = None;
    for record in &records {
        match record.stream.as_str() {
            "meta" if meta.is_none() => {
                meta =
                    Some(SessionMeta::parse(&record.payload).map_err(RestoreError::CorruptMeta)?);
            }
            "turn" => {
                let (index, text) =
                    parse_turn(&record.payload).ok_or_else(|| RestoreError::CorruptRecord {
                        seq: record.seq,
                        detail: "unparseable turn record".to_string(),
                    })?;
                let next = turns.len() as u64;
                if index == next {
                    turns.push(text);
                } else if index > next {
                    return Err(RestoreError::CorruptRecord {
                        seq: record.seq,
                        detail: format!("turn {index} leaves a gap (have {next})"),
                    });
                }
                // index < next: already covered by a snapshot — idempotent.
            }
            "snapshot" => {
                let snapshot =
                    parse_snapshot(&record.payload).ok_or_else(|| RestoreError::CorruptRecord {
                        seq: record.seq,
                        detail: "unparseable snapshot record".to_string(),
                    })?;
                // The newest snapshot is authoritative for its prefix; a
                // snapshot can never know fewer turns than the records
                // before it established.
                if snapshot.turns.len() >= turns.len() {
                    turns = snapshot.turns;
                }
                snapshot_digest = Some(snapshot.digest);
                closed = closed || snapshot.closed;
            }
            "close" => closed = true,
            "provenance" => match event_from_json(&record.payload) {
                Ok(event) => events.push(event),
                Err(e) => {
                    return Err(RestoreError::CorruptRecord {
                        seq: record.seq,
                        detail: e.to_string(),
                    });
                }
            },
            // Foreign streams (a future schema) are ignored, not fatal.
            _ => {}
        }
    }
    let meta = meta.ok_or(RestoreError::MissingMeta)?;
    Ok(SessionLogData {
        meta,
        turns,
        events,
        closed,
        snapshot_digest,
        torn_lines: torn_total,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_payload_round_trips() {
        let turns = vec!["predict 'label'".to_string(), "yes\nplease".to_string()];
        let mut payload = format!(
            "{{\"version\":1,\"turns\":{},\"events\":9,\"digest\":12345,\"closed\":false",
            turns.len()
        );
        for (i, t) in turns.iter().enumerate() {
            payload.push_str(&format!(
                ",\"t{i}\":\"{}\"",
                matilda_provenance::json::escape(t)
            ));
        }
        payload.push('}');
        let snap = parse_snapshot(&payload).unwrap();
        assert_eq!(snap.turns, turns);
        assert_eq!(snap.digest, 12345);
        assert!(!snap.closed);
    }

    #[test]
    fn snapshot_with_missing_turn_key_is_rejected() {
        // Claims 2 turns but only carries t0.
        let payload = "{\"version\":1,\"turns\":2,\"events\":1,\"digest\":1,\
                       \"closed\":false,\"t0\":\"a\"}";
        assert!(parse_snapshot(payload).is_none());
    }

    #[test]
    fn turn_payload_parses() {
        assert_eq!(
            parse_turn("{\"turn\":3,\"text\":\"run it\"}").unwrap(),
            (3, "run it".to_string())
        );
        assert!(parse_turn("{\"turn\":3}").is_none());
        assert!(parse_turn("{\"text\":\"x\"}").is_none());
    }

    #[test]
    fn load_missing_dir_is_io_not_panic() {
        let err = load_dir(Path::new("/nonexistent/matilda-store-xyz")).unwrap_err();
        assert!(matches!(err, RestoreError::Io(_)));
    }
}
