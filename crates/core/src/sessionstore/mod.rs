//! Event-sourced session persistence: the durable complement of
//! [`crate::session::DesignSession`].
//!
//! The session's provenance/turn stream is the source of truth: a session is
//! a deterministic fold of its user turns over `(frame, config.seed)`, so
//! durably recording the turns (plus periodic snapshots and the provenance
//! tail) is enough to resurrect a crashed session bit-for-bit. The store
//! reuses the telemetry journal's segment/fsync machinery — one rotating
//! JSONL journal per session under a root directory:
//!
//! ```text
//! $MATILDA_SESSION_DIR/
//!   <session-id>/journal-000000.jsonl   one record per line
//!   quarantine/<session-id>/...         corrupt logs, moved aside
//! ```
//!
//! Streams within a session journal:
//!
//! - `meta` — first record: schema version, session name, research question,
//!   user profile and the master seed (replay refuses a seed mismatch).
//! - `turn` — `{"turn":N,"text":...}`: one record per successful user turn,
//!   in order. These are the commands of the event-sourced model.
//! - `provenance` — the session's provenance events, streamed as they are
//!   recorded (the audit trail; replay rebuilds them rather than reading
//!   them back).
//! - `snapshot` — a periodic, self-contained checkpoint embedding the full
//!   turn list plus the provenance digest at that point; recovery uses the
//!   newest snapshot and appends the turn tail, so old segments can rot
//!   without losing the session.
//! - `close` — the terminal record; its presence classifies a log as
//!   clean-closed.
//!
//! Writes go through a per-session circuit breaker (`store.write.<id>`) and
//! the platform retry policy, with chaos faultpoints
//! ([`matilda_resilience::fault::storage_faultpoint`], site `store.write`)
//! injecting torn writes and io errors deterministically. When the breaker
//! opens, persistence degrades to counted no-ops (`sessionstore.writes_skipped`,
//! flipping `/healthz`) and the conversation continues — losing durability
//! must never lose the session that is live in memory.
//!
//! The [`recover`] pass scans the store at startup, classifies every log
//! (clean-closed / in-flight / corrupt), resurrects in-flight sessions by
//! replay with a degraded-turn narration, and quarantines corrupt logs.

mod log;
mod recovery;
mod restore;

pub use self::log::{SessionLog, SessionMeta, WriteOutcome, META_VERSION};
pub use self::recovery::{
    recover, RecoveredSession, RecoveryOutcome, RecoveryReport, SessionClass,
};
pub use self::restore::{RestoreError, RestoreReport, SessionLogData};

use matilda_resilience as resilience;
use matilda_telemetry as telemetry;
use std::path::{Path, PathBuf};

/// Environment variable naming the session-store root directory.
pub const DIR_ENV: &str = "MATILDA_SESSION_DIR";
/// Environment variable overriding the snapshot cadence (events between
/// snapshots).
pub const SNAPSHOT_EVERY_ENV: &str = "MATILDA_SESSION_SNAPSHOT_EVERY";
/// Default number of provenance events between snapshot records.
pub const DEFAULT_SNAPSHOT_EVERY: usize = 32;
/// Subdirectory of the store root holding quarantined (corrupt) logs.
pub const QUARANTINE_DIR: &str = "quarantine";

/// Reduce a session name to a filesystem-safe directory id.
pub fn sanitize_id(name: &str) -> String {
    let id: String = name
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') {
                c
            } else {
                '_'
            }
        })
        .collect();
    if id.is_empty() {
        "session".to_string()
    } else {
        id
    }
}

/// Where and how a [`SessionStore`] keeps its logs.
#[derive(Debug, Clone)]
pub struct StoreConfig {
    /// Root directory: one subdirectory per session.
    pub dir: PathBuf,
    /// Provenance events between snapshot records.
    pub snapshot_every: usize,
}

impl StoreConfig {
    /// A config rooted at `dir` with the default snapshot cadence.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            snapshot_every: DEFAULT_SNAPSHOT_EVERY,
        }
    }

    /// The config described by the environment, or `None` when
    /// `MATILDA_SESSION_DIR` is unset or empty.
    pub fn from_env() -> Option<Self> {
        let dir = std::env::var(DIR_ENV).ok().filter(|d| !d.is_empty())?;
        let mut config = Self::new(dir);
        if let Some(every) = std::env::var(SNAPSHOT_EVERY_ENV)
            .ok()
            .and_then(|v| v.parse().ok())
        {
            config.snapshot_every = every;
        }
        Some(config)
    }
}

/// A root directory of per-session journals. Cheap to clone conceptually —
/// it holds only the config; each attached session owns its own journal.
#[derive(Debug, Clone)]
pub struct SessionStore {
    config: StoreConfig,
}

impl SessionStore {
    /// Open (create if missing) the store rooted at `config.dir`.
    pub fn open(config: StoreConfig) -> std::io::Result<Self> {
        std::fs::create_dir_all(&config.dir)?;
        Ok(Self { config })
    }

    /// Open the store described by `MATILDA_SESSION_DIR`, or `Ok(None)` when
    /// the environment does not ask for one.
    pub fn from_env() -> std::io::Result<Option<Self>> {
        match StoreConfig::from_env() {
            Some(config) => Self::open(config).map(Some),
            None => Ok(None),
        }
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.config.dir
    }

    /// The snapshot cadence sessions attached to this store use.
    pub fn snapshot_every(&self) -> usize {
        self.config.snapshot_every.max(1)
    }

    /// The directory holding session `id`'s journal.
    pub fn session_dir(&self, id: &str) -> PathBuf {
        self.config.dir.join(id)
    }

    /// Ids of every non-quarantined session in the store, sorted.
    pub fn session_ids(&self) -> std::io::Result<Vec<String>> {
        let mut ids = Vec::new();
        for entry in std::fs::read_dir(&self.config.dir)? {
            let entry = entry?;
            if !entry.file_type()?.is_dir() {
                continue;
            }
            let Some(name) = entry.file_name().to_str().map(str::to_string) else {
                continue;
            };
            if name != QUARANTINE_DIR {
                ids.push(name);
            }
        }
        ids.sort();
        Ok(ids)
    }

    /// Ids of quarantined (corrupt) session logs, sorted.
    pub fn quarantined_ids(&self) -> std::io::Result<Vec<String>> {
        let dir = self.config.dir.join(QUARANTINE_DIR);
        if !dir.exists() {
            return Ok(Vec::new());
        }
        let mut ids: Vec<String> = std::fs::read_dir(dir)?
            .filter_map(|e| e.ok())
            .filter(|e| e.path().is_dir())
            .filter_map(|e| e.file_name().to_str().map(str::to_string))
            .collect();
        ids.sort();
        Ok(ids)
    }

    /// `true` when session `id` already has journal segments on disk — the
    /// signal that an attaching session is resuming rather than starting.
    pub fn has_records(&self, id: &str) -> bool {
        telemetry::journal::segment_paths(&self.session_dir(id))
            .map(|paths| !paths.is_empty())
            .unwrap_or(false)
    }

    /// Open a durable log for session `id` (a fresh journal segment in its
    /// directory), wired to the session's breakers, clock and retry policy.
    pub fn create_log(
        &self,
        id: &str,
        breakers: std::sync::Arc<resilience::BreakerRegistry>,
        clock: std::sync::Arc<dyn resilience::Clock>,
        retry: resilience::RetryPolicy,
    ) -> std::io::Result<SessionLog> {
        SessionLog::create(
            self.session_dir(id),
            id,
            breakers,
            clock,
            retry,
            self.snapshot_every(),
        )
    }

    /// Read session `id`'s log back into structured form (meta, turns,
    /// provenance events, closed flag). Never panics: torn tails are counted
    /// and skipped, everything else lands in a typed [`RestoreError`].
    pub fn load(&self, id: &str) -> Result<SessionLogData, RestoreError> {
        restore::load_dir(&self.session_dir(id))
    }

    /// Move session `id`'s log into the quarantine subdirectory, returning
    /// the new path. The log is preserved for offline inspection, and the
    /// recovery pass will not trip over it again.
    pub fn quarantine(&self, id: &str) -> std::io::Result<PathBuf> {
        let quarantine_root = self.config.dir.join(QUARANTINE_DIR);
        std::fs::create_dir_all(&quarantine_root)?;
        let mut target = quarantine_root.join(id);
        // A second crash of a same-named session must not clobber the
        // evidence from the first.
        let mut suffix = 1;
        while target.exists() {
            target = quarantine_root.join(format!("{id}.{suffix}"));
            suffix += 1;
        }
        std::fs::rename(self.session_dir(id), &target)?;
        Ok(target)
    }

    /// A JSON summary of every session in the store — the `/sessions`
    /// endpoint body.
    pub fn listing_json(&self) -> String {
        let mut out = String::from("{\"sessions\":[");
        let mut first = true;
        for id in self.session_ids().unwrap_or_default() {
            if !first {
                out.push(',');
            }
            first = false;
            match self.load(&id) {
                Ok(data) => {
                    let class = if data.closed {
                        SessionClass::CleanClosed
                    } else {
                        SessionClass::InFlight
                    };
                    out.push_str(&format!(
                        "{{\"id\":\"{}\",\"class\":\"{}\",\"turns\":{},\"events\":{},\
                         \"torn_lines\":{}}}",
                        matilda_provenance::json::escape(&id),
                        class.name(),
                        data.turns.len(),
                        data.events.len(),
                        data.torn_lines
                    ));
                }
                Err(e) => {
                    out.push_str(&format!(
                        "{{\"id\":\"{}\",\"class\":\"corrupt\",\"error\":\"{}\"}}",
                        matilda_provenance::json::escape(&id),
                        matilda_provenance::json::escape(&e.to_string())
                    ));
                }
            }
        }
        out.push_str("],\"quarantined\":[");
        let mut first = true;
        for id in self.quarantined_ids().unwrap_or_default() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\"{}\"", matilda_provenance::json::escape(&id)));
        }
        out.push_str("]}");
        out
    }

    /// Register this store as the `/sessions` provider on the observability
    /// server: the endpoint then serves a live scan of the store.
    pub fn expose(&self) {
        let store = self.clone();
        telemetry::expose::register_sessions_provider(move || store.listing_json());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitize_keeps_safe_chars_and_replaces_the_rest() {
        assert_eq!(sanitize_id("my-session_01.a"), "my-session_01.a");
        assert_eq!(sanitize_id("a b/c:d"), "a_b_c_d");
        assert_eq!(sanitize_id(""), "session");
    }

    #[test]
    fn store_open_creates_root_and_lists_empty() {
        let dir = std::env::temp_dir().join(format!("matilda-store-open-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let store = SessionStore::open(StoreConfig::new(&dir)).unwrap();
        assert!(dir.is_dir());
        assert!(store.session_ids().unwrap().is_empty());
        assert!(store.quarantined_ids().unwrap().is_empty());
        assert!(!store.has_records("nope"));
        assert_eq!(store.listing_json(), "{\"sessions\":[],\"quarantined\":[]}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
