//! The durable per-session log writer.
//!
//! A [`SessionLog`] owns one rotating JSONL journal (the telemetry journal's
//! segment/fsync machinery) in the session's store directory. Every write
//! goes through the resilience gauntlet: a chaos faultpoint (`store.write`)
//! that can tear the line or fail the io, the platform retry policy for
//! transient failures, and a per-session circuit breaker
//! (`store.write.<id>`) that degrades persistence to counted no-ops once the
//! disk is clearly gone — the live session keeps talking either way.

use matilda_conversation::prelude::UserProfile;
use matilda_provenance::json::{escape, parse_flat_object, FlatValue};
use matilda_resilience as resilience;
use matilda_telemetry as telemetry;
use std::path::PathBuf;
use std::sync::Arc;

/// Schema version stamped on `meta` and `snapshot` records.
pub const META_VERSION: u32 = 1;

/// The session identity record — always the first record of a fresh log.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionMeta {
    /// Log schema version ([`META_VERSION`] at write time).
    pub version: u32,
    /// Session name (also the basis of the store directory id).
    pub session: String,
    /// The research question the session opened with.
    pub research_question: String,
    /// User display name.
    pub user_name: String,
    /// User expertise, as [`matilda_conversation::Expertise::name`].
    pub user_expertise: String,
    /// User discipline.
    pub user_domain: String,
    /// User openness in `[0, 1]`.
    pub user_openness: f64,
    /// The master seed the session ran under; replay refuses a mismatch.
    pub seed: u64,
    /// Catalog dataset the session designs over, when the opener named
    /// one. Recovery resolves this per session instead of assuming a
    /// default; `None` on logs written before the field existed.
    pub dataset: Option<String>,
}

impl SessionMeta {
    /// Serialize as the flat single-line JSON the store's journal carries.
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"version\":{},\"session\":\"{}\",\"research_question\":\"{}\",\
             \"user_name\":\"{}\",\"user_expertise\":\"{}\",\"user_domain\":\"{}\",\
             \"user_openness\":{},\"seed\":{}",
            self.version,
            escape(&self.session),
            escape(&self.research_question),
            escape(&self.user_name),
            escape(&self.user_expertise),
            escape(&self.user_domain),
            self.user_openness,
            self.seed
        );
        if let Some(dataset) = &self.dataset {
            out.push_str(&format!(",\"dataset\":\"{}\"", escape(dataset)));
        }
        out.push('}');
        out
    }

    /// Parse a `meta` payload back; `Err` carries a human-readable reason.
    pub fn parse(payload: &str) -> Result<Self, String> {
        let fields =
            parse_flat_object(payload).ok_or_else(|| "not a flat JSON object".to_string())?;
        let str_field = |key: &str| -> Result<String, String> {
            match fields.iter().find(|(k, _)| k == key) {
                Some((_, FlatValue::Str(s))) => Ok(s.clone()),
                Some(_) => Err(format!("field `{key}` is not a string")),
                None => Err(format!("missing field `{key}`")),
            }
        };
        let num_field = |key: &str| -> Result<String, String> {
            match fields.iter().find(|(k, _)| k == key) {
                Some((_, FlatValue::Num(raw))) => Ok(raw.clone()),
                Some(_) => Err(format!("field `{key}` is not a number")),
                None => Err(format!("missing field `{key}`")),
            }
        };
        Ok(Self {
            version: num_field("version")?
                .parse()
                .map_err(|_| "bad version".to_string())?,
            session: str_field("session")?,
            research_question: str_field("research_question")?,
            user_name: str_field("user_name")?,
            user_expertise: str_field("user_expertise")?,
            user_domain: str_field("user_domain")?,
            user_openness: num_field("user_openness")?
                .parse()
                .map_err(|_| "bad user_openness".to_string())?,
            seed: num_field("seed")?
                .parse()
                .map_err(|_| "bad seed".to_string())?,
            // Optional: logs written before the field existed stay
            // parseable, and recovery falls back to the caller's default.
            dataset: fields
                .iter()
                .find(|(k, _)| k == "dataset")
                .and_then(|(_, v)| match v {
                    FlatValue::Str(s) => Some(s.clone()),
                    _ => None,
                }),
        })
    }

    /// Rebuild the user profile replay needs.
    pub fn user_profile(&self) -> UserProfile {
        use matilda_conversation::Expertise;
        let expertise = match self.user_expertise.as_str() {
            "analyst" => Expertise::Analyst,
            "data_scientist" => Expertise::DataScientist,
            // Unknown labels degrade to the most-supported experience
            // rather than failing the restore.
            _ => Expertise::Novice,
        };
        UserProfile::new(
            self.user_name.clone(),
            expertise,
            self.user_domain.clone(),
            self.user_openness,
        )
    }
}

/// How one durable write ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteOutcome {
    /// Appended on the first attempt.
    Written,
    /// Appended after at least one retried transient failure
    /// (`sessionstore.writes_retried`).
    Retried,
    /// Dropped because the session's write breaker is open
    /// (`sessionstore.writes_skipped`): persistence is degraded, the
    /// session lives on in memory.
    Skipped,
    /// Every attempt failed (`sessionstore.write_errors`); the breaker was
    /// charged and an incident captured.
    Failed,
}

/// The durable log of one session. See the module docs for the record
/// streams and the degradation ladder.
#[derive(Debug)]
pub struct SessionLog {
    journal: telemetry::journal::Journal,
    dir: PathBuf,
    /// Breaker site: `store.write.<session-id>`.
    site: String,
    breakers: Arc<resilience::BreakerRegistry>,
    clock: Arc<dyn resilience::Clock>,
    retry: resilience::RetryPolicy,
    snapshot_every: usize,
    events_at_last_snapshot: usize,
}

impl SessionLog {
    pub(crate) fn create(
        dir: PathBuf,
        id: &str,
        breakers: Arc<resilience::BreakerRegistry>,
        clock: Arc<dyn resilience::Clock>,
        retry: resilience::RetryPolicy,
        snapshot_every: usize,
    ) -> std::io::Result<Self> {
        let journal =
            telemetry::journal::Journal::open(telemetry::journal::JournalConfig::new(&dir))?;
        Ok(Self {
            journal,
            dir,
            site: format!("store.write.{id}"),
            breakers,
            clock,
            retry,
            snapshot_every: snapshot_every.max(1),
            events_at_last_snapshot: 0,
        })
    }

    /// The session's journal directory.
    pub fn dir(&self) -> &std::path::Path {
        &self.dir
    }

    /// The log's breaker site (`store.write.<id>`).
    pub fn site(&self) -> &str {
        &self.site
    }

    /// One durable append through breaker → faultpoint → retry. Failures
    /// never escape: the worst case is a counted, incident-reported no-op.
    fn write(&self, stream: &str, payload: &str) -> WriteOutcome {
        let metrics = telemetry::metrics::global();
        let breaker = self.breakers.get(&self.site);
        if !breaker.try_acquire(self.clock.as_ref()) {
            // Open breaker: persistence is degraded to a counted no-op.
            // The session must keep running on memory alone.
            metrics.inc(telemetry::metrics::names::STORE_WRITES_SKIPPED);
            return WriteOutcome::Skipped;
        }
        let (result, stats) = self
            .retry
            .run(self.clock.as_ref(), None, &self.site, |_attempt| {
                match resilience::fault::storage_faultpoint("store.write") {
                    Err(resilience::StorageFault::TornWrite) => {
                        // The crash simulation: half the line reaches
                        // disk. Replay counts and skips the torn tail;
                        // the retry then writes the record whole.
                        let keep = (payload.len() + 24) / 2;
                        self.journal.append_torn(stream, payload, keep);
                        Err("injected storage fault: torn_write".to_string())
                    }
                    Err(fault) => Err(fault.to_string()),
                    Ok(()) => self
                        .journal
                        .try_append(stream, payload)
                        .map(|_seq| ())
                        .map_err(|e| e.to_string()),
                }
            });
        match result {
            Ok(()) => {
                breaker.on_success();
                if stats.retries > 0 {
                    metrics.inc(telemetry::metrics::names::STORE_WRITES_RETRIED);
                    WriteOutcome::Retried
                } else {
                    WriteOutcome::Written
                }
            }
            Err(reason) => {
                breaker.on_failure(self.clock.as_ref());
                metrics.inc(telemetry::metrics::names::STORE_WRITE_ERRORS);
                telemetry::log::warn("core.sessionstore", "session log write failed")
                    .field("site", self.site.as_str())
                    .field("stream", stream)
                    .field("reason", reason.as_str())
                    .emit();
                resilience::incident::report("store_write_failed", &self.site, &reason);
                WriteOutcome::Failed
            }
        }
    }

    /// Write the identity record (first record of a fresh log).
    pub fn write_meta(&self, meta: &SessionMeta) -> WriteOutcome {
        self.write("meta", &meta.to_json())
    }

    /// Write one turn record: the `index`-th successful user turn.
    pub fn write_turn(&self, index: usize, text: &str) -> WriteOutcome {
        self.write(
            "turn",
            &format!("{{\"turn\":{index},\"text\":\"{}\"}}", escape(text)),
        )
    }

    /// Stream one provenance event (pre-serialized flat JSON).
    pub fn write_provenance(&self, event_json: &str) -> WriteOutcome {
        self.write("provenance", event_json)
    }

    /// `true` when enough events accumulated since the last snapshot that
    /// the next checkpoint is due.
    pub fn snapshot_due(&self, total_events: usize) -> bool {
        total_events.saturating_sub(self.events_at_last_snapshot) >= self.snapshot_every
    }

    /// Write a self-contained checkpoint: the full turn list (keys
    /// `t0..tN-1`, keeping the payload a flat object), the provenance event
    /// count and digest at this point, and the closed flag.
    pub fn write_snapshot(
        &mut self,
        turns: &[String],
        events: usize,
        digest: u64,
        closed: bool,
    ) -> WriteOutcome {
        let mut payload = format!(
            "{{\"version\":{META_VERSION},\"turns\":{},\"events\":{events},\
             \"digest\":{digest},\"closed\":{closed}",
            turns.len()
        );
        for (i, turn) in turns.iter().enumerate() {
            payload.push_str(&format!(",\"t{i}\":\"{}\"", escape(turn)));
        }
        payload.push('}');
        let outcome = self.write("snapshot", &payload);
        if matches!(outcome, WriteOutcome::Written | WriteOutcome::Retried) {
            self.events_at_last_snapshot = events;
            telemetry::metrics::global().inc(telemetry::metrics::names::STORE_SNAPSHOTS_WRITTEN);
        }
        outcome
    }

    /// Write the terminal record marking a clean close.
    pub fn write_close(&self, final_fingerprint: Option<u64>) -> WriteOutcome {
        let fp = final_fingerprint
            .map(|v| v.to_string())
            .unwrap_or_else(|| "null".to_string());
        self.write("close", &format!("{{\"final_fingerprint\":{fp}}}"))
    }

    /// Flush (and fsync per the journal policy) everything appended so far.
    pub fn flush(&self) {
        self.journal.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meta_round_trips_with_escapes() {
        let meta = SessionMeta {
            version: META_VERSION,
            session: "city \"quotes\"".into(),
            research_question: "line\nbreak?".into(),
            user_name: "Ada".into(),
            user_expertise: "novice".into(),
            user_domain: "urbanism".into(),
            user_openness: 0.3,
            seed: u64::MAX - 5,
            dataset: Some("urban \\ demo".into()),
        };
        let parsed = SessionMeta::parse(&meta.to_json()).unwrap();
        assert_eq!(parsed, meta);
        let profile = parsed.user_profile();
        assert_eq!(profile.name, "Ada");
        assert_eq!(profile.expertise.name(), "novice");
    }

    #[test]
    fn meta_parse_rejects_torn_and_wrong_shapes() {
        assert!(SessionMeta::parse("").is_err());
        assert!(SessionMeta::parse("{\"version\":1}").is_err());
        let full = SessionMeta {
            version: 1,
            session: "s".into(),
            research_question: "r".into(),
            user_name: "u".into(),
            user_expertise: "analyst".into(),
            user_domain: "d".into(),
            user_openness: 0.5,
            seed: 7,
            dataset: None,
        }
        .to_json();
        for cut in 1..full.len() {
            // No prefix may parse successfully or panic.
            assert!(SessionMeta::parse(&full[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn unknown_expertise_degrades_to_novice() {
        let meta = SessionMeta {
            version: 1,
            session: "s".into(),
            research_question: "r".into(),
            user_name: "u".into(),
            user_expertise: "wizard".into(),
            user_domain: "d".into(),
            user_openness: 0.5,
            seed: 7,
            dataset: None,
        };
        assert_eq!(meta.user_profile().expertise.name(), "novice");
    }

    #[test]
    fn meta_without_dataset_field_still_parses() {
        // A PR-9-era log has no dataset field; parsing must not start
        // refusing the old schema.
        let legacy = "{\"version\":1,\"session\":\"s\",\"research_question\":\"r\",\
                      \"user_name\":\"u\",\"user_expertise\":\"novice\",\
                      \"user_domain\":\"d\",\"user_openness\":0.5,\"seed\":7}";
        let meta = SessionMeta::parse(legacy).unwrap();
        assert_eq!(meta.dataset, None);
    }
}
