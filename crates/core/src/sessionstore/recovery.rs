//! The startup recovery pass: scan the store, classify every log, resurrect
//! the in-flight ones, quarantine the corrupt ones.

use super::log::SessionMeta;
use super::restore::RestoreError;
use super::SessionStore;
use crate::config::PlatformConfig;
use crate::session::DesignSession;
use matilda_data::DataFrame;
use matilda_resilience as resilience;
use matilda_telemetry as telemetry;
use std::time::Duration;

/// What the recovery pass decided a session log is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionClass {
    /// A `close` record is present: nothing to do.
    CleanClosed,
    /// The log ends mid-session: the process died with the session live.
    InFlight,
    /// The log cannot be loaded or replayed: moved to quarantine.
    Corrupt,
}

impl SessionClass {
    /// Stable lowercase name (used in `/sessions` and experiment output).
    pub fn name(self) -> &'static str {
        match self {
            SessionClass::CleanClosed => "clean_closed",
            SessionClass::InFlight => "in_flight",
            SessionClass::Corrupt => "corrupt",
        }
    }
}

/// An in-flight session the pass brought back to life.
pub struct RecoveredSession {
    /// Store directory id.
    pub id: String,
    /// The resurrected session, re-attached to the store so it keeps
    /// persisting from here on.
    pub session: DesignSession,
    /// What the platform says to the returning user — recovery presented
    /// as a degraded turn, not a stack trace.
    pub narration: String,
    /// Turns re-stepped from the log.
    pub turns_replayed: usize,
    /// Provenance digest of the rebuilt session.
    pub digest: u64,
    /// Wall-clock time the restore took.
    pub latency: Duration,
    /// Dataset name recorded in the log's meta, when the session named
    /// one — the adopting fleet should keep resolving this, not a default.
    pub dataset: Option<String>,
}

/// One scanned log's verdict.
#[derive(Debug, Clone)]
pub struct RecoveryOutcome {
    /// Store directory id.
    pub id: String,
    /// The classification.
    pub class: SessionClass,
    /// Detail for corrupt logs (the restore error) or in-flight logs that
    /// could not be resumed (e.g. no dataset available).
    pub detail: Option<String>,
}

/// Everything one recovery pass did.
pub struct RecoveryReport {
    /// Verdict per scanned session, in id order.
    pub outcomes: Vec<RecoveryOutcome>,
    /// Sessions resurrected and re-attached.
    pub resumed: Vec<RecoveredSession>,
    /// Ids moved to quarantine this pass.
    pub quarantined: Vec<String>,
}

impl RecoveryReport {
    /// Count of sessions in `class`.
    pub fn count(&self, class: SessionClass) -> usize {
        self.outcomes.iter().filter(|o| o.class == class).count()
    }
}

fn quarantine(
    store: &SessionStore,
    id: &str,
    error: &RestoreError,
    quarantined: &mut Vec<String>,
) -> Option<String> {
    telemetry::metrics::global().inc(telemetry::metrics::names::STORE_SESSIONS_QUARANTINED);
    resilience::incident::report("session_corrupt", "store.recover", &error.to_string());
    match store.quarantine(id) {
        Ok(path) => {
            telemetry::log::warn("core.sessionstore", "corrupt session log quarantined")
                .field("session", id)
                .field("error", error.to_string())
                .field("moved_to", path.display().to_string())
                .emit();
            quarantined.push(id.to_string());
            Some(error.to_string())
        }
        Err(io) => {
            // Even the quarantine move can fail; the log stays put and the
            // pass reports both problems.
            telemetry::log::warn("core.sessionstore", "quarantine move failed")
                .field("session", id)
                .field("error", io.to_string())
                .emit();
            Some(format!("{error} (quarantine move failed: {io})"))
        }
    }
}

/// Scan `store`, classify every session log, resurrect in-flight sessions by
/// snapshot + tail replay, and quarantine corrupt logs.
///
/// `frame_for` supplies the dataset a session ran over (the store records
/// the design conversation, not the data); returning `None` leaves that log
/// in place, unclassified beyond in-flight.
///
/// Replay runs under the *logged* seed (`meta.seed`), so a recovered
/// session's provenance digest matches a straight-through run of the same
/// turns — the property the E12 kill-and-resurrect experiment gates on.
pub fn recover(
    store: &SessionStore,
    config: &PlatformConfig,
    mut frame_for: impl FnMut(&SessionMeta) -> Option<DataFrame>,
) -> RecoveryReport {
    let mut report = RecoveryReport {
        outcomes: Vec::new(),
        resumed: Vec::new(),
        quarantined: Vec::new(),
    };
    let ids = match store.session_ids() {
        Ok(ids) => ids,
        Err(e) => {
            telemetry::log::warn("core.sessionstore", "recovery scan failed")
                .field("error", e.to_string())
                .emit();
            return report;
        }
    };
    for id in ids {
        let data = match store.load(&id) {
            Ok(data) => data,
            Err(error) => {
                let detail = quarantine(store, &id, &error, &mut report.quarantined);
                report.outcomes.push(RecoveryOutcome {
                    id,
                    class: SessionClass::Corrupt,
                    detail,
                });
                continue;
            }
        };
        if data.closed {
            report.outcomes.push(RecoveryOutcome {
                id,
                class: SessionClass::CleanClosed,
                detail: None,
            });
            continue;
        }
        let Some(frame) = frame_for(&data.meta) else {
            // Distinguish "the caller has no data at all" from "the log
            // names a dataset this catalog no longer carries". The latter
            // is a typed refusal — restoring over a *different* dataset
            // would silently change what the recorded design means.
            let detail = match &data.meta.dataset {
                Some(name) => {
                    let error = RestoreError::DatasetMissing {
                        dataset: name.clone(),
                    };
                    resilience::incident::report(
                        "dataset_missing",
                        "store.recover",
                        &error.to_string(),
                    );
                    telemetry::log::warn("core.sessionstore", "restore refused: dataset missing")
                        .field("session", id.as_str())
                        .field("dataset", name.as_str())
                        .emit();
                    error.to_string()
                }
                None => "no dataset available; log left in place".to_string(),
            };
            report.outcomes.push(RecoveryOutcome {
                id,
                class: SessionClass::InFlight,
                detail: Some(detail),
            });
            continue;
        };
        // Replay under the logged seed: determinism is against the run that
        // wrote the log, not whatever the caller's config happens to hold.
        let replay_config = PlatformConfig {
            seed: data.meta.seed,
            ..config.clone()
        };
        let started = std::time::Instant::now();
        match DesignSession::restore(frame, replay_config, &data) {
            Ok((mut session, restored)) => {
                if let Some(name) = &data.meta.dataset {
                    session.set_dataset_label(name);
                }
                let latency = started.elapsed();
                let metrics = telemetry::metrics::global();
                metrics.inc(telemetry::metrics::names::STORE_SESSIONS_RECOVERED);
                metrics.observe(
                    telemetry::metrics::names::STORE_RESTORE_SECONDS,
                    latency.as_secs_f64(),
                );
                telemetry::log::info("core.sessionstore", "in-flight session recovered")
                    .field("session", id.as_str())
                    .field("turns_replayed", restored.turns_replayed as u64)
                    .field("digest", restored.digest)
                    .field("latency_ms", latency.as_millis() as u64)
                    .emit();
                let mut detail = None;
                if let Err(io) = session.attach_store(store) {
                    // The session is alive either way; it just will not
                    // persist further turns.
                    detail = Some(format!("recovered, but re-attach failed: {io}"));
                }
                let executions = session.executed().len();
                let narration = format!(
                    "We were interrupted mid-design — I found our saved session and \
                     replayed it: {} turn{} restored, {} stud{} already run. Nothing \
                     is lost; let's pick up where we left off.",
                    restored.turns_replayed,
                    if restored.turns_replayed == 1 {
                        ""
                    } else {
                        "s"
                    },
                    executions,
                    if executions == 1 { "y" } else { "ies" },
                );
                report.resumed.push(RecoveredSession {
                    id: id.clone(),
                    session,
                    narration,
                    turns_replayed: restored.turns_replayed,
                    digest: restored.digest,
                    latency,
                    dataset: data.meta.dataset.clone(),
                });
                report.outcomes.push(RecoveryOutcome {
                    id,
                    class: SessionClass::InFlight,
                    detail,
                });
            }
            Err(error) => {
                let detail = quarantine(store, &id, &error, &mut report.quarantined);
                report.outcomes.push(RecoveryOutcome {
                    id,
                    class: SessionClass::Corrupt,
                    detail,
                });
            }
        }
    }
    report
}
