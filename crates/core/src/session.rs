//! The human-in-the-loop design session: the live object binding the
//! conversational loop, the creativity engine, the executor and the
//! provenance recorder — one full traversal of Figure 1.

use crate::config::PlatformConfig;
use crate::error::{PlatformError, Result};
use crate::persona::Persona;
use matilda_conversation::prelude::*;
use matilda_creativity::apprentice::{ApprenticeAgent, LadderPolicy, Role};
use matilda_creativity::grammar;
use matilda_data::DataFrame;
use matilda_pipeline::prelude::*;
use matilda_provenance::prelude::*;
use matilda_resilience as resilience;
use matilda_telemetry as telemetry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One executed design within a session.
#[derive(Debug, Clone)]
pub struct ExecutedDesign {
    /// Fingerprint of the design.
    pub fingerprint: u64,
    /// The design itself.
    pub spec: PipelineSpec,
    /// Its execution report.
    pub report: PipelineReport,
}

/// A run cut short by the deadline budget: the completed prefix is kept so
/// the turn can degrade gracefully instead of discarding the work done.
#[derive(Debug, Clone)]
pub struct PreemptedRun {
    /// Fingerprint of the design that was running.
    pub fingerprint: u64,
    /// The design itself.
    pub spec: PipelineSpec,
    /// Cancellation site that tripped (e.g. `ml.fit.logistic`).
    pub site: String,
    /// Task ids that completed before the trip, in execution order.
    pub completed_tasks: Vec<String>,
    /// Report over the completed prefix (spans and timings preserved).
    pub partial: PipelineReport,
}

/// How one execution attempt ended: a full report, or a budget preemption.
#[derive(Debug, Clone)]
pub enum ExecOutcome {
    /// The run completed and was recorded as an executed design.
    Done(ExecutedDesign),
    /// The deadline budget expired mid-run.
    Preempted(PreemptedRun),
}

/// The outcome of one session step.
#[derive(Debug, Clone)]
pub struct StepOutcome {
    /// The platform's textual reply.
    pub reply: String,
    /// A design executed during this step, if any.
    pub executed: Option<ExecutedDesign>,
    /// Whether the session closed during this step.
    pub closed: bool,
}

/// Summary of a completed autonomous session.
#[derive(Debug, Clone)]
pub struct SessionSummary {
    /// Rounds of user input consumed.
    pub rounds: usize,
    /// Best held-out score across executed designs.
    pub best_score: Option<f64>,
    /// Fingerprint of the best design.
    pub best_fingerprint: Option<u64>,
    /// Number of designs executed.
    pub executions: usize,
    /// Number of creative suggestions injected.
    pub creative_suggestions: usize,
    /// Suggestions adopted / decided.
    pub adopted: usize,
    /// Total decided suggestions.
    pub decided: usize,
    /// The creative agent's final role on the Apprentice ladder.
    pub apprentice_role: Role,
}

/// Map the first repairable validation failure to a fix-up suggestion the
/// user can adopt — the conversational loop "recalibrating the tasks".
fn repair_suggestion(violations: &[matilda_pipeline::validate::Violation]) -> Option<Suggestion> {
    for v in violations {
        let (action, text) = match v.code {
            "unhandled_nulls" => (
                SuggestedAction::AddPrep(PrepOp::Impute(
                    matilda_data::transform::ImputeStrategy::Median,
                )),
                "Your data still has missing values; let me fill them first".to_string(),
            ),
            "no_features" => (
                SuggestedAction::AddPrep(PrepOp::OneHotEncode),
                "I need usable feature columns; let me turn the categories into numbers"
                    .to_string(),
            ),
            _ => continue,
        };
        return Some(Suggestion {
            id: String::new(),
            phase: Phase::Prepare,
            action,
            text,
            creative: false,
            pattern: None,
        });
    }
    None
}

/// A live design session.
pub struct DesignSession {
    name: String,
    research_question: String,
    frame: DataFrame,
    config: PlatformConfig,
    dialogue: Dialogue,
    recorder: Recorder,
    user: UserProfile,
    rng: StdRng,
    executed: Vec<ExecutedDesign>,
    preempted: Vec<PreemptedRun>,
    creative_injected: usize,
    apprentice: ApprenticeAgent,
    closed: bool,
    /// Every successful user turn, in order — the command log of the
    /// event-sourced model. A session is a deterministic fold of these over
    /// `(frame, config.seed)`, which is what makes crash recovery a replay.
    turn_log: Vec<String>,
    /// The durable store log, when persistence is attached.
    store: Option<crate::sessionstore::SessionLog>,
    /// Provenance events already streamed to the store.
    persisted_seq: usize,
    /// The telemetry trace identity minted for this session; every span,
    /// log event and provenance event emitted during the session carries it.
    trace_id: telemetry::TraceId,
    /// The clock retries, breakers and the deadline budget run on —
    /// resolved at session open, so a session created inside a chaos scope
    /// inherits its virtual clock and never sleeps for real.
    clock: std::sync::Arc<dyn resilience::Clock>,
    /// Per-site circuit breakers quarantining repeatedly-failing sites.
    /// Shared (`Arc`) so the creative search can consult the same registry
    /// that quarantines conversational patterns.
    breakers: std::sync::Arc<resilience::BreakerRegistry>,
    /// The session's deadline allowance, when configured.
    budget: Option<resilience::DeadlineBudget>,
    /// The current turn's latency allowance; reset at the top of each
    /// `step` when `config.turn_deadline` is set.
    turn_budget: Option<resilience::DeadlineBudget>,
    /// Catalog dataset label recorded in the store meta, when the opener
    /// named one (the daemon sets this; recovery resolves it per session).
    dataset_label: Option<String>,
    /// Brownout multiplier applied to each turn's deadline allowance
    /// (`1.0` = nominal; the daemon's load governor shrinks it).
    brownout_scale: f64,
    /// Creative-search generations before any brownout cap, so recovering
    /// to nominal restores the configured value.
    nominal_generations: usize,
}

impl DesignSession {
    /// Open a session for `user` over `frame`.
    pub fn new(
        name: impl Into<String>,
        research_question: impl Into<String>,
        frame: DataFrame,
        user: UserProfile,
        config: PlatformConfig,
    ) -> Self {
        let name = name.into();
        let research_question = research_question.into();
        let trace_id = telemetry::trace::next_trace_id();
        let _trace = telemetry::trace::enter(trace_id);
        telemetry::log::info("core.session", "session opened")
            .field("session", name.as_str())
            .field("rows", frame.n_rows() as u64)
            .field("cols", frame.n_cols() as u64)
            .emit();
        let recorder = Recorder::new();
        recorder.record(EventKind::SessionStarted {
            session: name.clone(),
            dataset: format!("{} rows x {} cols", frame.n_rows(), frame.n_cols()),
            research_question: research_question.clone(),
        });
        let dialogue = Dialogue::new(user.clone(), &frame);
        let rng = StdRng::seed_from_u64(config.seed ^ 0x5e55_1011);
        // The artificial team member starts one rung up from observer so
        // it can at least propose preparation steps; everything beyond
        // that is earned (Apprentice Framework).
        let mut apprentice = ApprenticeAgent::new("matilda-agent", LadderPolicy::default());
        apprentice.record_outcome(0, true);
        apprentice.record_outcome(0, true);
        apprentice.record_outcome(0, true); // promote Observer -> Apprentice
        let clock = resilience::fault::clock();
        let budget = config
            .deadline
            .map(|limit| resilience::DeadlineBudget::start(clock.as_ref(), limit));
        let breakers = std::sync::Arc::new(resilience::BreakerRegistry::new(
            config.breaker_threshold,
            config.breaker_cooldown,
        ));
        let nominal_generations = config.generations;
        Self {
            name,
            research_question,
            frame,
            config,
            dialogue,
            recorder,
            user,
            rng,
            executed: Vec::new(),
            preempted: Vec::new(),
            creative_injected: 0,
            apprentice,
            closed: false,
            turn_log: Vec::new(),
            store: None,
            persisted_seq: 0,
            trace_id,
            clock,
            breakers,
            budget,
            turn_budget: None,
            dataset_label: None,
            brownout_scale: 1.0,
            nominal_generations,
        }
    }

    /// Record the catalog dataset this session designs over, so the store
    /// meta carries it and a restarted daemon resolves the *same* data
    /// instead of assuming a default. Call before
    /// [`DesignSession::attach_store`]; the label only reaches disk with
    /// the meta record of a fresh log.
    pub fn set_dataset_label(&mut self, label: &str) {
        self.dataset_label = Some(label.to_string());
    }

    /// The recorded dataset label, if any.
    pub fn dataset_label(&self) -> Option<&str> {
        self.dataset_label.as_deref()
    }

    /// Apply (or lift) brownout degradation: `deadline_scale` multiplies
    /// each subsequent turn's latency allowance, and `generation_cap`
    /// clamps the creative-search generations in the session's config so
    /// any search launched under it stays small. `(1.0, None)` restores
    /// nominal behavior.
    pub fn set_brownout(&mut self, deadline_scale: f64, generation_cap: Option<usize>) {
        self.brownout_scale = deadline_scale.clamp(0.05, 1.0);
        self.config.generations = match generation_cap {
            Some(cap) => self.nominal_generations.min(cap),
            None => self.nominal_generations,
        };
    }

    /// The brownout state: `(deadline scale, effective generations)`.
    pub fn brownout(&self) -> (f64, usize) {
        (self.brownout_scale, self.config.generations)
    }

    /// Circuit breakers currently open across this session's sites — one
    /// of the daemon's overload signals.
    pub fn open_breakers(&self) -> usize {
        self.breakers
            .states(self.clock.as_ref())
            .iter()
            .filter(|(_, state)| matches!(state, resilience::BreakerState::Open))
            .count()
    }

    /// Rebuild a session from its durable log by deterministic replay: a
    /// fresh session is opened from the log's meta (same name, research
    /// question, user profile and seed) and every recorded turn is
    /// re-stepped in order. The caller supplies the dataset — the store
    /// records the design conversation, not the data.
    ///
    /// The rebuilt session is *not* attached to a store; recovery attaches
    /// it after the fact, so replay itself never writes.
    pub fn restore(
        frame: DataFrame,
        config: PlatformConfig,
        data: &crate::sessionstore::SessionLogData,
    ) -> std::result::Result<
        (Self, crate::sessionstore::RestoreReport),
        crate::sessionstore::RestoreError,
    > {
        use crate::sessionstore::RestoreError;
        if data.meta.seed != config.seed {
            return Err(RestoreError::SeedMismatch {
                log: data.meta.seed,
                config: config.seed,
            });
        }
        let mut session = Self::new(
            data.meta.session.clone(),
            data.meta.research_question.clone(),
            frame,
            data.meta.user_profile(),
            config,
        );
        for (turn, text) in data.turns.iter().enumerate() {
            if session.closed {
                return Err(RestoreError::ReplayFailed {
                    turn,
                    detail: "turn recorded after the session closed".to_string(),
                });
            }
            session.step(text).map_err(|e| RestoreError::ReplayFailed {
                turn,
                detail: e.to_string(),
            })?;
        }
        let digest = session.provenance_digest();
        let report = crate::sessionstore::RestoreReport {
            turns_replayed: data.turns.len(),
            digest,
            closed: session.closed,
        };
        Ok((session, report))
    }

    /// Attach durable persistence: every subsequent successful turn is
    /// written to the session's log in `store` (turn record + provenance
    /// tail + periodic snapshot), and closing writes the terminal record.
    ///
    /// Attach immediately after [`DesignSession::new`] (or after
    /// [`DesignSession::restore`], where the log already holds the replayed
    /// prefix); turns taken before attaching are not in the log, and a later
    /// recovery would reject the resulting gap.
    pub fn attach_store(
        &mut self,
        store: &crate::sessionstore::SessionStore,
    ) -> std::io::Result<()> {
        let id = crate::sessionstore::sanitize_id(&self.name);
        let fresh = !store.has_records(&id);
        let log = store.create_log(
            &id,
            std::sync::Arc::clone(&self.breakers),
            std::sync::Arc::clone(&self.clock),
            self.config.retry.clone(),
        )?;
        if fresh {
            log.write_meta(&crate::sessionstore::SessionMeta {
                version: crate::sessionstore::META_VERSION,
                session: self.name.clone(),
                research_question: self.research_question.clone(),
                user_name: self.user.name.clone(),
                user_expertise: self.user.expertise.name().to_string(),
                user_domain: self.user.domain.clone(),
                user_openness: self.user.openness,
                seed: self.config.seed,
                dataset: self.dataset_label.clone(),
            });
            log.flush();
            // Everything recorded so far (the session_started event) flows
            // out with the first persisted turn.
            self.persisted_seq = 0;
        } else {
            // Resuming an existing log: the replayed prefix is already on
            // disk; only genuinely new events should stream from here.
            self.persisted_seq = self.recorder.len();
        }
        self.store = Some(log);
        Ok(())
    }

    /// The stable, ephemeral-id-free digest of this session's provenance
    /// stream ([`matilda_provenance::digest_events`]) — equal across a
    /// straight-through run and a crash-recovered replay of the same turns.
    pub fn provenance_digest(&self) -> u64 {
        matilda_provenance::digest_events(&self.recorder.snapshot())
    }

    /// Successful user turns so far, in order.
    pub fn turn_log(&self) -> &[String] {
        &self.turn_log
    }

    /// Persist the just-completed turn: the turn record, the provenance
    /// tail since the last persist, a snapshot when one is due, and the
    /// close record when the turn closed the session. No-op without an
    /// attached store; write failures degrade inside the log (retry →
    /// breaker → counted no-op) and never surface here.
    fn persist_turn(&mut self) {
        if self.store.is_none() {
            return;
        }
        let events = self.recorder.snapshot();
        let final_fingerprint = self.best().map(|d| d.fingerprint);
        let closed = self.closed;
        let turn_index = self.turn_log.len() - 1;
        let log = self.store.as_mut().expect("checked above");
        log.write_turn(turn_index, &self.turn_log[turn_index]);
        let from = self.persisted_seq.min(events.len());
        for event in &events[from..] {
            log.write_provenance(&matilda_provenance::json::event_to_json(event));
        }
        self.persisted_seq = events.len();
        if log.snapshot_due(events.len()) {
            let digest = matilda_provenance::digest_events(&events);
            log.write_snapshot(&self.turn_log, events.len(), digest, closed);
        }
        if closed {
            log.write_close(final_fingerprint);
        }
        // One flush per turn: a kill between turns loses nothing, a kill
        // mid-turn loses at most the turn in progress.
        log.flush();
    }

    /// The trace identity stamped on every span, log event and provenance
    /// event of this session.
    pub fn trace_id(&self) -> telemetry::TraceId {
        self.trace_id
    }

    /// The platform's opening line.
    pub fn opening(&self) -> &str {
        self.dialogue.opening()
    }

    /// The shared provenance recorder.
    pub fn recorder(&self) -> &Recorder {
        &self.recorder
    }

    /// The live dialogue.
    pub fn dialogue(&self) -> &Dialogue {
        &self.dialogue
    }

    /// The profile of the human in the loop.
    pub fn user(&self) -> &UserProfile {
        &self.user
    }

    /// Designs executed so far, in order.
    pub fn executed(&self) -> &[ExecutedDesign] {
        &self.executed
    }

    /// Runs cut short by the deadline budget, in order.
    pub fn preempted_runs(&self) -> &[PreemptedRun] {
        &self.preempted
    }

    /// The best executed design by held-out score.
    pub fn best(&self) -> Option<&ExecutedDesign> {
        self.executed
            .iter()
            .max_by(|a, b| a.report.test_score.total_cmp(&b.report.test_score))
    }

    /// `true` once the session has closed.
    pub fn is_closed(&self) -> bool {
        self.closed
    }

    /// The artificial team member's state on the Apprentice ladder.
    pub fn apprentice(&self) -> &ApprenticeAgent {
        &self.apprentice
    }

    /// Build a creative suggestion around the current draft — the platform
    /// half of the paper's "surprise me" interaction.
    fn creative_suggestion(&mut self) -> Option<Suggestion> {
        let draft = self.dialogue.draft()?.clone();
        let profile = DataProfile::from_frame(
            &self.frame,
            draft.task.target(),
            draft.task.is_classification(),
        );
        // The agent's ladder role bounds its ambition: proposing a whole
        // different model family is a pipeline-level responsibility that
        // must be earned; preparation steps are apprentice work.
        let may_swap_model = self.apprentice.role().may_propose_pipelines();
        let (action, text, pattern) = if may_swap_model && self.rng.gen_bool(0.5) {
            let mut model = grammar::random_model(draft.task.is_classification(), &mut self.rng);
            for _ in 0..8 {
                if model.name() != draft.model.name() {
                    break;
                }
                model = grammar::random_model(draft.task.is_classification(), &mut self.rng);
            }
            let text = format!(
                "Here is a less ordinary idea: switch the method to `{}`.",
                model.name()
            );
            (SuggestedAction::SetModel(model), text, "mutant_shopping")
        } else {
            let op = grammar::random_prep_op(&profile, &mut self.rng);
            let text = format!("Here is a less ordinary idea: {}.", op.describe());
            (SuggestedAction::AddPrep(op), text, "no_blank_canvas")
        };
        Some(Suggestion {
            id: String::new(), // assigned at injection
            phase: Phase::Prepare,
            action,
            text,
            creative: true,
            pattern: Some(pattern.to_string()),
        })
    }

    /// Put a creative suggestion through the resilience gauntlet before it
    /// reaches the user: a quarantined pattern is skipped entirely
    /// (returns `None`), an injected fault or isolated panic trips the
    /// pattern's breaker and degrades into narration, and a healthy
    /// suggestion is injected into the dialogue.
    fn vet_creative_suggestion(&mut self, suggestion: Suggestion) -> Option<String> {
        let (kept, skipped) = partition_quarantined(vec![suggestion], |pattern| {
            let site = format!("creativity.pattern.{pattern}");
            !self.breakers.get(&site).try_acquire(self.clock.as_ref())
        });
        for s in &skipped {
            let site = format!(
                "creativity.pattern.{}",
                s.pattern.as_deref().unwrap_or("unknown")
            );
            telemetry::metrics::global().inc(telemetry::metrics::names::PATTERNS_QUARANTINED);
            telemetry::log::warn("core.session", "creative pattern quarantined")
                .field("site", site.as_str())
                .emit();
            self.recorder.record(EventKind::FailureObserved {
                site,
                error: "pattern quarantined after repeated failures".into(),
                action: "quarantined".into(),
            });
        }
        let suggestion = kept.into_iter().next()?;
        let site = format!(
            "creativity.pattern.{}",
            suggestion.pattern.as_deref().unwrap_or("unknown")
        );
        let breaker = self.breakers.get(&site);
        // Chaos faultpoint per creative pattern: repeated injected failures
        // (or panics) trip the pattern's breaker, feeding the quarantine.
        let outcome = resilience::panic_guard::isolate(&site, || {
            resilience::fault::faultpoint(&site).map_err(|f| f.to_string())
        });
        match outcome {
            Ok(Ok(())) => {
                breaker.on_success();
                let text = suggestion.text.clone();
                if self.dialogue.inject_suggestion(suggestion).is_ok() {
                    self.creative_injected += 1;
                    Some(format!("{text} Shall we? (yes/no)"))
                } else {
                    Some(text)
                }
            }
            Ok(Err(reason))
            | Err(resilience::CaughtPanic {
                message: reason, ..
            }) => {
                breaker.on_failure(self.clock.as_ref());
                telemetry::metrics::global().inc(telemetry::metrics::names::PATTERN_FAILURES);
                telemetry::log::warn("core.session", "creative pattern failed")
                    .field("site", site.as_str())
                    .field("reason", reason.as_str())
                    .emit();
                self.recorder.record(EventKind::FailureObserved {
                    site,
                    error: reason,
                    action: "degraded".into(),
                });
                Some(
                    "My creative idea fell apart while I was putting it together — \
                     let's continue with the solid options for now."
                        .to_string(),
                )
            }
        }
    }

    /// Compute and narrate feature importance for the latest executed
    /// design; falls back to guidance when there is nothing to analyse.
    fn narrate_drivers(&self) -> String {
        let Some(best) = self.best() else {
            return "We have not run a study yet — say 'run' first, then I can tell \
                    you what drives the answer."
                .to_string();
        };
        // Re-apply the design's preparation so importance sees the same
        // feature space the model trained on.
        let target = best.spec.task.target().to_string();
        let mut frame = self.frame.clone();
        for op in &best.spec.prep {
            match op.apply(&frame, &target) {
                Ok(next) => frame = next,
                Err(e) => return format!("(could not recompute features: {e})"),
            }
        }
        let features: Vec<String> = frame
            .schema()
            .numeric_names()
            .iter()
            .filter(|n| **n != target)
            .map(|s| s.to_string())
            .collect();
        let refs: Vec<&str> = features.iter().map(String::as_str).collect();
        let data = if best.spec.task.is_classification() {
            matilda_ml::Dataset::classification(&frame, &refs, &target)
        } else {
            matilda_ml::Dataset::regression(&frame, &refs, &target)
        };
        let data = match data {
            Ok(d) => d,
            Err(e) => return format!("(could not rebuild the dataset: {e})"),
        };
        match matilda_ml::importance::permutation_importance(
            &best.spec.model,
            &data,
            3,
            self.config.seed,
        ) {
            Ok(ranked) => crate::narrate::narrate_importance(&ranked, &self.user),
            Err(e) => format!("(importance analysis failed: {e})"),
        }
    }

    /// `(site, state)` of every circuit breaker this session has touched.
    pub fn breaker_states(&self) -> Vec<(String, resilience::BreakerState)> {
        self.breakers.states(self.clock.as_ref())
    }

    /// Effective per-site breaker tuning — thresholds and failure-rate
    /// scaled cooldowns — for every site this session has touched.
    pub fn breaker_tuning(&self) -> Vec<resilience::BreakerTuning> {
        self.breakers.tuning(self.clock.as_ref())
    }

    /// A shared handle to the session's breaker registry, so embedding code
    /// (e.g. the platform's hybrid search) can consult the same per-pattern
    /// quarantine state the conversational loop maintains.
    pub fn breaker_registry(&self) -> std::sync::Arc<resilience::BreakerRegistry> {
        std::sync::Arc::clone(&self.breakers)
    }

    /// The session's deadline budget, when one was configured.
    pub fn budget(&self) -> Option<&resilience::DeadlineBudget> {
        self.budget.as_ref()
    }

    fn execute(&mut self, spec: PipelineSpec, by: Actor) -> Result<ExecOutcome> {
        let fp = matilda_pipeline::fingerprint::fingerprint(&spec);
        self.recorder.record(EventKind::PipelineProposed {
            fingerprint: fp,
            // The self-contained codec form: replay can decode and re-run
            // this design from the log alone.
            canonical: matilda_pipeline::codec::encode(&spec),
            by,
        });
        // The study runner sits behind a circuit breaker: after repeated
        // failures the site is quarantined and the session tells the user
        // to come back after the cooldown rather than failing again.
        let breaker = self.breakers.get("pipeline.run");
        if !breaker.try_acquire(self.clock.as_ref()) {
            self.recorder.record(EventKind::FailureObserved {
                site: "pipeline.run".into(),
                error: "circuit open after repeated failures".into(),
                action: "breaker_open".into(),
            });
            return Err(PlatformError::Session(
                "the study runner is cooling down after repeated failures; \
                 let's keep designing and try running again shortly"
                    .into(),
            ));
        }
        // Transient failures (including injected chaos) are retried with
        // backoff on the session clock, within the deadline budget. When
        // both a per-turn and a session-wide budget are live, the tighter
        // one (less time remaining) governs the retries.
        let mut last_error: Option<String> = None;
        let effective_budget = match (&self.turn_budget, &self.budget) {
            (Some(turn), Some(session)) => {
                if turn.remaining(self.clock.as_ref()) <= session.remaining(self.clock.as_ref()) {
                    Some(turn)
                } else {
                    Some(session)
                }
            }
            (Some(turn), None) => Some(turn),
            (None, session) => session.as_ref(),
        };
        // The executor receives the governing budget as an execution
        // context: the run cooperates with the deadline from the inside
        // (between tasks, per fit iteration, per CSV batch), instead of
        // only being checked between retry attempts.
        let ctx = ExecContext {
            budget: effective_budget.cloned(),
            clock: std::sync::Arc::clone(&self.clock),
            breakers: Some(std::sync::Arc::clone(&self.breakers)),
        };
        let (result, stats) = self.config.retry.run(
            self.clock.as_ref(),
            effective_budget,
            "pipeline.run",
            |_attempt| {
                // A preemption is Ok here: it must not be retried (the
                // budget is spent) and must not count as a runner failure.
                run_with_ctx(&spec, &self.frame, &ctx).inspect_err(|e| {
                    last_error = Some(e.to_string());
                })
            },
        );
        match result {
            Ok(PipelineOutcome::Preempted {
                completed_tasks,
                partial_report,
                site,
            }) => {
                // Abandoned, not failed: release the breaker probe without
                // charging an outcome — the runner did nothing wrong.
                breaker.on_abandoned();
                telemetry::log::warn("core.session", "run preempted by deadline budget")
                    .field("fingerprint", fp)
                    .field("site", site.as_str())
                    .field("completed_tasks", completed_tasks.len() as u64)
                    .emit();
                self.recorder.record(EventKind::FailureObserved {
                    site: site.clone(),
                    error: "turn deadline budget exhausted mid-run".into(),
                    action: "preempted".into(),
                });
                let preempted = PreemptedRun {
                    fingerprint: fp,
                    spec,
                    site,
                    completed_tasks,
                    partial: partial_report,
                };
                self.preempted.push(preempted.clone());
                Ok(ExecOutcome::Preempted(preempted))
            }
            Ok(PipelineOutcome::Completed(report)) => {
                breaker.on_success();
                if stats.retries > 0 {
                    // The run recovered: keep the failed attempts auditable.
                    self.recorder.record(EventKind::FailureObserved {
                        site: "pipeline.run".into(),
                        error: last_error.unwrap_or_default(),
                        action: "retried".into(),
                    });
                    telemetry::log::info("core.session", "execution recovered")
                        .field("fingerprint", fp)
                        .field("retries", u64::from(stats.retries))
                        .emit();
                }
                self.recorder.record(EventKind::PipelineExecuted {
                    fingerprint: fp,
                    score: report.test_score,
                    scoring: report.scoring_name.to_string(),
                });
                let executed = ExecutedDesign {
                    fingerprint: fp,
                    spec,
                    report,
                };
                self.executed.push(executed.clone());
                Ok(ExecOutcome::Done(executed))
            }
            Err(e) => {
                breaker.on_failure(self.clock.as_ref());
                let action = match stats.stop {
                    resilience::StopReason::DeadlineExpired => "deadline_expired",
                    _ => "rejected",
                };
                self.recorder.record(EventKind::FailureObserved {
                    site: "pipeline.run".into(),
                    error: e.to_string(),
                    action: action.into(),
                });
                Err(e.into())
            }
        }
    }

    /// Feed one user message through the session.
    pub fn step(&mut self, user_text: &str) -> Result<StepOutcome> {
        let _trace = telemetry::trace::enter(self.trace_id);
        let mut turn_span = telemetry::span("session.turn");
        turn_span.field("chars_in", user_text.len());
        telemetry::metrics::global().inc("session.turns");
        if self.closed {
            telemetry::log::warn("core.session", "step on closed session").emit();
            return Err(PlatformError::Session("session already closed".into()));
        }
        // Each turn gets a fresh latency allowance when the conversational
        // SLO is configured. Both the allowance and the measurement run on
        // the session clock, so chaos tests govern latency on virtual time.
        let turn_started = self.clock.now();
        // Under brownout the allowance shrinks: the turn still answers,
        // just with less latency headroom for search and retries.
        self.turn_budget = self.config.turn_deadline.map(|limit| {
            resilience::DeadlineBudget::start(
                self.clock.as_ref(),
                limit.mul_f64(self.brownout_scale),
            )
        });
        let result = self.step_inner(user_text, &mut turn_span);
        // Injected delays observed during the turn become auditable
        // provenance: the log shows *where* the latency was added, and the
        // SLO gate can correlate slow turns with their cause.
        if let Some(scope) = resilience::fault::handle() {
            for (site, delay) in scope.drain_delays() {
                self.recorder.record(EventKind::FailureObserved {
                    site,
                    error: format!("injected delay of {delay:?}"),
                    action: "delayed".into(),
                });
            }
        }
        // A completed turn is an event-sourcing commit point: record the
        // command durably, then its provenance tail. Failed turns (closed
        // session) consumed nothing and are not part of the fold.
        if result.is_ok() {
            self.turn_log.push(user_text.to_string());
            self.persist_turn();
        }
        let latency = self.clock.now().saturating_sub(turn_started);
        telemetry::metrics::global()
            .observe_duration(telemetry::metrics::names::TURN_LATENCY_SECONDS, latency);
        turn_span.field("latency_virtual_s", latency.as_secs_f64());
        // A turn that blew its latency deadline is an incident even when it
        // produced an answer: the capsule ties the slow turn to whatever
        // delays/retries the trace shows.
        if let Some(slo) = self.config.turn_deadline {
            if latency > slo {
                resilience::incident::report(
                    "slo_violation",
                    "session.turn",
                    &format!(
                        "turn latency {} ms exceeded the {} ms deadline",
                        latency.as_millis(),
                        slo.as_millis()
                    ),
                );
            }
        }
        result
    }

    /// The body of one turn; `step` wraps this with per-turn budgeting and
    /// latency accounting.
    fn step_inner(
        &mut self,
        user_text: &str,
        turn_span: &mut telemetry::SpanGuard,
    ) -> Result<StepOutcome> {
        // A session whose deadline allowance is already spent closes
        // gracefully instead of starting work it cannot finish: the user
        // gets a wrap-up (and the best result so far), not a timeout.
        if self
            .budget
            .as_ref()
            .is_some_and(|b| b.expired(self.clock.as_ref()))
        {
            telemetry::metrics::global().inc(telemetry::metrics::names::TURNS_BUDGET_EXHAUSTED);
            telemetry::log::warn("core.session", "session budget exhausted; closing")
                .field("executions", self.executed.len())
                .emit();
            self.recorder.record(EventKind::FailureObserved {
                site: "session.turn".into(),
                error: "session deadline budget exhausted".into(),
                action: "deadline_expired".into(),
            });
            self.recorder.record(EventKind::SessionClosed {
                final_fingerprint: self.best().map(|d| d.fingerprint),
            });
            self.closed = true;
            // Same durability contract as the normal close below: the
            // journal holds the whole session once `closed` goes true.
            telemetry::journal::flush_global();
            let reply = match self.best() {
                Some(best) => format!(
                    "We are out of time for this session, so let's stop here. The \
                     best design we found scored {:.3} — everything is saved and \
                     we can pick up from it next time.",
                    best.report.test_score
                ),
                None => "We are out of time for this session, so let's stop here. \
                         We did not get to run a study yet, but the design notes \
                         are saved and we can continue next time."
                    .to_string(),
            };
            return Ok(StepOutcome {
                reply,
                executed: None,
                closed: true,
            });
        }
        // Chaos faultpoint for the turn as a whole: an injected fault (or
        // isolated panic) degrades into an apologetic reply instead of an
        // error — the conversation survives, and provenance shows why.
        let degraded = match resilience::panic_guard::isolate("session.step", || {
            resilience::fault::faultpoint("session.step").map_err(|f| f.to_string())
        }) {
            Ok(Ok(())) => None,
            Ok(Err(message)) => Some(message),
            Err(caught) => Some(caught.to_string()),
        };
        if let Some(reason) = degraded {
            telemetry::metrics::global().inc("resilience.turns_degraded");
            telemetry::log::warn("core.session", "turn degraded")
                .field("reason", reason.as_str())
                .emit();
            self.recorder.record(EventKind::FailureObserved {
                site: "session.step".into(),
                error: reason.clone(),
                action: "degraded".into(),
            });
            resilience::incident::report("turn_degraded", "session.step", &reason);
            turn_span.field("degraded", true);
            return Ok(StepOutcome {
                reply: "Something went wrong on my side just now — nothing is lost. \
                        Could you say that again?"
                    .to_string(),
                executed: None,
                closed: false,
            });
        }
        telemetry::log::debug("core.session", "turn started")
            .field("chars_in", user_text.len())
            .field("state", format!("{:?}", self.dialogue.state()))
            .emit();
        let response = self.dialogue.handle(user_text)?;
        let mut executed = None;
        let mut reply = response.reply.clone();
        for event in response.events {
            match event {
                DialogueEvent::GoalSet { task } => {
                    self.recorder.record(EventKind::Annotated {
                        target: "session".into(),
                        key: "task".into(),
                        value: format!("{task:?}"),
                    });
                }
                DialogueEvent::PhaseEntered(phase) => {
                    self.recorder.record(EventKind::PhaseEntered {
                        phase: phase.name().to_string(),
                    });
                }
                DialogueEvent::SuggestionDecided {
                    suggestion,
                    adopted,
                } => {
                    if suggestion.creative {
                        // Creative outcomes move the agent along the ladder.
                        let round = self.recorder.len();
                        let before = self.apprentice.role();
                        self.apprentice.record_outcome(round, adopted);
                        let after = self.apprentice.role();
                        if after != before {
                            // A persona switch on the Apprentice ladder is a
                            // trust decision worth surfacing in the log.
                            telemetry::log::info("core.session", "apprentice role changed")
                                .field("from", before.name())
                                .field("to", after.name())
                                .field("adopted", adopted)
                                .emit();
                        }
                    }
                    telemetry::log::debug("core.session", "suggestion decided")
                        .field("suggestion_id", suggestion.id.as_str())
                        .field("adopted", adopted)
                        .field("creative", suggestion.creative)
                        .emit();
                    self.recorder.record(EventKind::SuggestionMade {
                        suggestion_id: suggestion.id.clone(),
                        by: if suggestion.creative {
                            Actor::Creativity
                        } else {
                            Actor::Conversation
                        },
                        content: suggestion.text.clone(),
                        pattern: suggestion.pattern.clone(),
                    });
                    self.recorder.record(EventKind::SuggestionDecided {
                        suggestion_id: suggestion.id,
                        adopted,
                        reason: String::new(),
                    });
                }
                DialogueEvent::SurpriseRequested => {
                    if let Some(suggestion) = self.creative_suggestion() {
                        match self.vet_creative_suggestion(suggestion) {
                            Some(text) => reply = format!("{reply}\n{text}"),
                            None => {
                                reply = format!(
                                    "{reply}\nMy creative side needs a short break — \
                                     the last few ideas from that direction kept \
                                     failing, so I'm letting it cool down. Ask me \
                                     again in a moment."
                                );
                            }
                        }
                    } else {
                        reply = format!("{reply}\n(I need a goal before I can improvise.)");
                    }
                }
                DialogueEvent::DriversRequested => {
                    reply = format!("{reply}\n{}", self.narrate_drivers());
                }
                DialogueEvent::RunRequested { spec } => {
                    // Validation problems become conversation, not crashes:
                    // the user hears what is wrong and can adjust.
                    let violations = matilda_pipeline::validate::validate(&spec, &self.frame);
                    if violations.is_empty() {
                        // Even validated designs can fail at runtime (e.g. a
                        // rare class entirely absent from the training
                        // fragment): that too is conversation, not a crash.
                        match self.execute(spec, Actor::Conversation) {
                            Ok(ExecOutcome::Done(design)) => {
                                let narration =
                                    crate::narrate::narrate_report(&design.report, &self.user);
                                reply = format!("{reply}\nStudy complete. {narration}");
                                executed = Some(design);
                            }
                            Ok(ExecOutcome::Preempted(preempted)) => {
                                // The turn degrades into an honest account of
                                // how far the study got, in the user's words —
                                // the session stays alive and responsive.
                                let narration = narrate_preempted(
                                    &preempted.site,
                                    &preempted.completed_tasks,
                                    &self.user,
                                );
                                reply = format!("{reply}\n{narration}");
                            }
                            Err(e) => {
                                reply = format!(
                                    "{reply}\nThe study failed while running ({e}). A \
                                     different split or preparation might avoid this — \
                                     try adjusting and running again."
                                );
                            }
                        }
                    } else {
                        let reasons: Vec<&str> =
                            violations.iter().map(|v| v.message.as_str()).collect();
                        reply = format!(
                            "{reply}\nI cannot run this design yet: {}.",
                            reasons.join("; ")
                        );
                        // Conversational repair: re-open the design with a
                        // targeted suggestion for the first fixable problem,
                        // instead of leaving the user at a dead end.
                        if let Some(repair) = repair_suggestion(&violations) {
                            let text = repair.text.clone();
                            if self.dialogue.inject_suggestion(repair).is_ok() {
                                reply = format!("{reply}\n{text} Shall we? (yes/no)");
                            }
                        }
                    }
                }
                DialogueEvent::Finished => {
                    self.recorder.record(EventKind::SessionClosed {
                        final_fingerprint: self.best().map(|d| d.fingerprint),
                    });
                    self.closed = true;
                    telemetry::log::info("core.session", "session closed")
                        .field("executions", self.executed.len())
                        .field(
                            "best_score",
                            self.best().map(|d| d.report.test_score).unwrap_or(f64::NAN),
                        )
                        .emit();
                    // A closed session's telemetry tail is durable: settle
                    // the flight recorder before handing back the wrap-up.
                    telemetry::journal::flush_global();
                }
            }
        }
        turn_span
            .field("executed", executed.is_some())
            .field("closed", self.closed);
        Ok(StepOutcome {
            reply,
            executed,
            closed: self.closed,
        })
    }

    /// Drive the session with a simulated persona until it closes (or the
    /// round cap is reached), returning a summary.
    pub fn run_autonomous(&mut self, persona: &mut Persona) -> Result<SessionSummary> {
        let _trace = telemetry::trace::enter(self.trace_id);
        let mut session_span = telemetry::span("session.autonomous");
        telemetry::log::info("core.session", "autonomous run started")
            .field("max_rounds", self.config.max_rounds)
            .emit();
        let mut rounds = 0;
        while !self.closed && rounds < self.config.max_rounds {
            // A satisfied persona stops after its first successful study,
            // unless curiosity pushes it to ask for more first.
            let utterance = if !self.executed.is_empty()
                && self.dialogue.state() == DialogueState::ReadyToRun
            {
                "done".to_string()
            } else {
                persona.next_utterance(&self.dialogue)
            };
            if utterance.is_empty() {
                break;
            }
            self.step(&utterance)?;
            rounds += 1;
        }
        if !self.closed {
            // Round cap reached: close cleanly for provenance integrity.
            self.step("done")?;
            rounds += 1;
        }
        let decided = self.dialogue.decisions().len();
        let adopted = self.dialogue.decisions().iter().filter(|(_, a)| *a).count();
        session_span
            .field("rounds", rounds)
            .field("executions", self.executed.len());
        Ok(SessionSummary {
            rounds,
            best_score: self.best().map(|d| d.report.test_score),
            best_fingerprint: self.best().map(|d| d.fingerprint),
            executions: self.executed.len(),
            creative_suggestions: self.creative_injected,
            adopted,
            decided,
            apprentice_role: self.apprentice.role(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matilda_data::Column;
    use matilda_provenance::quality::audit;

    fn frame() -> DataFrame {
        DataFrame::from_columns(vec![
            ("x", Column::from_f64((0..60).map(f64::from).collect())),
            (
                "noise",
                Column::from_f64((0..60).map(|i| ((i * 7) % 5) as f64).collect()),
            ),
            (
                "label",
                Column::from_categorical(
                    &(0..60)
                        .map(|i| if i < 30 { "a" } else { "b" })
                        .collect::<Vec<_>>(),
                ),
            ),
        ])
        .unwrap()
    }

    fn session() -> DesignSession {
        DesignSession::new(
            "test",
            "can x predict label?",
            frame(),
            UserProfile::novice("Ada", "urbanism"),
            PlatformConfig::quick(),
        )
    }

    #[test]
    fn manual_walkthrough_executes_and_records() {
        let mut s = session();
        s.step("I want to predict 'label'").unwrap();
        let mut guard = 0;
        while !matches!(s.dialogue().state(), DialogueState::ReadyToRun) && guard < 30 {
            s.step("yes").unwrap();
            guard += 1;
        }
        let outcome = s.step("run it").unwrap();
        let design = outcome.executed.expect("a design ran");
        assert!(
            design.report.test_score > 0.7,
            "score {}",
            design.report.test_score
        );
        let outcome = s.step("done").unwrap();
        assert!(outcome.closed);
        // Provenance log passes every quality rule.
        let report = audit(&s.recorder().snapshot());
        assert!(report.all_passed(), "failures: {:?}", report.failures());
    }

    #[test]
    fn autonomous_session_with_trusting_novice() {
        let mut s = session();
        let mut persona = Persona::trusting_novice("label", 7);
        let summary = s.run_autonomous(&mut persona).unwrap();
        assert!(s.is_closed());
        assert!(
            summary.executions >= 1,
            "the persona runs at least one study"
        );
        assert!(summary.best_score.unwrap() > 0.6);
        assert!(summary.decided > 0);
        assert!(summary.rounds <= PlatformConfig::quick().max_rounds + 1);
    }

    #[test]
    fn autonomous_session_with_curious_expert_gets_creative_suggestions() {
        let mut s = DesignSession::new(
            "test",
            "rq",
            frame(),
            UserProfile::data_scientist("Elias"),
            PlatformConfig::quick(),
        );
        let mut persona = Persona::new(
            UserProfile::data_scientist("Elias"),
            "label",
            0.7,
            1.0, // always curious
            11,
        );
        let summary = s.run_autonomous(&mut persona).unwrap();
        assert!(
            summary.creative_suggestions >= 1,
            "curiosity triggers creative injections"
        );
        let creative_events = s
            .recorder()
            .of_type("suggestion_made")
            .into_iter()
            .filter(|e| {
                matches!(
                    &e.kind,
                    EventKind::SuggestionMade {
                        by: Actor::Creativity,
                        ..
                    }
                )
            })
            .count();
        // Injected suggestions that were decided appear in provenance.
        assert!(creative_events <= summary.creative_suggestions + 1);
    }

    #[test]
    fn step_after_close_errors() {
        let mut s = session();
        s.step("done").unwrap();
        assert!(matches!(s.step("hello"), Err(PlatformError::Session(_))));
    }

    #[test]
    fn best_tracks_highest_score() {
        let mut s = session();
        s.step("predict 'label'").unwrap();
        let mut guard = 0;
        while !matches!(s.dialogue().state(), DialogueState::ReadyToRun) && guard < 30 {
            s.step("no").unwrap();
            guard += 1;
        }
        s.step("run it").unwrap();
        assert_eq!(s.executed().len(), 1);
        assert_eq!(s.best().unwrap().fingerprint, s.executed()[0].fingerprint);
    }

    #[test]
    fn apprentice_starts_as_apprentice_and_climbs_on_adoption() {
        let mut s = session();
        assert_eq!(s.apprentice().role(), Role::Apprentice);
        s.step("predict 'label'").unwrap();
        // Ask for surprises and adopt every one: the agent earns rungs.
        let mut adopted_creative = 0;
        for _ in 0..12 {
            if s.is_closed() {
                break;
            }
            s.step("surprise me").unwrap();
            if s.dialogue().pending_suggestion().map(|p| p.creative) == Some(true) {
                s.step("yes").unwrap();
                adopted_creative += 1;
            }
        }
        assert!(adopted_creative >= 3, "creative suggestions flowed");
        assert!(
            s.apprentice().role() >= Role::Journeyman,
            "consistent adoption promotes the agent, got {}",
            s.apprentice().role()
        );
    }

    #[test]
    fn apprentice_demoted_on_consistent_rejection() {
        let mut s = session();
        s.step("predict 'label'").unwrap();
        for _ in 0..8 {
            if s.is_closed() {
                break;
            }
            s.step("surprise me").unwrap();
            if s.dialogue().pending_suggestion().map(|p| p.creative) == Some(true) {
                s.step("no").unwrap();
            }
        }
        assert_eq!(
            s.apprentice().role(),
            Role::Observer,
            "repeated rejection strips responsibility"
        );
    }

    #[test]
    fn apprentice_role_reported_in_summary() {
        let mut s = session();
        let mut persona = Persona::trusting_novice("label", 7);
        let summary = s.run_autonomous(&mut persona).unwrap();
        assert!(summary.apprentice_role >= Role::Observer);
    }

    #[test]
    fn invalid_run_triggers_conversational_repair() {
        // A frame with nulls, and a user who rejects every suggestion:
        // the first run attempt fails validation, so the platform reopens
        // the design with a targeted imputation suggestion.
        let dirty = DataFrame::from_columns(vec![
            (
                "x",
                Column::from_opt_f64((0..40).map(|i| (i % 5 != 0).then_some(i as f64)).collect()),
            ),
            (
                "label",
                Column::from_categorical(
                    &(0..40)
                        .map(|i| if i < 20 { "a" } else { "b" })
                        .collect::<Vec<_>>(),
                ),
            ),
        ])
        .unwrap();
        let mut s = DesignSession::new(
            "repair",
            "rq",
            dirty,
            UserProfile::novice("Ada", "urbanism"),
            PlatformConfig::quick(),
        );
        s.step("predict 'label'").unwrap();
        let mut guard = 0;
        while matches!(s.dialogue().state(), DialogueState::InPhase(_)) && guard < 30 {
            s.step("no").unwrap();
            guard += 1;
        }
        let outcome = s.step("run it").unwrap();
        assert!(
            outcome.executed.is_none(),
            "run must fail on unhandled nulls"
        );
        assert!(
            outcome.reply.contains("missing values"),
            "{}",
            outcome.reply
        );
        assert!(
            s.dialogue().pending_suggestion().is_some(),
            "repair suggestion pending"
        );
        // Accept the repair and run again: now it succeeds.
        s.step("yes").unwrap();
        let outcome = s.step("run it").unwrap();
        assert!(
            outcome.executed.is_some(),
            "repaired design runs: {}",
            outcome.reply
        );
    }

    #[test]
    fn drivers_question_answered_after_a_run() {
        let mut s = session();
        s.step("predict 'label'").unwrap();
        // Before any run: guidance, not analysis.
        let out = s.step("what matters most?").unwrap();
        assert!(out.reply.contains("run"), "{}", out.reply);
        let mut guard = 0;
        while !matches!(s.dialogue().state(), DialogueState::ReadyToRun) && guard < 30 {
            s.step("yes").unwrap();
            guard += 1;
        }
        s.step("run it").unwrap();
        let out = s.step("which factors matter?").unwrap();
        // The signal feature `x` must lead the narration; the user is a
        // novice, so no raw numbers.
        assert!(out.reply.contains('x'), "{}", out.reply);
        assert!(
            out.reply.contains("matters most") || out.reply.contains("stands out"),
            "{}",
            out.reply
        );
    }

    #[test]
    fn provenance_events_link_to_turn_spans() {
        let mut s = session();
        s.step("predict 'label'").unwrap();
        let mut guard = 0;
        while !matches!(s.dialogue().state(), DialogueState::ReadyToRun) && guard < 30 {
            s.step("yes").unwrap();
            guard += 1;
        }
        s.step("run it").unwrap();
        let events = s.recorder().snapshot();
        // Everything recorded during a step carries the turn's span id...
        let executed = events
            .iter()
            .find(|e| e.kind.type_name() == "pipeline_executed")
            .expect("a pipeline ran");
        let span_id = executed.span_id.expect("recorded inside a turn span");
        // ...and that id names a real, closed session.turn span, so the
        // JSON export round-trips a non-null linkage.
        let spans = matilda_telemetry::span::global().snapshot();
        let turn = spans
            .iter()
            .find(|sp| sp.id == span_id)
            .expect("span exported");
        assert_eq!(turn.name, "session.turn");
        let json = matilda_provenance::json::event_to_json(executed);
        assert!(json.contains(&format!("\"span_id\":{span_id}")), "{json}");
    }

    #[test]
    fn one_trace_id_spans_the_whole_session() {
        let mut s = session();
        let trace = s.trace_id();
        assert_ne!(trace, 0);
        s.step("predict 'label'").unwrap();
        let mut guard = 0;
        while !matches!(s.dialogue().state(), DialogueState::ReadyToRun) && guard < 30 {
            s.step("yes").unwrap();
            guard += 1;
        }
        s.step("run it").unwrap();
        // Every provenance event carries the session's trace id.
        let events = s.recorder().snapshot();
        assert!(!events.is_empty());
        assert!(
            events.iter().all(|e| e.trace_id == Some(trace)),
            "all provenance events share the session trace"
        );
        // Every session.turn span of this session carries it too.
        let spans = matilda_telemetry::span::global().snapshot();
        let turns: Vec<_> = spans
            .iter()
            .filter(|sp| sp.name == "session.turn" && sp.trace_id == Some(trace))
            .collect();
        assert!(!turns.is_empty(), "turn spans stamped with the trace");
        // And log events emitted during the session correlate as well.
        let logs = matilda_telemetry::log::global().tail(4096, None);
        assert!(
            logs.iter().any(|e| e.trace_id == Some(trace)),
            "log events stamped with the trace"
        );
        // A second session gets a distinct trace identity.
        let other = session();
        assert_ne!(other.trace_id(), trace);
    }

    fn drive_to_ready(s: &mut DesignSession) {
        s.step("predict 'label'").unwrap();
        let mut guard = 0;
        while !matches!(s.dialogue().state(), DialogueState::ReadyToRun) && guard < 30 {
            s.step("no").unwrap();
            guard += 1;
        }
    }

    #[test]
    fn injected_step_fault_degrades_the_turn() {
        use matilda_resilience::{fault, FaultKind, FaultPlan};
        let mut s = session();
        let scope =
            fault::activate(FaultPlan::new(31).inject_first("session.step", FaultKind::Error, 1));
        let outcome = s.step("predict 'label'").unwrap();
        assert!(
            outcome.reply.contains("nothing is lost"),
            "{}",
            outcome.reply
        );
        assert!(!outcome.closed);
        assert_eq!(scope.injected("session.step"), 1);
        let failures = s.recorder().of_type("failure_observed");
        assert_eq!(failures.len(), 1);
        // The next turn proceeds normally: the session survived.
        let outcome = s.step("predict 'label'").unwrap();
        assert!(!outcome.reply.contains("nothing is lost"));
    }

    #[test]
    fn execution_retry_recovers_from_transient_fault() {
        use matilda_resilience::{fault, FaultKind, FaultPlan};
        let mut s = session();
        let scope = fault::activate(FaultPlan::new(32).inject_first(
            "pipeline.task.train",
            FaultKind::Error,
            1,
        ));
        drive_to_ready(&mut s);
        let outcome = s.step("run it").unwrap();
        assert!(
            outcome.executed.is_some(),
            "retry recovered: {}",
            outcome.reply
        );
        assert_eq!(scope.injected("pipeline.task.train"), 1);
        let failures = s.recorder().of_type("failure_observed");
        assert_eq!(failures.len(), 1, "the recovered attempt is auditable");
        assert!(matches!(
            &failures[0].kind,
            EventKind::FailureObserved { action, .. } if action == "retried"
        ));
        // The provenance log still passes every quality rule.
        let report = audit(&s.recorder().snapshot());
        assert!(report.all_passed(), "failures: {:?}", report.failures());
    }

    #[test]
    fn breaker_quarantines_failing_runner() {
        use matilda_resilience::{fault, BreakerState, FaultKind, FaultPlan};
        let mut s = DesignSession::new(
            "breaker",
            "rq",
            frame(),
            UserProfile::novice("Ada", "urbanism"),
            PlatformConfig {
                breaker_threshold: 1,
                retry: matilda_resilience::RetryPolicy::none(),
                ..PlatformConfig::quick()
            },
        );
        let _scope = fault::activate(FaultPlan::new(33).inject(
            "pipeline.task.train",
            FaultKind::Error,
            1.0,
        ));
        drive_to_ready(&mut s);
        let outcome = s.step("run it").unwrap();
        assert!(outcome.executed.is_none());
        assert!(
            outcome.reply.contains("failed while running"),
            "{}",
            outcome.reply
        );
        // The runner breaker is open; per-task recording also charged the
        // failing task's own breaker, while the healthy tasks stay closed.
        let states = s.breaker_states();
        assert!(states.contains(&("pipeline.run".to_string(), BreakerState::Open)));
        assert!(states.contains(&("pipeline.task.train".to_string(), BreakerState::Open)));
        assert!(states.contains(&("pipeline.task.explore".to_string(), BreakerState::Closed)));
        // The next run attempt is rejected by the open breaker — still
        // conversation, never a crash.
        let outcome = s.step("run it").unwrap();
        assert!(outcome.executed.is_none());
        assert!(outcome.reply.contains("cooling down"), "{}", outcome.reply);
        let failures = s.recorder().of_type("failure_observed");
        assert!(failures.iter().any(|e| matches!(
            &e.kind,
            EventKind::FailureObserved { action, .. } if action == "breaker_open"
        )));
    }

    #[test]
    fn deadline_preempts_the_run_into_a_degraded_turn() {
        use matilda_resilience::{fault, FaultKind, FaultPlan, TestClock};
        use std::time::Duration;
        let clock = std::sync::Arc::new(TestClock::new());
        // The train task costs 60 ms of virtual time against a 50 ms turn
        // deadline: the task finishes, then the between-task checkpoint
        // preempts before "test" starts.
        let _scope = fault::activate_with_clock(
            FaultPlan::new(77).inject(
                "pipeline.task.train",
                FaultKind::Delay(Duration::from_millis(60)),
                1.0,
            ),
            clock.clone(),
        );
        let mut s = DesignSession::new(
            "preempt",
            "rq",
            frame(),
            UserProfile::novice("Ada", "urbanism"),
            PlatformConfig {
                turn_deadline: Some(Duration::from_millis(50)),
                ..PlatformConfig::quick()
            },
        );
        drive_to_ready(&mut s);
        let outcome = s.step("run it").unwrap();
        assert!(outcome.executed.is_none(), "{}", outcome.reply);
        assert!(!outcome.closed, "the session survives the preemption");
        assert!(
            outcome.reply.contains("ran out of time"),
            "{}",
            outcome.reply
        );
        let pre = &s.preempted_runs()[0];
        assert_eq!(pre.site, "pipeline.task");
        assert!(pre.completed_tasks.contains(&"train".to_string()));
        assert!(!pre.partial.timings.is_empty(), "partial spans preserved");
        // Provenance shows the preemption as a typed failure action.
        let failures = s.recorder().of_type("failure_observed");
        assert!(
            failures.iter().any(|e| matches!(
                &e.kind,
                EventKind::FailureObserved { action, site, .. }
                    if action == "preempted" && site == "pipeline.task"
            )),
            "preemption is auditable"
        );
        // The log still passes every quality rule after closing.
        s.step("done").unwrap();
        let report = audit(&s.recorder().snapshot());
        assert!(report.all_passed(), "failures: {:?}", report.failures());
    }

    #[test]
    fn deterministic_autonomous_sessions() {
        let run = || {
            let mut s = session();
            let mut p = Persona::trusting_novice("label", 5);
            s.run_autonomous(&mut p).unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.best_fingerprint, b.best_fingerprint);
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.adopted, b.adopted);
    }
}
