//! Platform configuration.

use matilda_creativity::search::PatternSelection;
use matilda_creativity::BalanceSchedule;
use matilda_resilience::RetryPolicy;
use std::time::Duration;

/// Knobs governing a MATILDA platform instance.
#[derive(Debug, Clone)]
pub struct PlatformConfig {
    /// Creative-search population size.
    pub population_size: usize,
    /// Creative-search generations.
    pub generations: usize,
    /// Exploration-weight schedule; when `None` the schedule is derived
    /// from the user profile's openness (the inclusive default).
    pub balance: Option<BalanceSchedule>,
    /// Cross-validation folds for value evaluation.
    pub k_folds: usize,
    /// Master seed; every stochastic component derives from it.
    pub seed: u64,
    /// Restrict creativity patterns by name; empty means all six.
    pub patterns: Vec<String>,
    /// Pattern budgeting policy.
    pub selection: PatternSelection,
    /// Hard cap on autonomous session rounds (guards simulated users).
    pub max_rounds: usize,
    /// Retry policy for pipeline executions (backoff runs on the active
    /// resilience clock, so chaos tests never sleep for real).
    pub retry: RetryPolicy,
    /// Optional per-session deadline budget; retries stop (and the session
    /// degrades into conversation) once the allowance is spent.
    pub deadline: Option<Duration>,
    /// Optional per-turn latency allowance (the conversational SLO). Each
    /// turn starts a fresh budget that bounds retries and creative work
    /// inside that turn; the tighter of this and the remaining session
    /// `deadline` wins.
    pub turn_deadline: Option<Duration>,
    /// Consecutive execution failures before the circuit breaker
    /// quarantines the study runner.
    pub breaker_threshold: u32,
    /// How long a tripped breaker cools down before allowing a probe.
    pub breaker_cooldown: Duration,
}

impl Default for PlatformConfig {
    fn default() -> Self {
        Self {
            population_size: 10,
            generations: 5,
            balance: None,
            k_folds: 3,
            seed: 42,
            patterns: Vec::new(),
            selection: PatternSelection::Uniform,
            max_rounds: 60,
            retry: RetryPolicy::default(),
            deadline: None,
            turn_deadline: None,
            breaker_threshold: 3,
            breaker_cooldown: Duration::from_secs(30),
        }
    }
}

impl PlatformConfig {
    /// A smaller, faster configuration for tests and quick demos.
    pub fn quick() -> Self {
        Self {
            population_size: 6,
            generations: 2,
            ..Self::default()
        }
    }

    /// The search configuration for a user with exploration weight `lambda`.
    pub fn search_config(&self, lambda: f64) -> matilda_creativity::SearchConfig {
        matilda_creativity::SearchConfig {
            population_size: self.population_size,
            generations: self.generations,
            balance: self.balance.unwrap_or(BalanceSchedule::Decaying {
                initial: lambda,
                decay: 0.85,
            }),
            k_novelty: 5,
            k_folds: self.k_folds,
            seed: self.seed,
            patterns: self.patterns.clone(),
            selection: self.selection,
            seeds: Vec::new(),
            budget: None,
            breakers: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_sane() {
        let c = PlatformConfig::default();
        assert!(c.population_size > 0);
        assert!(c.max_rounds > 10);
        assert!(c.balance.is_none());
        assert!(c.retry.max_attempts >= 2, "executions retry by default");
        assert!(c.deadline.is_none());
        assert!(c.breaker_threshold >= 1);
    }

    #[test]
    fn search_config_derives_balance_from_lambda() {
        let c = PlatformConfig::default();
        let sc = c.search_config(0.4);
        assert_eq!(sc.balance.lambda(0), 0.4);
        assert_eq!(sc.population_size, c.population_size);
    }

    #[test]
    fn explicit_balance_wins() {
        let c = PlatformConfig {
            balance: Some(BalanceSchedule::Fixed(0.9)),
            ..PlatformConfig::default()
        };
        assert_eq!(c.search_config(0.1).balance.lambda(5), 0.9);
    }

    #[test]
    fn quick_is_smaller() {
        assert!(PlatformConfig::quick().generations < PlatformConfig::default().generations);
    }
}
