//! Unsupervised exploration: discover citizen/respondent segments before
//! any prediction goal exists — the "mathematically understanding the
//! data" tasks the paper puts at the front of every DS pipeline.

use crate::error::{PlatformError, Result};
use matilda_conversation::prelude::{Expertise, UserProfile};
use matilda_data::DataFrame;
use matilda_ml::kmeans::KMeans;
use matilda_ml::metrics::silhouette;

/// One discovered segment.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    /// Members in the segment.
    pub size: usize,
    /// Centroid in feature space (same order as `SegmentReport::features`).
    pub centroid: Vec<f64>,
}

/// The result of segment discovery.
#[derive(Debug, Clone, PartialEq)]
pub struct SegmentReport {
    /// Feature columns used.
    pub features: Vec<String>,
    /// Chosen number of segments.
    pub k: usize,
    /// Mean silhouette of the chosen clustering, in `[-1, 1]`.
    pub silhouette: f64,
    /// The segments, largest first.
    pub segments: Vec<Segment>,
    /// Row-to-segment assignment (indices into `segments`' pre-sort order
    /// are remapped, so `assignments[i]` indexes `segments`).
    pub assignments: Vec<usize>,
}

/// Discover segments in the named numeric columns, choosing `k` in
/// `2..=max_k` by silhouette. Deterministic given `seed`.
pub fn discover_segments(
    df: &DataFrame,
    features: &[&str],
    max_k: usize,
    seed: u64,
) -> Result<SegmentReport> {
    if max_k < 2 {
        return Err(PlatformError::Session("max_k must be >= 2".into()));
    }
    let points = df.to_matrix(features).map_err(PlatformError::from)?;
    if points.len() < max_k * 2 {
        return Err(PlatformError::Session(format!(
            "segment discovery needs at least {} rows, got {}",
            max_k * 2,
            points.len()
        )));
    }
    // (k, silhouette, assignments, centroids) of the best clustering so far.
    type Clustering = (usize, f64, Vec<usize>, Vec<Vec<f64>>);
    let mut best: Option<Clustering> = None;
    for k in 2..=max_k {
        let mut km = KMeans::new(k, 100, seed);
        let assignments = km.fit(&points).map_err(PlatformError::from)?;
        let score = silhouette(&points, &assignments).map_err(PlatformError::from)?;
        if best.as_ref().is_none_or(|(_, s, _, _)| score > *s) {
            best = Some((k, score, assignments, km.centroids().to_vec()));
        }
    }
    let (k, sil, assignments, centroids) = best.expect("max_k >= 2 guarantees a candidate");
    // Sort segments by size descending and remap assignments.
    let mut sizes = vec![0usize; k];
    for &a in &assignments {
        sizes[a] += 1;
    }
    let mut order: Vec<usize> = (0..k).collect();
    order.sort_by(|&a, &b| sizes[b].cmp(&sizes[a]));
    let mut remap = vec![0usize; k];
    for (new_idx, &old_idx) in order.iter().enumerate() {
        remap[old_idx] = new_idx;
    }
    let segments: Vec<Segment> = order
        .iter()
        .map(|&old| Segment {
            size: sizes[old],
            centroid: centroids[old].clone(),
        })
        .collect();
    let assignments: Vec<usize> = assignments.into_iter().map(|a| remap[a]).collect();
    Ok(SegmentReport {
        features: features.iter().map(|s| s.to_string()).collect(),
        k,
        silhouette: sil,
        segments,
        assignments,
    })
}

/// Narrate a segment report for the user.
pub fn narrate_segments(report: &SegmentReport, user: &UserProfile) -> String {
    let quality = if report.silhouette > 0.5 {
        "clearly separated"
    } else if report.silhouette > 0.25 {
        "loosely separated"
    } else {
        "not well separated"
    };
    match user.expertise {
        Expertise::Novice => {
            let total: usize = report.segments.iter().map(|s| s.size).sum();
            let shares: Vec<String> = report
                .segments
                .iter()
                .enumerate()
                .map(|(i, s)| format!("group {} holds {}%", i + 1, (100 * s.size / total.max(1))))
                .collect();
            format!(
                "Your {} data falls into {} natural groups ({quality}): {}.",
                user.domain,
                report.k,
                shares.join(", ")
            )
        }
        _ => {
            let sizes: Vec<String> = report.segments.iter().map(|s| s.size.to_string()).collect();
            format!(
                "k-means (k chosen by silhouette): k={}, silhouette={:.3} ({quality}), \
                 segment sizes [{}] over features [{}]",
                report.k,
                report.silhouette,
                sizes.join(", "),
                report.features.join(", ")
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use matilda_datagen::prelude::*;

    fn blob_frame(k: usize) -> DataFrame {
        blobs(&BlobsConfig {
            n_rows: 40 * k,
            n_classes: k,
            separation: 8.0,
            spread: 0.6,
            ..Default::default()
        })
    }

    #[test]
    fn recovers_true_cluster_count() {
        for true_k in [2usize, 3] {
            let df = blob_frame(true_k);
            let report = discover_segments(&df, &["f0", "f1"], 5, 7).unwrap();
            assert_eq!(
                report.k, true_k,
                "silhouette should pick the true k={true_k}"
            );
            assert!(report.silhouette > 0.6);
            assert_eq!(report.assignments.len(), df.n_rows());
        }
    }

    #[test]
    fn segments_sorted_by_size() {
        let df = blob_frame(3);
        let report = discover_segments(&df, &["f0", "f1"], 4, 1).unwrap();
        for w in report.segments.windows(2) {
            assert!(w[0].size >= w[1].size);
        }
        let total: usize = report.segments.iter().map(|s| s.size).sum();
        assert_eq!(total, df.n_rows());
    }

    #[test]
    fn assignments_match_remapped_segments() {
        let df = blob_frame(2);
        let report = discover_segments(&df, &["f0", "f1"], 3, 2).unwrap();
        let mut counted = vec![0usize; report.k];
        for &a in &report.assignments {
            assert!(a < report.k);
            counted[a] += 1;
        }
        let sizes: Vec<usize> = report.segments.iter().map(|s| s.size).collect();
        assert_eq!(counted, sizes);
    }

    #[test]
    fn parameter_validation() {
        let df = blob_frame(2);
        assert!(discover_segments(&df, &["f0"], 1, 0).is_err());
        let tiny = df.head(3);
        assert!(discover_segments(&tiny, &["f0"], 3, 0).is_err());
        assert!(discover_segments(&df, &["ghost"], 3, 0).is_err());
    }

    #[test]
    fn narration_by_expertise() {
        let df = blob_frame(2);
        let report = discover_segments(&df, &["f0", "f1"], 3, 3).unwrap();
        let novice = narrate_segments(&report, &UserProfile::novice("n", "urbanism"));
        assert!(novice.contains("natural groups"));
        assert!(novice.contains('%'));
        assert!(!novice.contains("silhouette"));
        let expert = narrate_segments(&report, &UserProfile::data_scientist("d"));
        assert!(expert.contains("silhouette="));
        assert!(expert.contains("k=2"));
    }

    #[test]
    fn deterministic() {
        let df = blob_frame(3);
        let a = discover_segments(&df, &["f0", "f1"], 4, 9).unwrap();
        let b = discover_segments(&df, &["f0", "f1"], 4, 9).unwrap();
        assert_eq!(a, b);
    }
}
