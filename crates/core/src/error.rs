//! Error type for the platform layer.

use std::fmt;

/// Errors raised by MATILDA platform sessions.
#[derive(Debug)]
pub enum PlatformError {
    /// A session-level precondition failed.
    Session(String),
    /// Failure in the data substrate.
    Data(matilda_data::DataError),
    /// Failure in the ML substrate.
    Ml(matilda_ml::MlError),
    /// Failure in the conversational substrate.
    Conversation(matilda_conversation::ConversationError),
    /// Failure in the creativity engine.
    Creativity(matilda_creativity::CreativityError),
    /// Failure in the pipeline substrate.
    Pipeline(matilda_pipeline::PipelineError),
    /// Failure in the provenance store.
    Provenance(matilda_provenance::ProvError),
}

impl fmt::Display for PlatformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlatformError::Session(m) => write!(f, "session error: {m}"),
            PlatformError::Data(e) => write!(f, "data error: {e}"),
            PlatformError::Ml(e) => write!(f, "ml error: {e}"),
            PlatformError::Conversation(e) => write!(f, "conversation error: {e}"),
            PlatformError::Creativity(e) => write!(f, "creativity error: {e}"),
            PlatformError::Pipeline(e) => write!(f, "pipeline error: {e}"),
            PlatformError::Provenance(e) => write!(f, "provenance error: {e}"),
        }
    }
}

impl std::error::Error for PlatformError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PlatformError::Session(_) => None,
            PlatformError::Data(e) => Some(e),
            PlatformError::Ml(e) => Some(e),
            PlatformError::Conversation(e) => Some(e),
            PlatformError::Creativity(e) => Some(e),
            PlatformError::Pipeline(e) => Some(e),
            PlatformError::Provenance(e) => Some(e),
        }
    }
}

impl From<matilda_data::DataError> for PlatformError {
    fn from(e: matilda_data::DataError) -> Self {
        PlatformError::Data(e)
    }
}

impl From<matilda_ml::MlError> for PlatformError {
    fn from(e: matilda_ml::MlError) -> Self {
        PlatformError::Ml(e)
    }
}

impl From<matilda_conversation::ConversationError> for PlatformError {
    fn from(e: matilda_conversation::ConversationError) -> Self {
        PlatformError::Conversation(e)
    }
}

impl From<matilda_creativity::CreativityError> for PlatformError {
    fn from(e: matilda_creativity::CreativityError) -> Self {
        PlatformError::Creativity(e)
    }
}

impl From<matilda_pipeline::PipelineError> for PlatformError {
    fn from(e: matilda_pipeline::PipelineError) -> Self {
        PlatformError::Pipeline(e)
    }
}

impl From<matilda_provenance::ProvError> for PlatformError {
    fn from(e: matilda_provenance::ProvError) -> Self {
        PlatformError::Provenance(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, PlatformError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversion() {
        let e: PlatformError = matilda_pipeline::PipelineError::InvalidSpec("x".into()).into();
        assert!(e.to_string().contains("pipeline"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(PlatformError::Session("boom".into())
            .to_string()
            .contains("boom"));
    }
}
