//! Integration tests for event-sourced session persistence: durable logs,
//! snapshot + replay recovery, snapshot-boundary edge cases, and the
//! chaos-tested kill-and-resurrect guarantee.

use matilda_core::prelude::*;
use matilda_core::sessionstore::{
    recover, RestoreError, SessionClass, SessionMeta, SessionStore, StoreConfig, META_VERSION,
};
use matilda_data::{Column, DataFrame};
use matilda_provenance::quality::audit;
use matilda_telemetry as telemetry;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn temp_store(tag: &str) -> (PathBuf, SessionStore) {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "matilda-sessionstore-{tag}-{}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::remove_dir_all(&dir).ok();
    let store = SessionStore::open(StoreConfig::new(&dir)).unwrap();
    (dir, store)
}

fn frame() -> DataFrame {
    DataFrame::from_columns(vec![
        ("x", Column::from_f64((0..60).map(f64::from).collect())),
        (
            "noise",
            Column::from_f64((0..60).map(|i| ((i * 7) % 5) as f64).collect()),
        ),
        (
            "label",
            Column::from_categorical(
                &(0..60)
                    .map(|i| if i < 30 { "a" } else { "b" })
                    .collect::<Vec<_>>(),
            ),
        ),
    ])
    .unwrap()
}

fn profile() -> matilda_conversation::UserProfile {
    matilda_conversation::UserProfile::novice("Ada", "urbanism")
}

/// A fixed, state-independent utterance script: every line is a valid input
/// in any dialogue state, so any prefix replays deterministically.
fn script() -> Vec<&'static str> {
    vec![
        "I want to predict 'label'",
        "yes",
        "no",
        "yes",
        "yes",
        "no",
        "run it",
        "done",
    ]
}

fn new_session(name: &str) -> DesignSession {
    DesignSession::new(
        name,
        "does x drive label?",
        frame(),
        profile(),
        PlatformConfig::quick(),
    )
}

#[test]
fn kill_and_resurrect_matches_straight_through_digest() {
    let (dir, store) = temp_store("resurrect");
    // Straight-through reference run: no store attached, same seed.
    let mut reference = new_session("resurrect");
    for line in script() {
        reference.step(line).unwrap();
    }
    assert!(reference.is_closed());
    let reference_digest = reference.provenance_digest();

    // The doomed run: persist, then "die" mid-design (drop without close).
    let kill_at = 4;
    {
        let mut doomed = new_session("resurrect");
        doomed.attach_store(&store).unwrap();
        for line in &script()[..kill_at] {
            doomed.step(line).unwrap();
        }
        assert!(!doomed.is_closed());
    } // dropped: the crash

    // Resurrect: the recovery pass replays the log...
    let report = recover(&store, &PlatformConfig::quick(), |_meta| Some(frame()));
    assert_eq!(report.count(SessionClass::InFlight), 1);
    assert!(report.quarantined.is_empty(), "nothing was corrupt");
    let mut recovered = report.resumed.into_iter().next().unwrap();
    assert_eq!(recovered.turns_replayed, kill_at);
    assert!(recovered.narration.contains("Nothing is lost"));
    // ...and the remaining turns land on the recovered session.
    for line in &script()[kill_at..] {
        recovered.session.step(line).unwrap();
    }
    assert!(recovered.session.is_closed());
    assert_eq!(
        recovered.session.provenance_digest(),
        reference_digest,
        "a resurrected session is indistinguishable from one that never died"
    );
    // The recovered log passes the provenance audit, and a second recovery
    // pass sees a clean close.
    let quality = audit(&recovered.session.recorder().snapshot());
    assert!(quality.all_passed(), "failures: {:?}", quality.failures());
    drop(recovered);
    let second = recover(&store, &PlatformConfig::quick(), |_meta| Some(frame()));
    assert_eq!(second.count(SessionClass::CleanClosed), 1);
    assert!(second.resumed.is_empty());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn snapshot_only_log_with_empty_tail_restores() {
    let (dir, store) = temp_store("snaponly");
    // Handcraft a log that is meta + snapshot, with no tail turn records.
    let session_dir = store.session_dir("hand");
    let journal =
        telemetry::journal::Journal::open(telemetry::journal::JournalConfig::new(&session_dir))
            .unwrap();
    let meta = SessionMeta {
        version: META_VERSION,
        session: "hand".into(),
        research_question: "rq".into(),
        user_name: "Ada".into(),
        user_expertise: "novice".into(),
        user_domain: "urbanism".into(),
        user_openness: 0.3,
        seed: 42,
        dataset: None,
    };
    journal.append("meta", &meta.to_json());
    journal.append(
        "snapshot",
        "{\"version\":1,\"turns\":2,\"events\":0,\"digest\":0,\"closed\":false,\
         \"t0\":\"I want to predict 'label'\",\"t1\":\"yes\"}",
    );
    journal.flush();
    drop(journal);
    let data = store.load("hand").unwrap();
    assert_eq!(data.turns.len(), 2, "turns come entirely from the snapshot");
    assert!(!data.closed);
    let (session, report) =
        DesignSession::restore(frame(), PlatformConfig::quick(), &data).unwrap();
    assert_eq!(report.turns_replayed, 2);
    assert!(!session.is_closed());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn tail_only_log_without_snapshot_restores() {
    let (dir, store) = temp_store("tailonly");
    {
        let mut s = new_session("tail");
        s.attach_store(&store).unwrap();
        // Default snapshot cadence (32 events) is never reached in 3 turns:
        // the log is meta + turn/provenance tail only.
        for line in &script()[..3] {
            s.step(line).unwrap();
        }
    }
    let data = store.load("tail").unwrap();
    assert_eq!(data.turns.len(), 3);
    assert!(data.snapshot_digest.is_none(), "no snapshot was written");
    let (session, report) =
        DesignSession::restore(frame(), PlatformConfig::quick(), &data).unwrap();
    assert_eq!(report.turns_replayed, 3);
    assert!(!session.is_closed());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn frequent_snapshots_and_tail_compose() {
    let (dir, _) = temp_store("snaptail");
    let store = SessionStore::open(StoreConfig {
        dir: dir.clone(),
        snapshot_every: 1, // a snapshot after every turn
    })
    .unwrap();
    let kill_at = 5;
    {
        let mut s = new_session("snaptail");
        s.attach_store(&store).unwrap();
        for line in &script()[..kill_at] {
            s.step(line).unwrap();
        }
    }
    let data = store.load("snaptail").unwrap();
    assert_eq!(data.turns.len(), kill_at);
    assert!(data.snapshot_digest.is_some());
    let report = recover(&store, &PlatformConfig::quick(), |_| Some(frame()));
    assert_eq!(report.resumed.len(), 1);
    assert_eq!(report.resumed[0].turns_replayed, kill_at);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_final_record_restores_to_the_prefix() {
    let (dir, store) = temp_store("torn");
    {
        let mut s = new_session("torn");
        s.attach_store(&store).unwrap();
        for line in &script()[..4] {
            s.step(line).unwrap();
        }
    }
    // Crash mid-write: raw truncated bytes, no newline, at the log's end.
    let segments = telemetry::journal::segment_paths(&store.session_dir("torn")).unwrap();
    let last = segments.last().unwrap();
    let mut file = std::fs::OpenOptions::new().append(true).open(last).unwrap();
    file.write_all(b"{\"seq\":9999,\"stream\":\"turn\",\"payl")
        .unwrap();
    drop(file);
    let data = store.load("torn").unwrap();
    assert_eq!(data.torn_lines, 1, "the torn tail is counted, not fatal");
    assert_eq!(data.turns.len(), 4, "the parseable prefix survives whole");
    let (_session, report) =
        DesignSession::restore(frame(), PlatformConfig::quick(), &data).unwrap();
    assert_eq!(report.turns_replayed, 4);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn empty_and_meta_less_logs_are_typed_errors_never_panics() {
    let (dir, store) = temp_store("empty");
    // An empty log: a journal was opened (one empty segment) but nothing
    // was ever written.
    let journal = telemetry::journal::Journal::open(telemetry::journal::JournalConfig::new(
        store.session_dir("nothing"),
    ))
    .unwrap();
    drop(journal);
    assert_eq!(store.load("nothing").unwrap_err(), RestoreError::EmptyLog);
    // A log with records but no meta: identity is gone.
    let journal = telemetry::journal::Journal::open(telemetry::journal::JournalConfig::new(
        store.session_dir("anon"),
    ))
    .unwrap();
    journal.append("turn", "{\"turn\":0,\"text\":\"hello\"}");
    journal.flush();
    drop(journal);
    assert_eq!(store.load("anon").unwrap_err(), RestoreError::MissingMeta);
    // A missing directory entirely is an io error, not a panic.
    assert!(matches!(
        store.load("never-existed").unwrap_err(),
        RestoreError::Io(_)
    ));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_payload_quarantines_on_recovery() {
    let (dir, store) = temp_store("corrupt");
    let journal = telemetry::journal::Journal::open(telemetry::journal::JournalConfig::new(
        store.session_dir("bad"),
    ))
    .unwrap();
    let meta = SessionMeta {
        version: META_VERSION,
        session: "bad".into(),
        research_question: "rq".into(),
        user_name: "Ada".into(),
        user_expertise: "novice".into(),
        user_domain: "urbanism".into(),
        user_openness: 0.3,
        seed: 42,
        dataset: None,
    };
    journal.append("meta", &meta.to_json());
    // A parseable journal line whose turn payload is garbage: corruption,
    // not a torn tail.
    journal.append("turn", "{\"bogus\":1}");
    journal.flush();
    drop(journal);
    assert!(matches!(
        store.load("bad").unwrap_err(),
        RestoreError::CorruptRecord { .. }
    ));
    let report = recover(&store, &PlatformConfig::quick(), |_| Some(frame()));
    assert_eq!(report.count(SessionClass::Corrupt), 1);
    assert_eq!(report.quarantined, vec!["bad".to_string()]);
    assert_eq!(store.quarantined_ids().unwrap(), vec!["bad".to_string()]);
    assert!(store.session_ids().unwrap().is_empty(), "moved aside");
    // A second pass finds nothing to do.
    let second = recover(&store, &PlatformConfig::quick(), |_| Some(frame()));
    assert!(second.outcomes.is_empty());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn seed_mismatch_is_rejected() {
    let (dir, store) = temp_store("seed");
    {
        let mut s = new_session("seeded");
        s.attach_store(&store).unwrap();
        s.step("I want to predict 'label'").unwrap();
    }
    let data = store.load("seeded").unwrap();
    let wrong = PlatformConfig {
        seed: 999,
        ..PlatformConfig::quick()
    };
    match DesignSession::restore(frame(), wrong, &data) {
        Err(RestoreError::SeedMismatch {
            log: 42,
            config: 999,
        }) => {}
        Err(other) => panic!("wrong error: {other}"),
        Ok(_) => panic!("a seed mismatch must not restore"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn injected_store_write_faults_never_escape_and_degrade_to_noops() {
    use matilda_resilience::{fault, FaultKind, FaultPlan};
    let scoped = telemetry::metrics::scoped();
    let (dir, store) = temp_store("writefault");
    // Every store write fails at the io layer; the retry policy exhausts,
    // the breaker opens, persistence degrades to counted no-ops — and the
    // conversation never notices.
    let _scope = fault::activate(FaultPlan::new(7).inject("store.write", FaultKind::IoError, 1.0));
    let mut s = new_session("faulted");
    s.attach_store(&store).unwrap();
    for line in &script()[..5] {
        let outcome = s.step(line).unwrap();
        assert!(!outcome.reply.is_empty());
    }
    assert!(!s.is_closed());
    let snapshot = scoped.registry().snapshot();
    assert!(
        snapshot.counter(telemetry::metrics::names::STORE_WRITE_ERRORS) > 0,
        "exhausted writes are counted"
    );
    assert!(
        snapshot.counter(telemetry::metrics::names::STORE_WRITES_SKIPPED) > 0,
        "the open breaker degrades writes to counted no-ops"
    );
    assert_eq!(
        snapshot.counter(telemetry::metrics::names::JOURNAL_WRITE_ERRORS),
        0,
        "injected store faults never pollute the telemetry journal's counter"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_write_faults_are_healed_by_retry() {
    use matilda_resilience::{fault, FaultKind, FaultPlan};
    let scoped = telemetry::metrics::scoped();
    let (dir, store) = temp_store("tornwrite");
    // A torn write on the first attempt of some writes: the retry appends
    // the record whole, so the log stays complete; replay counts the torn
    // half-lines and moves on.
    let _scope =
        fault::activate(FaultPlan::new(11).inject("store.write", FaultKind::TornWrite, 0.3));
    let kill_at = 4;
    {
        let mut s = new_session("tornwrite");
        s.attach_store(&store).unwrap();
        for line in &script()[..kill_at] {
            s.step(line).unwrap();
        }
    }
    let retried = scoped
        .registry()
        .snapshot()
        .counter(telemetry::metrics::names::STORE_WRITES_RETRIED);
    assert!(retried > 0, "some writes must have healed via retry");
    let data = store.load("tornwrite").unwrap();
    assert!(data.torn_lines > 0, "the torn halves are visible");
    assert_eq!(data.turns.len(), kill_at, "yet no turn was lost");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn injected_read_faults_surface_as_typed_errors() {
    use matilda_resilience::{fault, FaultKind, FaultPlan};
    let (dir, store) = temp_store("readfault");
    {
        let mut s = new_session("readfault");
        s.attach_store(&store).unwrap();
        for line in &script()[..3] {
            s.step(line).unwrap();
        }
    }
    // An injected io error on read is a typed RestoreError, never a panic.
    {
        let _scope =
            fault::activate(FaultPlan::new(3).inject("store.read", FaultKind::IoError, 1.0));
        assert!(matches!(
            store.load("readfault").unwrap_err(),
            RestoreError::Io(_)
        ));
    }
    // An injected short read truncates the tail: the load still succeeds
    // with a (possibly shorter) turn prefix.
    {
        let _scope =
            fault::activate(FaultPlan::new(3).inject("store.read", FaultKind::ShortRead, 1.0));
        let data = store.load("readfault").unwrap();
        assert!(data.turns.len() <= 3);
    }
    // Outside any scope the full log is back.
    assert_eq!(store.load("readfault").unwrap().turns.len(), 3);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sessions_listing_reflects_store_state() {
    let (dir, store) = temp_store("listing");
    {
        let mut open = new_session("in-flight");
        open.attach_store(&store).unwrap();
        open.step("I want to predict 'label'").unwrap();
        let mut closed = new_session("closed");
        closed.attach_store(&store).unwrap();
        closed.step("done").unwrap();
        assert!(closed.is_closed());
    }
    let listing = store.listing_json();
    assert!(listing.contains("\"id\":\"in-flight\""), "{listing}");
    assert!(listing.contains("\"class\":\"in_flight\""), "{listing}");
    assert!(listing.contains("\"id\":\"closed\""), "{listing}");
    assert!(listing.contains("\"class\":\"clean_closed\""), "{listing}");
    std::fs::remove_dir_all(&dir).ok();
}
