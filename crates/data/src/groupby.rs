//! Group-by aggregation.

use crate::column::Column;
use crate::error::{DataError, Result};
use crate::frame::DataFrame;
use crate::stats;
use crate::value::{DType, Value};

/// Aggregation applied to a numeric column within each group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Agg {
    /// Row count of the group (ignores nulls in the aggregated column).
    Count,
    /// Sum of non-null values.
    Sum,
    /// Mean of non-null values.
    Mean,
    /// Minimum of non-null values.
    Min,
    /// Maximum of non-null values.
    Max,
    /// Sample standard deviation of non-null values.
    Std,
}

impl Agg {
    /// Name used in output columns, e.g. `"mean(x)"`.
    pub fn name(self) -> &'static str {
        match self {
            Agg::Count => "count",
            Agg::Sum => "sum",
            Agg::Mean => "mean",
            Agg::Min => "min",
            Agg::Max => "max",
            Agg::Std => "std",
        }
    }

    fn apply(self, xs: &[f64]) -> Option<f64> {
        if xs.is_empty() {
            return if self == Agg::Count { Some(0.0) } else { None };
        }
        Some(match self {
            Agg::Count => xs.len() as f64,
            Agg::Sum => xs.iter().sum(),
            Agg::Mean => stats::mean(xs).ok()?,
            Agg::Min => xs.iter().copied().fold(f64::INFINITY, f64::min),
            Agg::Max => xs.iter().copied().fold(f64::NEG_INFINITY, f64::max),
            Agg::Std => stats::std_dev(xs).ok()?,
        })
    }
}

/// Group `df` by the `key` column and aggregate each `(column, agg)` pair.
///
/// The output has one row per distinct key value (in first-seen order), the
/// key column first, then one column per aggregation named `"{agg}({col})"`.
pub fn group_by(df: &DataFrame, key: &str, aggs: &[(&str, Agg)]) -> Result<DataFrame> {
    let mut timer = matilda_telemetry::profile::phase("data.group_by");
    timer.field("rows", df.n_rows()).field("aggs", aggs.len());
    let key_col = df.column(key)?;
    if df.n_rows() == 0 {
        return Err(DataError::Empty("frame"));
    }
    // Partition row indices by key value (string form; nulls group together).
    let mut groups: Vec<(Value, Vec<usize>)> = Vec::new();
    for (i, v) in key_col.iter().enumerate() {
        match groups.iter_mut().find(|(k, _)| *k == v) {
            Some((_, rows)) => rows.push(i),
            None => groups.push((v, vec![i])),
        }
    }

    let mut out = DataFrame::new();
    let mut key_out = Column::empty(match key_col.dtype() {
        DType::Categorical => DType::Categorical,
        other => other,
    });
    for (k, _) in &groups {
        key_out.push(k.clone())?;
    }
    out.add_column(key, key_out)?;

    for &(col_name, agg) in aggs {
        let col = df.column(col_name)?;
        let values = col.to_f64()?;
        let mut agg_out: Vec<Option<f64>> = Vec::with_capacity(groups.len());
        for (_, rows) in &groups {
            let xs: Vec<f64> = rows.iter().filter_map(|&i| values[i]).collect();
            agg_out.push(agg.apply(&xs));
        }
        out.add_column(
            format!("{}({col_name})", agg.name()),
            Column::from_opt_f64(agg_out),
        )?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DataFrame {
        DataFrame::from_columns(vec![
            (
                "city",
                Column::from_categorical(&["lyon", "puebla", "lyon", "puebla", "lyon"]),
            ),
            ("co2", Column::from_f64(vec![10.0, 20.0, 30.0, 40.0, 50.0])),
            (
                "footfall",
                Column::from_opt_f64(vec![Some(1.0), Some(2.0), None, Some(4.0), Some(5.0)]),
            ),
        ])
        .unwrap()
    }

    #[test]
    fn mean_per_group() {
        let out = group_by(&sample(), "city", &[("co2", Agg::Mean)]).unwrap();
        assert_eq!(out.n_rows(), 2);
        assert_eq!(out.names(), vec!["city", "mean(co2)"]);
        assert_eq!(out.row(0).unwrap()[0], Value::Str("lyon".into()));
        assert_eq!(out.row(0).unwrap()[1], Value::Float(30.0));
        assert_eq!(out.row(1).unwrap()[1], Value::Float(30.0));
    }

    #[test]
    fn multiple_aggregations() {
        let out = group_by(
            &sample(),
            "city",
            &[
                ("co2", Agg::Sum),
                ("co2", Agg::Min),
                ("co2", Agg::Max),
                ("co2", Agg::Count),
            ],
        )
        .unwrap();
        assert_eq!(
            out.names(),
            vec!["city", "sum(co2)", "min(co2)", "max(co2)", "count(co2)"]
        );
        let lyon = out.row(0).unwrap();
        assert_eq!(lyon[1], Value::Float(90.0));
        assert_eq!(lyon[2], Value::Float(10.0));
        assert_eq!(lyon[3], Value::Float(50.0));
        assert_eq!(lyon[4], Value::Float(3.0));
    }

    #[test]
    fn nulls_excluded_from_aggregates() {
        let out = group_by(&sample(), "city", &[("footfall", Agg::Count)]).unwrap();
        assert_eq!(
            out.row(0).unwrap()[1],
            Value::Float(2.0),
            "lyon has one null footfall"
        );
    }

    #[test]
    fn std_per_group() {
        let out = group_by(&sample(), "city", &[("co2", Agg::Std)]).unwrap();
        let lyon_std = out.row(0).unwrap()[1].as_f64().unwrap();
        assert!((lyon_std - 20.0).abs() < 1e-12);
    }

    #[test]
    fn missing_key_column_errors() {
        assert!(group_by(&sample(), "nope", &[]).is_err());
    }

    #[test]
    fn group_by_int_key() {
        let df = DataFrame::from_columns(vec![
            ("k", Column::from_i64(vec![1, 2, 1])),
            ("v", Column::from_f64(vec![1.0, 2.0, 3.0])),
        ])
        .unwrap();
        let out = group_by(&df, "k", &[("v", Agg::Sum)]).unwrap();
        assert_eq!(out.n_rows(), 2);
        assert_eq!(out.row(0).unwrap(), vec![Value::Int(1), Value::Float(4.0)]);
    }

    #[test]
    fn null_keys_group_together() {
        let df = DataFrame::from_columns(vec![
            ("k", Column::from_opt_categorical(&[Some("a"), None, None])),
            ("v", Column::from_f64(vec![1.0, 2.0, 3.0])),
        ])
        .unwrap();
        let out = group_by(&df, "k", &[("v", Agg::Sum)]).unwrap();
        assert_eq!(out.n_rows(), 2);
        assert_eq!(out.row(1).unwrap()[1], Value::Float(5.0));
    }
}
