//! Dynamically typed cell values and data types.

use std::cmp::Ordering;
use std::fmt;

/// The logical type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum DType {
    /// 64-bit floating point.
    Float,
    /// 64-bit signed integer.
    Int,
    /// Boolean.
    Bool,
    /// Dictionary-encoded categorical string.
    Categorical,
    /// Arbitrary UTF-8 string.
    Str,
}

impl DType {
    /// Human-readable name, used in error messages.
    pub fn name(self) -> &'static str {
        match self {
            DType::Float => "float",
            DType::Int => "int",
            DType::Bool => "bool",
            DType::Categorical => "categorical",
            DType::Str => "str",
        }
    }

    /// Whether values of this type can be used directly as model features.
    pub fn is_numeric(self) -> bool {
        matches!(self, DType::Float | DType::Int | DType::Bool)
    }
}

impl fmt::Display for DType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A single dynamically typed cell value.
///
/// `Value` is the exchange currency between the typed columnar storage and
/// generic row-oriented operations (CSV parsing, display, filtering
/// predicates written by users).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Missing value.
    Null,
    /// 64-bit float.
    Float(f64),
    /// 64-bit signed integer.
    Int(i64),
    /// Boolean.
    Bool(bool),
    /// String (also used for categorical cells).
    Str(String),
}

impl Value {
    /// `true` if the value is [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The natural [`DType`] of the value, or `None` for nulls.
    pub fn dtype(&self) -> Option<DType> {
        match self {
            Value::Null => None,
            Value::Float(_) => Some(DType::Float),
            Value::Int(_) => Some(DType::Int),
            Value::Bool(_) => Some(DType::Bool),
            Value::Str(_) => Some(DType::Str),
        }
    }

    /// Numeric view of the value: ints and bools are widened to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            Value::Int(v) => Some(*v as f64),
            Value::Bool(v) => Some(if *v { 1.0 } else { 0.0 }),
            _ => None,
        }
    }

    /// Integer view of the value; floats are not silently truncated.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Bool(v) => Some(i64::from(*v)),
            _ => None,
        }
    }

    /// String view of the value.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view of the value.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Total ordering used by sorting and group-by: Null < Bool < numeric < Str,
    /// with NaN ordered greater than all other floats.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        fn rank(v: &Value) -> u8 {
            match v {
                Value::Null => 0,
                Value::Bool(_) => 1,
                Value::Int(_) | Value::Float(_) => 2,
                Value::Str(_) => 3,
            }
        }
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Bool(a), Value::Bool(b)) => a.cmp(b),
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Float(a), Value::Float(b)) => a.total_cmp(b),
            (Value::Int(a), Value::Float(b)) => (*a as f64).total_cmp(b),
            (Value::Float(a), Value::Int(b)) => a.total_cmp(&(*b as f64)),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str(""),
            Value::Float(v) => write!(f, "{v}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Str(v) => f.write_str(v),
        }
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(v: Option<T>) -> Self {
        match v {
            Some(v) => v.into(),
            None => Value::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dtype_names() {
        assert_eq!(DType::Float.name(), "float");
        assert_eq!(DType::Categorical.to_string(), "categorical");
    }

    #[test]
    fn numeric_dtypes() {
        assert!(DType::Float.is_numeric());
        assert!(DType::Int.is_numeric());
        assert!(DType::Bool.is_numeric());
        assert!(!DType::Str.is_numeric());
        assert!(!DType::Categorical.is_numeric());
    }

    #[test]
    fn as_f64_widens() {
        assert_eq!(Value::Int(3).as_f64(), Some(3.0));
        assert_eq!(Value::Bool(true).as_f64(), Some(1.0));
        assert_eq!(Value::Float(2.5).as_f64(), Some(2.5));
        assert_eq!(Value::Str("x".into()).as_f64(), None);
        assert_eq!(Value::Null.as_f64(), None);
    }

    #[test]
    fn as_i64_does_not_truncate_floats() {
        assert_eq!(Value::Float(2.9).as_i64(), None);
        assert_eq!(Value::Int(7).as_i64(), Some(7));
        assert_eq!(Value::Bool(false).as_i64(), Some(0));
    }

    #[test]
    fn null_detection() {
        assert!(Value::Null.is_null());
        assert!(!Value::Int(0).is_null());
        assert_eq!(Value::Null.dtype(), None);
    }

    #[test]
    fn ordering_across_types() {
        let mut vs = [
            Value::Str("a".into()),
            Value::Float(1.5),
            Value::Null,
            Value::Int(2),
            Value::Bool(true),
        ];
        vs.sort_by(|a, b| a.total_cmp(b));
        assert!(vs[0].is_null());
        assert_eq!(vs[1], Value::Bool(true));
        assert_eq!(vs[2], Value::Float(1.5));
        assert_eq!(vs[3], Value::Int(2));
        assert_eq!(vs[4], Value::Str("a".into()));
    }

    #[test]
    fn ordering_mixed_numeric() {
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.5)), Ordering::Less);
        assert_eq!(
            Value::Float(3.0).total_cmp(&Value::Int(2)),
            Ordering::Greater
        );
    }

    #[test]
    fn nan_sorts_last_among_floats() {
        let mut vs = [
            Value::Float(f64::NAN),
            Value::Float(0.0),
            Value::Float(-1.0),
        ];
        vs.sort_by(|a, b| a.total_cmp(b));
        assert_eq!(vs[0], Value::Float(-1.0));
        assert!(matches!(vs[2], Value::Float(v) if v.is_nan()));
    }

    #[test]
    fn from_option() {
        assert_eq!(Value::from(Some(1.0_f64)), Value::Float(1.0));
        assert_eq!(Value::from(Option::<i64>::None), Value::Null);
    }

    #[test]
    fn display_round_trip() {
        assert_eq!(Value::Int(-4).to_string(), "-4");
        assert_eq!(Value::Null.to_string(), "");
        assert_eq!(Value::Str("hi".into()).to_string(), "hi");
    }
}
