//! Descriptive statistics over columns and frames.
//!
//! These are the primitives the platform's *data exploration* phase exposes
//! to the conversational loop: per-column summaries, quantiles, correlation
//! matrices and histograms.

use crate::column::Column;
use crate::error::{DataError, Result};
use crate::frame::DataFrame;

/// Summary statistics of one numeric column (nulls excluded).
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Non-null count.
    pub count: usize,
    /// Null count.
    pub nulls: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n-1 denominator; 0 when count < 2).
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// 25th percentile.
    pub q25: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub q75: f64,
    /// Maximum.
    pub max: f64,
}

/// Mean of a slice; errors when empty.
pub fn mean(xs: &[f64]) -> Result<f64> {
    if xs.is_empty() {
        return Err(DataError::Empty("slice"));
    }
    Ok(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Sample variance (n-1); 0 for fewer than two values.
pub fn variance(xs: &[f64]) -> Result<f64> {
    let m = mean(xs)?;
    if xs.len() < 2 {
        return Ok(0.0);
    }
    Ok(xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64)
}

/// Sample standard deviation.
pub fn std_dev(xs: &[f64]) -> Result<f64> {
    Ok(variance(xs)?.sqrt())
}

/// Linear-interpolated quantile, `q` in `[0, 1]`, over unsorted data.
pub fn quantile(xs: &[f64], q: f64) -> Result<f64> {
    if xs.is_empty() {
        return Err(DataError::Empty("slice"));
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(DataError::InvalidParameter(format!(
            "quantile {q} outside [0,1]"
        )));
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(f64::total_cmp);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Ok(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
}

/// Median (50th percentile).
pub fn median(xs: &[f64]) -> Result<f64> {
    quantile(xs, 0.5)
}

/// Most frequent value of a column as a raw [`crate::value::Value`].
pub fn mode(col: &Column) -> Option<crate::value::Value> {
    col.value_counts().into_iter().next().map(|(v, _)| v)
}

/// Pearson correlation of two equal-length slices.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Result<f64> {
    if xs.len() != ys.len() {
        return Err(DataError::LengthMismatch {
            expected: xs.len(),
            got: ys.len(),
        });
    }
    if xs.len() < 2 {
        return Err(DataError::Empty("correlation input"));
    }
    let mx = mean(xs)?;
    let my = mean(ys)?;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx).powi(2);
        vy += (y - my).powi(2);
    }
    if vx == 0.0 || vy == 0.0 {
        return Err(DataError::InvalidParameter(
            "zero variance in correlation".into(),
        ));
    }
    Ok(cov / (vx.sqrt() * vy.sqrt()))
}

/// Full summary of one numeric column.
pub fn summarize(col: &Column) -> Result<Summary> {
    let xs = col.to_f64_dense()?;
    if xs.is_empty() {
        return Err(DataError::Empty("column"));
    }
    let mut sorted = xs.clone();
    sorted.sort_by(f64::total_cmp);
    Ok(Summary {
        count: xs.len(),
        nulls: col.null_count(),
        mean: mean(&xs)?,
        std: std_dev(&xs)?,
        min: sorted[0],
        q25: quantile(&xs, 0.25)?,
        median: quantile(&xs, 0.5)?,
        q75: quantile(&xs, 0.75)?,
        max: *sorted.last().expect("non-empty"),
    })
}

/// Summaries for every numeric column of a frame as `(name, summary)` pairs.
pub fn describe(df: &DataFrame) -> Vec<(String, Summary)> {
    df.iter_columns()
        .filter(|(_, c)| c.dtype().is_numeric())
        .filter_map(|(name, c)| summarize(c).ok().map(|s| (name.to_owned(), s)))
        .collect()
}

/// Pairwise Pearson correlation matrix of the named numeric columns,
/// computed over rows where both columns are non-null.
pub fn correlation_matrix(df: &DataFrame, names: &[&str]) -> Result<Vec<Vec<f64>>> {
    let cols: Vec<Vec<Option<f64>>> = names
        .iter()
        .map(|n| df.column(n)?.to_f64())
        .collect::<Result<_>>()?;
    let k = cols.len();
    let mut m = vec![vec![0.0; k]; k];
    for i in 0..k {
        m[i][i] = 1.0;
        for j in (i + 1)..k {
            let (mut xs, mut ys) = (Vec::new(), Vec::new());
            for (a, b) in cols[i].iter().zip(&cols[j]) {
                if let (Some(a), Some(b)) = (a, b) {
                    xs.push(*a);
                    ys.push(*b);
                }
            }
            let r = pearson(&xs, &ys).unwrap_or(0.0);
            m[i][j] = r;
            m[j][i] = r;
        }
    }
    Ok(m)
}

/// An equal-width histogram: bin edges (`n_bins + 1`) and counts (`n_bins`).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Bin edges, ascending, length `counts.len() + 1`.
    pub edges: Vec<f64>,
    /// Count per bin.
    pub counts: Vec<usize>,
}

/// Equal-width histogram of a numeric column, nulls excluded.
pub fn histogram(col: &Column, n_bins: usize) -> Result<Histogram> {
    if n_bins == 0 {
        return Err(DataError::InvalidParameter(
            "histogram needs at least one bin".into(),
        ));
    }
    let xs = col.to_f64_dense()?;
    if xs.is_empty() {
        return Err(DataError::Empty("column"));
    }
    let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
    let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let width = if max > min {
        (max - min) / n_bins as f64
    } else {
        1.0
    };
    let edges: Vec<f64> = (0..=n_bins).map(|i| min + width * i as f64).collect();
    let mut counts = vec![0usize; n_bins];
    for x in xs {
        let mut bin = ((x - min) / width) as usize;
        if bin >= n_bins {
            bin = n_bins - 1; // max value falls in the last bin
        }
        counts[bin] += 1;
    }
    Ok(Histogram { edges, counts })
}

/// Skewness (Fisher-Pearson, population formula); 0 when undefined.
pub fn skewness(xs: &[f64]) -> Result<f64> {
    let m = mean(xs)?;
    let n = xs.len() as f64;
    let s2 = xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / n;
    if s2 == 0.0 {
        return Ok(0.0);
    }
    let m3 = xs.iter().map(|x| (x - m).powi(3)).sum::<f64>() / n;
    Ok(m3 / s2.powf(1.5))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::DataFrame;

    #[test]
    fn mean_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs).unwrap() - 5.0).abs() < 1e-12);
        assert!((std_dev(&xs).unwrap() - 2.138089935).abs() < 1e-6);
    }

    #[test]
    fn mean_empty_errors() {
        assert!(mean(&[]).is_err());
    }

    #[test]
    fn variance_single_is_zero() {
        assert_eq!(variance(&[3.0]).unwrap(), 0.0);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0).unwrap(), 1.0);
        assert_eq!(quantile(&xs, 1.0).unwrap(), 4.0);
        assert_eq!(quantile(&xs, 0.5).unwrap(), 2.5);
        assert!((quantile(&xs, 0.25).unwrap() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn quantile_domain_checked() {
        assert!(quantile(&[1.0], 1.5).is_err());
        assert!(quantile(&[], 0.5).is_err());
    }

    #[test]
    fn median_odd() {
        assert_eq!(median(&[5.0, 1.0, 3.0]).unwrap(), 3.0);
    }

    #[test]
    fn pearson_perfect() {
        let xs = [1.0, 2.0, 3.0];
        let ys = [2.0, 4.0, 6.0];
        assert!((pearson(&xs, &ys).unwrap() - 1.0).abs() < 1e-12);
        let neg = [3.0, 2.0, 1.0];
        assert!((pearson(&xs, &neg).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_zero_variance_errors() {
        assert!(pearson(&[1.0, 1.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn summary_ignores_nulls() {
        let col = Column::from_opt_f64(vec![Some(1.0), None, Some(3.0), Some(2.0)]);
        let s = summarize(&col).unwrap();
        assert_eq!(s.count, 3);
        assert_eq!(s.nulls, 1);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.median, 2.0);
    }

    #[test]
    fn describe_numeric_only() {
        let df = DataFrame::from_columns(vec![
            ("x", Column::from_f64(vec![1.0, 2.0])),
            ("c", Column::from_categorical(&["a", "b"])),
        ])
        .unwrap();
        let d = describe(&df);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].0, "x");
    }

    #[test]
    fn correlation_matrix_symmetric() {
        let df = DataFrame::from_columns(vec![
            ("a", Column::from_f64(vec![1.0, 2.0, 3.0, 4.0])),
            ("b", Column::from_f64(vec![2.0, 4.0, 6.0, 8.0])),
            ("c", Column::from_f64(vec![4.0, 3.0, 2.0, 1.0])),
        ])
        .unwrap();
        let m = correlation_matrix(&df, &["a", "b", "c"]).unwrap();
        assert!((m[0][1] - 1.0).abs() < 1e-12);
        assert!((m[0][2] + 1.0).abs() < 1e-12);
        assert_eq!(m[1][2], m[2][1]);
        assert_eq!(m[0][0], 1.0);
    }

    #[test]
    fn correlation_skips_null_pairs() {
        let df = DataFrame::from_columns(vec![
            (
                "a",
                Column::from_opt_f64(vec![Some(1.0), Some(2.0), None, Some(4.0)]),
            ),
            (
                "b",
                Column::from_opt_f64(vec![Some(1.0), Some(2.0), Some(9.0), Some(4.0)]),
            ),
        ])
        .unwrap();
        let m = correlation_matrix(&df, &["a", "b"]).unwrap();
        assert!((m[0][1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_counts_all_values() {
        let col = Column::from_f64(vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]);
        let h = histogram(&col, 5).unwrap();
        assert_eq!(h.counts.iter().sum::<usize>(), 6);
        assert_eq!(h.edges.len(), 6);
        assert_eq!(*h.counts.last().unwrap(), 2, "max value lands in last bin");
    }

    #[test]
    fn histogram_constant_column() {
        let col = Column::from_f64(vec![7.0; 4]);
        let h = histogram(&col, 3).unwrap();
        assert_eq!(h.counts[0], 4);
    }

    #[test]
    fn histogram_zero_bins_errors() {
        let col = Column::from_f64(vec![1.0]);
        assert!(histogram(&col, 0).is_err());
    }

    #[test]
    fn mode_of_categorical() {
        let col = Column::from_categorical(&["x", "y", "x"]);
        assert_eq!(mode(&col), Some(crate::value::Value::Str("x".into())));
    }

    #[test]
    fn skewness_symmetric_is_zero() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert!(skewness(&xs).unwrap().abs() < 1e-12);
        assert_eq!(skewness(&[2.0, 2.0]).unwrap(), 0.0);
    }

    #[test]
    fn skewness_right_tail_positive() {
        let xs = [1.0, 1.0, 1.0, 1.0, 10.0];
        assert!(skewness(&xs).unwrap() > 0.0);
    }
}
