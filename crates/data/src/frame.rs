//! The [`DataFrame`]: an ordered collection of equal-length named columns.

use crate::column::Column;
use crate::error::{DataError, Result};
use crate::schema::{Field, Schema};
use crate::value::Value;
use std::fmt;

/// An in-memory columnar table.
///
/// Invariants: every column has the same length, and column names are unique.
/// All constructors and mutators preserve these invariants or return an error.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DataFrame {
    schema: Schema,
    columns: Vec<Column>,
    n_rows: usize,
}

impl DataFrame {
    /// An empty frame with no columns and no rows.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a frame from `(name, column)` pairs.
    pub fn from_columns(pairs: Vec<(impl Into<String>, Column)>) -> Result<Self> {
        let mut df = DataFrame::new();
        for (name, col) in pairs {
            df.add_column(name.into(), col)?;
        }
        Ok(df)
    }

    /// The frame's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn n_cols(&self) -> usize {
        self.columns.len()
    }

    /// `true` when the frame has no rows or no columns.
    pub fn is_empty(&self) -> bool {
        self.n_rows == 0 || self.columns.is_empty()
    }

    /// Column names in order.
    pub fn names(&self) -> Vec<&str> {
        self.schema.names()
    }

    /// The column named `name`.
    pub fn column(&self, name: &str) -> Result<&Column> {
        let idx = self
            .schema
            .index_of(name)
            .ok_or_else(|| DataError::ColumnNotFound(name.to_owned()))?;
        Ok(&self.columns[idx])
    }

    /// The column at position `idx`.
    pub fn column_at(&self, idx: usize) -> Option<&Column> {
        self.columns.get(idx)
    }

    /// Append a column; its length must match existing rows (any length if
    /// this is the first column).
    pub fn add_column(&mut self, name: impl Into<String>, col: Column) -> Result<()> {
        let name = name.into();
        if self.columns.is_empty() {
            self.n_rows = col.len();
        } else if col.len() != self.n_rows {
            return Err(DataError::LengthMismatch {
                expected: self.n_rows,
                got: col.len(),
            });
        }
        self.schema.push(Field::new(name, col.dtype()))?;
        self.columns.push(col);
        Ok(())
    }

    /// Replace the column named `name`, keeping its position. The new column
    /// may change dtype but must match the row count.
    pub fn replace_column(&mut self, name: &str, col: Column) -> Result<()> {
        let idx = self
            .schema
            .index_of(name)
            .ok_or_else(|| DataError::ColumnNotFound(name.to_owned()))?;
        if col.len() != self.n_rows {
            return Err(DataError::LengthMismatch {
                expected: self.n_rows,
                got: col.len(),
            });
        }
        let mut fields = self.schema.fields().to_vec();
        fields[idx].dtype = col.dtype();
        self.schema = Schema::from_fields(fields)?;
        self.columns[idx] = col;
        Ok(())
    }

    /// Add the column if absent, otherwise replace it in place.
    pub fn upsert_column(&mut self, name: &str, col: Column) -> Result<()> {
        if self.schema.index_of(name).is_some() {
            self.replace_column(name, col)
        } else {
            self.add_column(name, col)
        }
    }

    /// Remove and return the column named `name`.
    pub fn drop_column(&mut self, name: &str) -> Result<Column> {
        let idx = self
            .schema
            .index_of(name)
            .ok_or_else(|| DataError::ColumnNotFound(name.to_owned()))?;
        self.schema.remove(name)?;
        let col = self.columns.remove(idx);
        if self.columns.is_empty() {
            self.n_rows = 0;
        }
        Ok(col)
    }

    /// A new frame with only the named columns, in the given order.
    pub fn select(&self, names: &[&str]) -> Result<DataFrame> {
        let mut df = DataFrame::new();
        for &name in names {
            df.add_column(name, self.column(name)?.clone())?;
        }
        Ok(df)
    }

    /// Row `i` as dynamic values, in schema order.
    pub fn row(&self, i: usize) -> Result<Vec<Value>> {
        if i >= self.n_rows {
            return Err(DataError::RowOutOfBounds {
                index: i,
                len: self.n_rows,
            });
        }
        self.columns.iter().map(|c| c.get(i)).collect()
    }

    /// A new frame with rows at `indices`, in order (duplicates allowed).
    pub fn take(&self, indices: &[usize]) -> Result<DataFrame> {
        let mut df = DataFrame::new();
        for (field, col) in self.schema.fields().iter().zip(&self.columns) {
            df.add_column(field.name.clone(), col.take(indices)?)?;
        }
        // A frame with columns but zero selected rows keeps its columns.
        if df.columns.is_empty() {
            df.n_rows = 0;
        }
        Ok(df)
    }

    /// The first `n` rows (fewer if the frame is shorter).
    pub fn head(&self, n: usize) -> DataFrame {
        let n = n.min(self.n_rows);
        let idx: Vec<usize> = (0..n).collect();
        self.take(&idx).expect("indices in range")
    }

    /// Keep rows where `predicate(row_index)` is true.
    pub fn filter_by_index(&self, predicate: impl Fn(usize) -> bool) -> DataFrame {
        let idx: Vec<usize> = (0..self.n_rows).filter(|&i| predicate(i)).collect();
        self.take(&idx).expect("indices in range")
    }

    /// Keep rows where the boolean `mask` is true. The mask length must match.
    pub fn filter_mask(&self, mask: &[bool]) -> Result<DataFrame> {
        if mask.len() != self.n_rows {
            return Err(DataError::LengthMismatch {
                expected: self.n_rows,
                got: mask.len(),
            });
        }
        Ok(self.filter_by_index(|i| mask[i]))
    }

    /// Keep rows whose value in `name` satisfies `predicate`.
    pub fn filter_column(
        &self,
        name: &str,
        predicate: impl Fn(&Value) -> bool,
    ) -> Result<DataFrame> {
        let col = self.column(name)?;
        let mask: Vec<bool> = col.iter().map(|v| predicate(&v)).collect();
        self.filter_mask(&mask)
    }

    /// Row indices sorted ascending by the column `name` (nulls first).
    pub fn argsort(&self, name: &str) -> Result<Vec<usize>> {
        let col = self.column(name)?;
        let values: Vec<Value> = col.iter().collect();
        let mut idx: Vec<usize> = (0..self.n_rows).collect();
        idx.sort_by(|&a, &b| values[a].total_cmp(&values[b]));
        Ok(idx)
    }

    /// A new frame sorted ascending by `name`.
    pub fn sort_by(&self, name: &str) -> Result<DataFrame> {
        let idx = self.argsort(name)?;
        self.take(&idx)
    }

    /// Vertically concatenate another frame with an identical schema.
    pub fn vstack(&self, other: &DataFrame) -> Result<DataFrame> {
        if self.schema != other.schema {
            return Err(DataError::InvalidParameter(
                "vstack requires identical schemas".into(),
            ));
        }
        let mut df = DataFrame::new();
        for (field, (a, b)) in self
            .schema
            .fields()
            .iter()
            .zip(self.columns.iter().zip(&other.columns))
        {
            let mut col = Column::empty(field.dtype);
            for v in a.iter().chain(b.iter()) {
                col.push(v)?;
            }
            df.add_column(field.name.clone(), col)?;
        }
        Ok(df)
    }

    /// Total nulls across all columns.
    pub fn null_count(&self) -> usize {
        self.columns.iter().map(Column::null_count).sum()
    }

    /// Drop all rows containing at least one null.
    pub fn drop_nulls(&self) -> DataFrame {
        self.filter_by_index(|i| self.columns.iter().all(|c| c.validity().get(i)))
    }

    /// Iterate `(name, column)` pairs in schema order.
    pub fn iter_columns(&self) -> impl Iterator<Item = (&str, &Column)> + '_ {
        self.schema
            .fields()
            .iter()
            .map(|f| f.name.as_str())
            .zip(self.columns.iter())
    }

    /// Extract the named numeric columns as a dense row-major feature matrix,
    /// erroring if any referenced cell is null or non-numeric.
    pub fn to_matrix(&self, names: &[&str]) -> Result<Vec<Vec<f64>>> {
        let cols: Vec<Vec<Option<f64>>> = names
            .iter()
            .map(|n| self.column(n)?.to_f64())
            .collect::<Result<_>>()?;
        let mut rows = Vec::with_capacity(self.n_rows);
        for i in 0..self.n_rows {
            let mut row = Vec::with_capacity(cols.len());
            for (j, col) in cols.iter().enumerate() {
                row.push(col[i].ok_or_else(|| {
                    DataError::InvalidParameter(format!(
                        "null in feature column '{}' at row {i}",
                        names[j]
                    ))
                })?);
            }
            rows.push(row);
        }
        Ok(rows)
    }
}

impl fmt::Display for DataFrame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        const MAX_ROWS: usize = 10;
        writeln!(
            f,
            "DataFrame [{} rows x {} cols]",
            self.n_rows,
            self.n_cols()
        )?;
        writeln!(
            f,
            "{}",
            self.schema
                .fields()
                .iter()
                .map(|fd| format!("{}:{}", fd.name, fd.dtype))
                .collect::<Vec<_>>()
                .join(" | ")
        )?;
        for i in 0..self.n_rows.min(MAX_ROWS) {
            let row = self.row(i).map_err(|_| fmt::Error)?;
            writeln!(
                f,
                "{}",
                row.iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(" | ")
            )?;
        }
        if self.n_rows > MAX_ROWS {
            writeln!(f, "... ({} more rows)", self.n_rows - MAX_ROWS)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DType;

    fn sample() -> DataFrame {
        DataFrame::from_columns(vec![
            ("x", Column::from_f64(vec![1.0, 2.0, 3.0, 4.0])),
            ("y", Column::from_i64(vec![10, 20, 30, 40])),
            ("label", Column::from_categorical(&["a", "b", "a", "b"])),
        ])
        .unwrap()
    }

    #[test]
    fn construction_and_shape() {
        let df = sample();
        assert_eq!(df.n_rows(), 4);
        assert_eq!(df.n_cols(), 3);
        assert_eq!(df.names(), vec!["x", "y", "label"]);
    }

    #[test]
    fn length_mismatch_rejected() {
        let mut df = sample();
        let err = df
            .add_column("bad", Column::from_f64(vec![1.0]))
            .unwrap_err();
        assert_eq!(
            err,
            DataError::LengthMismatch {
                expected: 4,
                got: 1
            }
        );
    }

    #[test]
    fn duplicate_name_rejected() {
        let mut df = sample();
        let err = df
            .add_column("x", Column::from_f64(vec![0.0; 4]))
            .unwrap_err();
        assert_eq!(err, DataError::DuplicateColumn("x".into()));
    }

    #[test]
    fn select_reorders() {
        let df = sample().select(&["label", "x"]).unwrap();
        assert_eq!(df.names(), vec!["label", "x"]);
        assert_eq!(df.n_rows(), 4);
    }

    #[test]
    fn row_access() {
        let df = sample();
        let row = df.row(2).unwrap();
        assert_eq!(
            row,
            vec![Value::Float(3.0), Value::Int(30), Value::Str("a".into())]
        );
        assert!(df.row(4).is_err());
    }

    #[test]
    fn take_with_duplicates() {
        let df = sample().take(&[0, 0, 3]).unwrap();
        assert_eq!(df.n_rows(), 3);
        assert_eq!(df.row(1).unwrap()[0], Value::Float(1.0));
        assert_eq!(df.row(2).unwrap()[0], Value::Float(4.0));
    }

    #[test]
    fn filter_column_values() {
        let df = sample()
            .filter_column("label", |v| v.as_str() == Some("a"))
            .unwrap();
        assert_eq!(df.n_rows(), 2);
        assert_eq!(
            df.column("x").unwrap().to_f64_dense().unwrap(),
            vec![1.0, 3.0]
        );
    }

    #[test]
    fn filter_mask_length_checked() {
        let df = sample();
        assert!(df.filter_mask(&[true, false]).is_err());
    }

    #[test]
    fn sort_descending_input() {
        let df =
            DataFrame::from_columns(vec![("v", Column::from_f64(vec![3.0, 1.0, 2.0]))]).unwrap();
        let sorted = df.sort_by("v").unwrap();
        assert_eq!(
            sorted.column("v").unwrap().to_f64_dense().unwrap(),
            vec![1.0, 2.0, 3.0]
        );
    }

    #[test]
    fn sort_puts_nulls_first() {
        let df = DataFrame::from_columns(vec![(
            "v",
            Column::from_opt_f64(vec![Some(2.0), None, Some(1.0)]),
        )])
        .unwrap();
        let sorted = df.sort_by("v").unwrap();
        assert_eq!(sorted.column("v").unwrap().get(0).unwrap(), Value::Null);
        assert_eq!(
            sorted.column("v").unwrap().get(1).unwrap(),
            Value::Float(1.0)
        );
    }

    #[test]
    fn vstack_same_schema() {
        let df = sample();
        let stacked = df.vstack(&df).unwrap();
        assert_eq!(stacked.n_rows(), 8);
        assert_eq!(stacked.row(4).unwrap(), df.row(0).unwrap());
    }

    #[test]
    fn vstack_schema_mismatch() {
        let df = sample();
        let other = df.select(&["x"]).unwrap();
        assert!(df.vstack(&other).is_err());
    }

    #[test]
    fn drop_nulls_removes_rows() {
        let df = DataFrame::from_columns(vec![
            ("a", Column::from_opt_f64(vec![Some(1.0), None, Some(3.0)])),
            ("b", Column::from_opt_f64(vec![Some(1.0), Some(2.0), None])),
        ])
        .unwrap();
        assert_eq!(df.null_count(), 2);
        let clean = df.drop_nulls();
        assert_eq!(clean.n_rows(), 1);
        assert_eq!(clean.null_count(), 0);
    }

    #[test]
    fn to_matrix_dense() {
        let df = sample();
        let m = df.to_matrix(&["x", "y"]).unwrap();
        assert_eq!(
            m,
            vec![
                vec![1.0, 10.0],
                vec![2.0, 20.0],
                vec![3.0, 30.0],
                vec![4.0, 40.0]
            ]
        );
    }

    #[test]
    fn to_matrix_rejects_nulls() {
        let df = DataFrame::from_columns(vec![("a", Column::from_opt_f64(vec![Some(1.0), None]))])
            .unwrap();
        assert!(df.to_matrix(&["a"]).is_err());
    }

    #[test]
    fn replace_column_changes_dtype() {
        let mut df = sample();
        df.replace_column("y", Column::from_f64(vec![0.5; 4]))
            .unwrap();
        assert_eq!(df.schema().field("y").unwrap().dtype, DType::Float);
        assert_eq!(df.names(), vec!["x", "y", "label"], "position preserved");
    }

    #[test]
    fn drop_column_then_head() {
        let mut df = sample();
        df.drop_column("y").unwrap();
        assert_eq!(df.n_cols(), 2);
        let h = df.head(2);
        assert_eq!(h.n_rows(), 2);
    }

    #[test]
    fn display_truncates() {
        let df = DataFrame::from_columns(vec![(
            "v",
            Column::from_f64((0..20).map(f64::from).collect()),
        )])
        .unwrap();
        let s = df.to_string();
        assert!(s.contains("more rows"));
        assert!(s.contains("v:float"));
    }

    #[test]
    fn upsert_adds_then_replaces() {
        let mut df = sample();
        df.upsert_column("z", Column::from_f64(vec![0.0; 4]))
            .unwrap();
        assert_eq!(df.n_cols(), 4);
        df.upsert_column("z", Column::from_i64(vec![1; 4])).unwrap();
        assert_eq!(df.n_cols(), 4);
        assert_eq!(df.schema().field("z").unwrap().dtype, DType::Int);
    }
}
