//! # matilda-data
//!
//! Columnar in-memory data substrate for the MATILDA platform.
//!
//! MATILDA designs data-science pipelines over tabular datasets; this crate
//! provides the storage and the *data exploration & preparation* primitives
//! those pipelines operate on:
//!
//! - [`DataFrame`] / [`Column`]: typed columnar tables with null tracking;
//! - [`csv`]: RFC-4180 CSV reading with schema inference, and writing;
//! - [`stats`]: descriptive statistics, correlation, histograms;
//! - [`transform`]: imputation, scaling, encoding, feature engineering;
//! - [`split`]: deterministic train/test/stratified/k-fold fragmentation;
//! - [`groupby`]: grouped aggregation;
//! - [`join`]: inner/left equi-joins across observation tables.
//!
//! Everything is deterministic given explicit seeds, which is what makes
//! design sessions replayable from provenance records.
//!
//! ```
//! use matilda_data::prelude::*;
//!
//! let df = DataFrame::from_columns(vec![
//!     ("x", Column::from_f64(vec![1.0, 2.0, 3.0, 4.0])),
//!     ("label", Column::from_categorical(&["a", "b", "a", "b"])),
//! ]).unwrap();
//! let (train, test) = train_test_split(&df, 0.25, 42).unwrap();
//! assert_eq!(train.n_rows() + test.n_rows(), 4);
//! ```

pub mod bitmap;
pub mod column;
pub mod csv;
pub mod error;
pub mod frame;
pub mod groupby;
pub mod join;
pub mod schema;
pub mod split;
pub mod stats;
pub mod transform;
pub mod value;

/// Convenient re-exports of the most used items.
pub mod prelude {
    pub use crate::column::Column;
    pub use crate::csv::{read_csv_path, read_csv_str, write_csv_str, CsvOptions};
    pub use crate::error::{DataError, Result};
    pub use crate::frame::DataFrame;
    pub use crate::groupby::{group_by, Agg};
    pub use crate::join::{join, JoinKind};
    pub use crate::schema::{Field, Schema};
    pub use crate::split::{k_fold_indices, stratified_split, train_test_split};
    pub use crate::stats::{describe, summarize, Summary};
    pub use crate::transform::{
        impute, impute_frame, one_hot_frame, scale, ImputeStrategy, ScaleStrategy,
    };
    pub use crate::value::{DType, Value};
}

pub use column::Column;
pub use error::{DataError, Result};
pub use frame::DataFrame;
pub use schema::{Field, Schema};
pub use value::{DType, Value};
