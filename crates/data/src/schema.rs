//! Schema: ordered, named, typed fields.

use crate::error::{DataError, Result};
use crate::value::DType;

/// A single named, typed field.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Field {
    /// Column name, unique within a schema.
    pub name: String,
    /// Logical type.
    pub dtype: DType,
}

impl Field {
    /// A new field.
    pub fn new(name: impl Into<String>, dtype: DType) -> Self {
        Self {
            name: name.into(),
            dtype,
        }
    }
}

/// An ordered collection of uniquely named fields.
#[derive(Debug, Clone, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// An empty schema.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build a schema from fields, rejecting duplicate names.
    pub fn from_fields(fields: Vec<Field>) -> Result<Self> {
        let mut s = Schema::new();
        for f in fields {
            s.push(f)?;
        }
        Ok(s)
    }

    /// Append a field, rejecting duplicate names.
    pub fn push(&mut self, field: Field) -> Result<()> {
        if self.index_of(&field.name).is_some() {
            return Err(DataError::DuplicateColumn(field.name));
        }
        self.fields.push(field);
        Ok(())
    }

    /// The fields in order.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of fields.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// `true` when the schema has no fields.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Position of the field named `name`.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|f| f.name == name)
    }

    /// The field named `name`, or an error.
    pub fn field(&self, name: &str) -> Result<&Field> {
        self.fields
            .iter()
            .find(|f| f.name == name)
            .ok_or_else(|| DataError::ColumnNotFound(name.to_owned()))
    }

    /// All field names in order.
    pub fn names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }

    /// Names of all numeric fields (usable directly as features).
    pub fn numeric_names(&self) -> Vec<&str> {
        self.fields
            .iter()
            .filter(|f| f.dtype.is_numeric())
            .map(|f| f.name.as_str())
            .collect()
    }

    /// Names of all categorical/string fields.
    pub fn non_numeric_names(&self) -> Vec<&str> {
        self.fields
            .iter()
            .filter(|f| !f.dtype.is_numeric())
            .map(|f| f.name.as_str())
            .collect()
    }

    /// Remove and return the field named `name`.
    pub fn remove(&mut self, name: &str) -> Result<Field> {
        match self.index_of(name) {
            Some(i) => Ok(self.fields.remove(i)),
            None => Err(DataError::ColumnNotFound(name.to_owned())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::from_fields(vec![
            Field::new("age", DType::Float),
            Field::new("city", DType::Categorical),
            Field::new("active", DType::Bool),
        ])
        .unwrap()
    }

    #[test]
    fn rejects_duplicates() {
        let err = Schema::from_fields(vec![
            Field::new("x", DType::Int),
            Field::new("x", DType::Float),
        ])
        .unwrap_err();
        assert_eq!(err, DataError::DuplicateColumn("x".into()));
    }

    #[test]
    fn index_and_lookup() {
        let s = sample();
        assert_eq!(s.index_of("city"), Some(1));
        assert_eq!(s.field("active").unwrap().dtype, DType::Bool);
        assert!(s.field("missing").is_err());
    }

    #[test]
    fn name_partitions() {
        let s = sample();
        assert_eq!(s.names(), vec!["age", "city", "active"]);
        assert_eq!(s.numeric_names(), vec!["age", "active"]);
        assert_eq!(s.non_numeric_names(), vec!["city"]);
    }

    #[test]
    fn remove_field() {
        let mut s = sample();
        let f = s.remove("city").unwrap();
        assert_eq!(f.dtype, DType::Categorical);
        assert_eq!(s.len(), 2);
        assert!(s.remove("city").is_err());
    }
}
