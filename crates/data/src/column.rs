//! Typed columnar storage.

use crate::bitmap::Bitmap;
use crate::error::{DataError, Result};
use crate::value::{DType, Value};
use std::collections::HashMap;

/// Dictionary for categorical columns: maps codes to distinct strings.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Dictionary {
    values: Vec<String>,
    index: HashMap<String, u32>,
}

impl Dictionary {
    /// An empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `s`, returning its code.
    pub fn intern(&mut self, s: &str) -> u32 {
        if let Some(&code) = self.index.get(s) {
            return code;
        }
        let code = self.values.len() as u32;
        self.values.push(s.to_owned());
        self.index.insert(s.to_owned(), code);
        code
    }

    /// Look up the code of `s` without interning.
    pub fn code_of(&self, s: &str) -> Option<u32> {
        self.index.get(s).copied()
    }

    /// The string for `code`.
    pub fn lookup(&self, code: u32) -> Option<&str> {
        self.values.get(code as usize).map(String::as_str)
    }

    /// Number of distinct values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// `true` when the dictionary holds no values.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// All distinct values in code order.
    pub fn values(&self) -> &[String] {
        &self.values
    }
}

/// A single column: typed values plus a validity bitmap.
///
/// Invariant: the data vector and the validity bitmap always have the same
/// length; slots whose validity bit is unset hold an arbitrary placeholder
/// that must never be observed.
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// 64-bit floats.
    Float(Vec<f64>, Bitmap),
    /// 64-bit integers.
    Int(Vec<i64>, Bitmap),
    /// Booleans.
    Bool(Vec<bool>, Bitmap),
    /// Dictionary-encoded categorical values.
    Categorical(Vec<u32>, Bitmap, Dictionary),
    /// Strings.
    Str(Vec<String>, Bitmap),
}

impl Column {
    /// A column of floats with no nulls.
    pub fn from_f64(values: Vec<f64>) -> Self {
        let bm = Bitmap::filled(values.len(), true);
        Column::Float(values, bm)
    }

    /// A column of optional floats.
    pub fn from_opt_f64(values: Vec<Option<f64>>) -> Self {
        let bm: Bitmap = values.iter().map(Option::is_some).collect();
        let data = values.into_iter().map(|v| v.unwrap_or(0.0)).collect();
        Column::Float(data, bm)
    }

    /// A column of integers with no nulls.
    pub fn from_i64(values: Vec<i64>) -> Self {
        let bm = Bitmap::filled(values.len(), true);
        Column::Int(values, bm)
    }

    /// A column of optional integers.
    pub fn from_opt_i64(values: Vec<Option<i64>>) -> Self {
        let bm: Bitmap = values.iter().map(Option::is_some).collect();
        let data = values.into_iter().map(|v| v.unwrap_or(0)).collect();
        Column::Int(data, bm)
    }

    /// A column of booleans with no nulls.
    pub fn from_bool(values: Vec<bool>) -> Self {
        let bm = Bitmap::filled(values.len(), true);
        Column::Bool(values, bm)
    }

    /// A column of strings with no nulls.
    pub fn from_strings<S: AsRef<str>>(values: &[S]) -> Self {
        let bm = Bitmap::filled(values.len(), true);
        Column::Str(values.iter().map(|s| s.as_ref().to_owned()).collect(), bm)
    }

    /// A dictionary-encoded categorical column with no nulls.
    pub fn from_categorical<S: AsRef<str>>(values: &[S]) -> Self {
        let mut dict = Dictionary::new();
        let codes = values.iter().map(|s| dict.intern(s.as_ref())).collect();
        let bm = Bitmap::filled(values.len(), true);
        Column::Categorical(codes, bm, dict)
    }

    /// A dictionary-encoded categorical column with nulls.
    pub fn from_opt_categorical<S: AsRef<str>>(values: &[Option<S>]) -> Self {
        let mut dict = Dictionary::new();
        let mut codes = Vec::with_capacity(values.len());
        let mut bm = Bitmap::new();
        for v in values {
            match v {
                Some(s) => {
                    codes.push(dict.intern(s.as_ref()));
                    bm.push(true);
                }
                None => {
                    codes.push(0);
                    bm.push(false);
                }
            }
        }
        Column::Categorical(codes, bm, dict)
    }

    /// Build a column of `dtype` from dynamic values; incompatible values error.
    pub fn from_values(dtype: DType, values: &[Value]) -> Result<Self> {
        let mut col = Column::empty(dtype);
        for v in values {
            col.push(v.clone())?;
        }
        Ok(col)
    }

    /// An empty column of the given type.
    pub fn empty(dtype: DType) -> Self {
        match dtype {
            DType::Float => Column::Float(Vec::new(), Bitmap::new()),
            DType::Int => Column::Int(Vec::new(), Bitmap::new()),
            DType::Bool => Column::Bool(Vec::new(), Bitmap::new()),
            DType::Categorical => Column::Categorical(Vec::new(), Bitmap::new(), Dictionary::new()),
            DType::Str => Column::Str(Vec::new(), Bitmap::new()),
        }
    }

    /// The column's logical type.
    pub fn dtype(&self) -> DType {
        match self {
            Column::Float(..) => DType::Float,
            Column::Int(..) => DType::Int,
            Column::Bool(..) => DType::Bool,
            Column::Categorical(..) => DType::Categorical,
            Column::Str(..) => DType::Str,
        }
    }

    /// Number of rows (including nulls).
    pub fn len(&self) -> usize {
        match self {
            Column::Float(v, _) => v.len(),
            Column::Int(v, _) => v.len(),
            Column::Bool(v, _) => v.len(),
            Column::Categorical(v, _, _) => v.len(),
            Column::Str(v, _) => v.len(),
        }
    }

    /// `true` when the column has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The validity bitmap.
    pub fn validity(&self) -> &Bitmap {
        match self {
            Column::Float(_, bm)
            | Column::Int(_, bm)
            | Column::Bool(_, bm)
            | Column::Categorical(_, bm, _)
            | Column::Str(_, bm) => bm,
        }
    }

    /// Number of null rows.
    pub fn null_count(&self) -> usize {
        self.validity().count_zeros()
    }

    /// Read row `i` as a dynamic [`Value`].
    pub fn get(&self, i: usize) -> Result<Value> {
        if i >= self.len() {
            return Err(DataError::RowOutOfBounds {
                index: i,
                len: self.len(),
            });
        }
        if !self.validity().get(i) {
            return Ok(Value::Null);
        }
        Ok(match self {
            Column::Float(v, _) => Value::Float(v[i]),
            Column::Int(v, _) => Value::Int(v[i]),
            Column::Bool(v, _) => Value::Bool(v[i]),
            Column::Categorical(v, _, dict) => {
                Value::Str(dict.lookup(v[i]).unwrap_or_default().to_owned())
            }
            Column::Str(v, _) => Value::Str(v[i].clone()),
        })
    }

    /// Append a dynamic value; `Value::Null` appends a null of any type.
    pub fn push(&mut self, value: Value) -> Result<()> {
        let got = value.dtype().map(DType::name).unwrap_or("null");
        match (self, value) {
            (Column::Float(v, bm), Value::Float(x)) => {
                v.push(x);
                bm.push(true);
            }
            (Column::Float(v, bm), Value::Int(x)) => {
                v.push(x as f64);
                bm.push(true);
            }
            (Column::Int(v, bm), Value::Int(x)) => {
                v.push(x);
                bm.push(true);
            }
            (Column::Bool(v, bm), Value::Bool(x)) => {
                v.push(x);
                bm.push(true);
            }
            (Column::Categorical(v, bm, dict), Value::Str(s)) => {
                v.push(dict.intern(&s));
                bm.push(true);
            }
            (Column::Str(v, bm), Value::Str(s)) => {
                v.push(s);
                bm.push(true);
            }
            (col, Value::Null) => match col {
                Column::Float(v, bm) => {
                    v.push(0.0);
                    bm.push(false);
                }
                Column::Int(v, bm) => {
                    v.push(0);
                    bm.push(false);
                }
                Column::Bool(v, bm) => {
                    v.push(false);
                    bm.push(false);
                }
                Column::Categorical(v, bm, _) => {
                    v.push(0);
                    bm.push(false);
                }
                Column::Str(v, bm) => {
                    v.push(String::new());
                    bm.push(false);
                }
            },
            (col, _) => {
                return Err(DataError::TypeMismatch {
                    expected: col.dtype().name(),
                    got,
                });
            }
        }
        Ok(())
    }

    /// Numeric view of the column: ints/bools widen to `f64`, nulls map to
    /// `None`, non-numeric columns error.
    pub fn to_f64(&self) -> Result<Vec<Option<f64>>> {
        let bm = self.validity();
        match self {
            Column::Float(v, _) => Ok(v
                .iter()
                .enumerate()
                .map(|(i, &x)| bm.get(i).then_some(x))
                .collect()),
            Column::Int(v, _) => Ok(v
                .iter()
                .enumerate()
                .map(|(i, &x)| bm.get(i).then_some(x as f64))
                .collect()),
            Column::Bool(v, _) => Ok(v
                .iter()
                .enumerate()
                .map(|(i, &x)| bm.get(i).then_some(if x { 1.0 } else { 0.0 }))
                .collect()),
            other => Err(DataError::TypeMismatch {
                expected: "numeric",
                got: other.dtype().name(),
            }),
        }
    }

    /// Dense numeric view skipping nulls; errors on non-numeric columns.
    pub fn to_f64_dense(&self) -> Result<Vec<f64>> {
        Ok(self.to_f64()?.into_iter().flatten().collect())
    }

    /// A new column containing rows at `indices`, in order.
    pub fn take(&self, indices: &[usize]) -> Result<Self> {
        for &i in indices {
            if i >= self.len() {
                return Err(DataError::RowOutOfBounds {
                    index: i,
                    len: self.len(),
                });
            }
        }
        Ok(match self {
            Column::Float(v, bm) => {
                Column::Float(indices.iter().map(|&i| v[i]).collect(), bm.take(indices))
            }
            Column::Int(v, bm) => {
                Column::Int(indices.iter().map(|&i| v[i]).collect(), bm.take(indices))
            }
            Column::Bool(v, bm) => {
                Column::Bool(indices.iter().map(|&i| v[i]).collect(), bm.take(indices))
            }
            Column::Categorical(v, bm, dict) => Column::Categorical(
                indices.iter().map(|&i| v[i]).collect(),
                bm.take(indices),
                dict.clone(),
            ),
            Column::Str(v, bm) => Column::Str(
                indices.iter().map(|&i| v[i].clone()).collect(),
                bm.take(indices),
            ),
        })
    }

    /// Iterator over rows as dynamic values.
    pub fn iter(&self) -> impl Iterator<Item = Value> + '_ {
        (0..self.len()).map(move |i| self.get(i).expect("index in range"))
    }

    /// Distinct non-null values and their occurrence counts, most frequent first.
    pub fn value_counts(&self) -> Vec<(Value, usize)> {
        let mut counts: Vec<(Value, usize)> = Vec::new();
        for v in self.iter().filter(|v| !v.is_null()) {
            match counts.iter_mut().find(|(existing, _)| *existing == v) {
                Some((_, n)) => *n += 1,
                None => counts.push((v, 1)),
            }
        }
        counts.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.total_cmp(&b.0)));
        counts
    }

    /// Number of distinct non-null values.
    pub fn n_unique(&self) -> usize {
        self.value_counts().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn float_round_trip() {
        let c = Column::from_f64(vec![1.0, 2.5, -3.0]);
        assert_eq!(c.dtype(), DType::Float);
        assert_eq!(c.len(), 3);
        assert_eq!(c.get(1).unwrap(), Value::Float(2.5));
        assert_eq!(c.null_count(), 0);
    }

    #[test]
    fn opt_float_nulls() {
        let c = Column::from_opt_f64(vec![Some(1.0), None, Some(3.0)]);
        assert_eq!(c.null_count(), 1);
        assert_eq!(c.get(1).unwrap(), Value::Null);
        assert_eq!(c.to_f64().unwrap(), vec![Some(1.0), None, Some(3.0)]);
        assert_eq!(c.to_f64_dense().unwrap(), vec![1.0, 3.0]);
    }

    #[test]
    fn categorical_interning() {
        let c = Column::from_categorical(&["a", "b", "a", "c", "b"]);
        if let Column::Categorical(codes, _, dict) = &c {
            assert_eq!(dict.len(), 3);
            assert_eq!(codes, &[0, 1, 0, 2, 1]);
        } else {
            panic!("expected categorical");
        }
        assert_eq!(c.get(2).unwrap(), Value::Str("a".into()));
    }

    #[test]
    fn categorical_with_nulls() {
        let c = Column::from_opt_categorical(&[Some("x"), None, Some("y")]);
        assert_eq!(c.null_count(), 1);
        assert_eq!(c.get(1).unwrap(), Value::Null);
        assert_eq!(c.n_unique(), 2);
    }

    #[test]
    fn push_type_checks() {
        let mut c = Column::empty(DType::Int);
        c.push(Value::Int(1)).unwrap();
        c.push(Value::Null).unwrap();
        let err = c.push(Value::Str("no".into())).unwrap_err();
        assert!(matches!(err, DataError::TypeMismatch { .. }));
        assert_eq!(c.len(), 2);
        assert_eq!(c.null_count(), 1);
    }

    #[test]
    fn push_int_into_float_widens() {
        let mut c = Column::empty(DType::Float);
        c.push(Value::Int(4)).unwrap();
        assert_eq!(c.get(0).unwrap(), Value::Float(4.0));
    }

    #[test]
    fn take_preserves_nulls_and_dict() {
        let c = Column::from_opt_categorical(&[Some("a"), None, Some("b"), Some("a")]);
        let t = c.take(&[3, 1, 0]).unwrap();
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(0).unwrap(), Value::Str("a".into()));
        assert_eq!(t.get(1).unwrap(), Value::Null);
        assert_eq!(t.get(2).unwrap(), Value::Str("a".into()));
    }

    #[test]
    fn take_out_of_bounds() {
        let c = Column::from_i64(vec![1, 2]);
        assert!(matches!(
            c.take(&[2]),
            Err(DataError::RowOutOfBounds { .. })
        ));
    }

    #[test]
    fn value_counts_sorted() {
        let c = Column::from_categorical(&["b", "a", "b", "c", "b", "a"]);
        let counts = c.value_counts();
        assert_eq!(counts[0], (Value::Str("b".into()), 3));
        assert_eq!(counts[1], (Value::Str("a".into()), 2));
        assert_eq!(counts[2], (Value::Str("c".into()), 1));
    }

    #[test]
    fn to_f64_on_bool() {
        let c = Column::from_bool(vec![true, false, true]);
        assert_eq!(c.to_f64_dense().unwrap(), vec![1.0, 0.0, 1.0]);
    }

    #[test]
    fn to_f64_on_str_errors() {
        let c = Column::from_strings(&["x"]);
        assert!(c.to_f64().is_err());
    }

    #[test]
    fn from_values_mixed_numeric() {
        let c = Column::from_values(
            DType::Float,
            &[Value::Float(1.0), Value::Int(2), Value::Null],
        )
        .unwrap();
        assert_eq!(c.to_f64().unwrap(), vec![Some(1.0), Some(2.0), None]);
    }

    #[test]
    fn get_out_of_bounds() {
        let c = Column::from_i64(vec![1]);
        assert!(matches!(
            c.get(5),
            Err(DataError::RowOutOfBounds { index: 5, len: 1 })
        ));
    }

    #[test]
    fn dictionary_lookup() {
        let mut d = Dictionary::new();
        let a = d.intern("alpha");
        let b = d.intern("beta");
        assert_eq!(d.intern("alpha"), a);
        assert_eq!(d.lookup(b), Some("beta"));
        assert_eq!(d.code_of("gamma"), None);
        assert_eq!(d.values(), &["alpha".to_owned(), "beta".to_owned()]);
    }
}
